#!/usr/bin/env bash
# Perf regression gate: runs the Criterion suite into a scratch dir (via
# the stand-in's BENCH_OUT redirect, so the committed baseline is never
# clobbered) and fails if any benchmark's median regressed more than 25%
# past a 20 µs absolute floor against BENCH_pipelines.json. A bench
# whose fresh *minimum* still reaches baseline speed passes regardless
# (contaminated samples on a busy box inflate the median but cannot
# lower the floor a genuinely slower path would raise). The gate also
# demands the epoch-keyed render cache actually pays for itself: the
# cached variants of the two headline pipelines must beat their
# uncached twins by at least 5x on the fresh medians. The fresh
# measurement is left at $BENCH_ARTIFACT_DIR (default
# target/bench-artifacts/) as the run's artifact; to accept a new
# baseline, copy it over BENCH_pipelines.json and commit.
set -euo pipefail
cd "$(dirname "$0")/.."

artifacts="${BENCH_ARTIFACT_DIR:-target/bench-artifacts}"
case "$artifacts" in
    /*) ;;
    # cargo runs benches with CWD = the package root, so a relative
    # BENCH_OUT would land under crates/bench/ — anchor it here instead.
    *) artifacts="$PWD/$artifacts" ;;
esac
mkdir -p "$artifacts"

echo "== bench: fresh measurement -> $artifacts/BENCH_pipelines.json =="
BENCH_OUT="$artifacts" cargo bench --offline -p containerleaks-bench

echo "== bench: compare against committed baseline =="
cargo run --offline --release -q -p containerleaks-experiments --bin benchcmp -- \
    --baseline BENCH_pipelines.json \
    --fresh "$artifacts/BENCH_pipelines.json" \
    --threshold-pct "${BENCH_THRESHOLD_PCT:-25}" \
    --floor-ns "${BENCH_FLOOR_NS:-20000}" \
    --require-speedup "table1_scan_cached:table1_scan:${BENCH_CACHE_SPEEDUP:-5.0}" \
    --require-speedup "hardening_policy_generation_cached:hardening_policy_generation:${BENCH_CACHE_SPEEDUP:-5.0}" \
    --require-speedup "fleet_10k_week:fleet_10k_week_unsharded:${BENCH_FLEET_SPEEDUP:-5.0}"
