//! Event-horizon tick coalescing must be invisible.
//!
//! `Kernel::advance` with coalescing enabled takes one large span to the
//! next event horizon whenever the host is quiescent; with coalescing
//! disabled it walks the same interval tick by tick. These tests pin the
//! contract that the two modes are *byte-identical* — full pseudofs
//! snapshots, `/proc/uptime`, `/proc/loadavg`, and the RAPL energy
//! counters — with and without an installed [`FaultPlan`], including
//! when timer expiries and fault events land inside a window the
//! coalesced run would otherwise have jumped over in one span.

use proptest::prelude::*;

use containerleaks::pseudofs::{PseudoFs, View};
use containerleaks::simkernel::{FaultPlan, Kernel, MachineConfig, NANOS_PER_SEC};
use containerleaks::workloads::models;

/// Reads every host-visible pseudo file into one string.
fn pseudofs_snapshot(k: &Kernel) -> String {
    let fs = PseudoFs::new();
    let view = View::host();
    let mut out = String::new();
    for path in fs.list(k, &view) {
        out.push_str(&path);
        out.push('\n');
        match fs.read(k, &view, &path) {
            Ok(body) => out.push_str(&body),
            Err(e) => out.push_str(&format!("<{e:?}>")),
        }
        out.push('\n');
    }
    out
}

/// Everything the contract names: the full pseudofs image, the uptime
/// and loadavg files verbatim, the package energy counter, and the
/// scheduler's in-memory load averages.
type Observation = (String, String, String, u64, [f64; 3]);

fn observe(k: &Kernel) -> Observation {
    let fs = PseudoFs::new();
    let view = View::host();
    (
        pseudofs_snapshot(k),
        fs.read(k, &view, "/proc/uptime").unwrap_or_default(),
        fs.read(k, &view, "/proc/loadavg").unwrap_or_default(),
        k.rapl().package_energy_uj(0),
        k.sched().loadavg(),
    )
}

/// One seeded scenario: a quiescent host holding a periodic user timer,
/// a mid-run burst of real work, and (optionally) the standard fault
/// plan — whose windows and 150 s crash-reboot land inside stretches
/// the coalesced run would otherwise cross in one span.
fn run_scenario(coalesce: bool, faults: bool, seed: u64) -> Observation {
    let mut k = Kernel::new(MachineConfig::small_server(), seed);
    k.set_coalescing(coalesce);
    if faults {
        k.install_faults(FaultPlan::standard(seed));
    }
    // A blocked shell owning a 7.000000123 s interval timer: the host
    // stays quiescent, so every expiry falls inside a would-be
    // coalesced window and must split it at the exact nanosecond.
    let pid = k.spawn_host_process("shell", models::sleeper()).unwrap();
    k.add_user_timer(pid, "itimer", 7 * NANOS_PER_SEC + 123)
        .unwrap();
    k.advance_secs(40);
    // A burst of real work: coalescing must disengage while the host
    // is busy and re-engage once the worker is gone.
    let worker = k
        .spawn_host_process("burst", models::stress_small())
        .unwrap();
    k.advance_secs(10);
    let _ = k.kill(worker);
    // Long quiescent tail crossing the fault plan's reboot and the
    // remaining fault windows (the standard horizon is 300 s).
    k.advance_secs(310);
    observe(&k)
}

#[test]
fn coalescing_is_invisible_on_a_clean_host() {
    for seed in [0, 7, 1729] {
        assert_eq!(
            run_scenario(true, false, seed),
            run_scenario(false, false, seed),
            "coalesced vs per-tick diverged (clean, seed {seed})"
        );
    }
}

#[test]
fn coalescing_is_invisible_under_the_standard_fault_plan() {
    for seed in [0, 7, 1729] {
        assert_eq!(
            run_scenario(true, true, seed),
            run_scenario(false, true, seed),
            "coalesced vs per-tick diverged (faulted, seed {seed})"
        );
    }
}

#[test]
fn coalescing_is_invisible_with_active_processes() {
    // Nothing quiescent here: coalescing never engages, but the toggle
    // must still be a no-op on the observable state.
    let run = |coalesce: bool| {
        let mut k = Kernel::new(MachineConfig::small_server(), 42);
        k.set_coalescing(coalesce);
        k.spawn_host_process("svc", models::web_service(0.4))
            .unwrap();
        k.advance_secs(30);
        observe(&k)
    };
    assert_eq!(run(true), run(false));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the seed and whether faults are installed (odd seeds
    /// install the standard plan), coalescing on and off observe the
    /// same machine.
    #[test]
    fn coalescing_never_changes_observable_state(seed in 0u64..10_000) {
        let faults = seed % 2 == 1;
        prop_assert_eq!(
            run_scenario(true, faults, seed),
            run_scenario(false, faults, seed),
            "seed {} faults {}", seed, faults
        );
    }
}
