//! Tier-1 gate: the static source auditor (`leakcheck`) and the dynamic
//! differential scanner (`leakscan::CrossValidator`) must reach the same
//! verdict on every modeled channel, modulo the documented allowlist.
//!
//! The two analyses share no code path: one tokenizes handler sources,
//! the other renders files through two views and diffs bytes. Agreement
//! is therefore real cross-validation — a classifier regression on
//! either side breaks this test.

use containerleaks::leakcheck;
use containerleaks::leakscan::agreement;
use containerleaks::leakscan::{ChannelClass, Lab};
use containerleaks::pseudofs::ROUTES;

fn joined_rows() -> Vec<agreement::Agreement> {
    let report = leakcheck::audit().expect("static audit succeeds");
    let lab = Lab::new(1, 97);
    let h = lab.host(0);
    agreement::check(&h.kernel, &h.container_view(), &report)
}

/// The nine hot (buffer-writing fast path) channels are the paper's
/// highest-rate probes; all nine must be statically classified as
/// unrouted and dynamically observed leaking.
#[test]
fn hot_probe_channels_agree_as_leaking() {
    let report = leakcheck::audit().expect("static audit succeeds");
    let rows = joined_rows();
    let fast: Vec<&str> = ROUTES
        .iter()
        .filter(|r| r.fast_into.is_some())
        .map(|r| r.probe)
        .collect();
    assert_eq!(fast.len(), 9, "nine hand-written fast paths");
    for probe in fast {
        let ch = report
            .channels
            .iter()
            .find(|c| c.pattern == probe)
            .unwrap_or_else(|| panic!("{probe} not audited"));
        assert_ne!(
            ch.verdict, "view-routed",
            "{probe} must be statically unrouted"
        );
        let row = rows
            .iter()
            .find(|r| r.path == probe)
            .unwrap_or_else(|| panic!("{probe} not scanned"));
        assert_eq!(row.dynamic, ChannelClass::Leaking, "{probe}");
        assert!(row.agrees, "{probe}");
    }
}

/// Full-tree agreement: every path the scanner classifies joins a
/// registry channel whose static verdict predicts the dynamic class.
#[test]
fn full_tree_static_dynamic_agreement() {
    let rows = joined_rows();
    assert!(
        rows.len() > 60,
        "join covers the modeled tree, got {} rows",
        rows.len()
    );
    let bad = agreement::disagreements(&rows);
    assert!(
        bad.is_empty(),
        "static/dynamic disagreements:\n{}",
        bad.iter()
            .map(|r| {
                format!(
                    "  {} ({}): static {} predicts {:?}, scanner saw {:?}",
                    r.path, r.handler, r.static_verdict, r.predicted, r.dynamic
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The allowlist stays minimal and exercised.
    assert_eq!(agreement::ALLOWLIST.len(), 1);
    assert!(rows
        .iter()
        .any(|r| r.allowlisted && r.predicted != r.dynamic));
}

/// Registry completeness, from the static side: every audited channel
/// resolved to a handler, and the audit's channel count matches the
/// registry (the audit itself cross-checks the registry against the
/// parsed `fs.rs` dispatch arms and errors on drift).
#[test]
fn audit_covers_the_whole_registry() {
    let report = leakcheck::audit().expect("static audit succeeds");
    assert_eq!(report.channels.len(), ROUTES.len());
    for c in &report.channels {
        assert!(
            !c.verdict.is_empty() && c.handler.contains("::"),
            "{c:?} malformed"
        );
    }
    // Determinism lint: the committed accept list is the only finding set.
    for h in &report.hazards {
        assert!(
            h.accepted,
            "unreviewed determinism hazard in {} ({}): {}",
            h.file, h.function, h.detail
        );
    }
}
