//! Reproducibility: every layer is a pure function of (config, seed).

use containerleaks::cloudsim::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
use containerleaks::leakscan::{CrossValidator, Lab};
use containerleaks::powerns::Trainer;
use containerleaks::powersim::DiurnalTrace;
use containerleaks::simkernel::{Kernel, MachineConfig};
use containerleaks::workloads::models;

#[test]
fn kernel_evolution_is_reproducible() {
    let run = || {
        let mut k = Kernel::new(MachineConfig::testbed_i7_6700(), 555);
        k.spawn_host_process("a", models::stress_vm()).unwrap();
        k.spawn_host_process("b", models::web_service(0.3)).unwrap();
        k.advance_secs(20);
        (
            k.rapl().package_energy_uj(0),
            k.mem().free_bytes(),
            k.sched().total_switches(),
            k.irq().total_interrupts(),
            k.fs().entropy_avail(),
            k.boot_id().to_string(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn scan_results_are_reproducible() {
    let scan = || {
        let lab = Lab::new(1, 777);
        let h = lab.host(0);
        CrossValidator::new().scan(&h.kernel, &h.container_view())
    };
    assert_eq!(scan(), scan());
}

#[test]
fn cloud_placement_and_billing_reproducible() {
    let run = || {
        let mut c = Cloud::new(CloudConfig::new(CloudProfile::CC3).hosts(4), 888);
        let ids: Vec<_> = (0..5)
            .map(|i| c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap())
            .collect();
        for id in &ids {
            c.exec(*id, "w", models::web_service(0.4)).unwrap();
        }
        c.advance_secs(60);
        let hosts: Vec<_> = ids.iter().map(|i| c.instance(*i).unwrap().host()).collect();
        (hosts, format!("{:.9}", c.bill("t").total_usd()))
    };
    assert_eq!(run(), run());
}

#[test]
fn trained_models_are_reproducible() {
    let a = Trainer::new(999).train();
    let b = Trainer::new(999).train();
    assert_eq!(a, b);
    let c = Trainer::new(1000).train();
    assert_ne!(
        a, c,
        "different seeds should perturb the noise, hence the fit"
    );
}

#[test]
fn traces_are_reproducible_but_seed_sensitive() {
    let sample = |seed: u64| {
        let t = DiurnalTrace::paper_week(seed);
        (0..48)
            .map(|h| (t.nominal_demand(0, h * 1800) * 1e6) as i64)
            .collect::<Vec<_>>()
    };
    assert_eq!(sample(5), sample(5));
    assert_ne!(sample(5), sample(6));
}

#[test]
fn experiment_runner_is_jobs_invariant() {
    // The determinism gate for the parallel experiment runner: a cheap
    // subset of the registry, run serially and through a 4-worker pool,
    // must render byte-identical reports. (ci.sh runs the same gate over
    // the full registry via the `all` binary.)
    use containerleaks::experiments::{run_entries_with, EXPERIMENTS};
    let subset: Vec<_> = EXPERIMENTS
        .iter()
        .copied()
        .filter(|(id, _)| matches!(*id, "table1" | "table3" | "hardening"))
        .collect();
    assert_eq!(subset.len(), 3, "registry ids changed under the test");
    let render = |jobs: usize| {
        let results = run_entries_with(&subset, 1729, 1, jobs, |_, _| {});
        containerleaks::render_experiments_md(&results, 1729)
    };
    let serial = render(1);
    assert_eq!(serial, render(4), "parallel runner diverged from serial");
    assert_eq!(serial, render(2), "2-worker pool diverged from serial");
}
