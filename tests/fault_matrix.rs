//! The fault-matrix integration gate (tentpole acceptance criteria).
//!
//! Under every injected fault class, each detector conclusion must be
//! either identical to the fault-free run or explicitly degraded — never
//! a panic, never a silently different answer. The matrix scenarios
//! themselves encode the clean-vs-faulted comparison; this test runs the
//! whole matrix through the guarded pool and checks the contract held,
//! that a panicking driver surfaces as a structured failure, and that the
//! results are byte-identical at any worker count *with faults active*.

use containerleaks::experiments::{run_entries_with, ExperimentFn, ExperimentResult};
use containerleaks::{run_fault_matrix, DEFAULT_SEED, FAULT_MATRIX};

#[test]
fn every_fault_class_degrades_gracefully() {
    let results = run_fault_matrix(DEFAULT_SEED, 1);
    assert_eq!(results.len(), FAULT_MATRIX.len());
    let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(
        ids,
        [
            "fault_fs",
            "fault_reboot",
            "fault_sensor",
            "fault_clock",
            "fault_powerns"
        ]
    );
    for r in &results {
        assert!(
            r.error.is_none(),
            "{} hit a structured failure: {:?}",
            r.id,
            r.error
        );
        assert!(
            r.all_hold(),
            "{} violated the degradation contract:\n{:#?}",
            r.id,
            r.comparisons
        );
        // Each scenario must prove its fault plan actually fired — a
        // matrix that quietly runs fault-free proves nothing.
        assert!(
            !r.comparisons.is_empty(),
            "{} produced no comparisons",
            r.id
        );
    }
}

#[test]
fn matrix_is_byte_identical_across_worker_counts() {
    let serial = run_fault_matrix(DEFAULT_SEED, 1);
    let pooled = run_fault_matrix(DEFAULT_SEED, 4);
    let a = serde_json::to_string(&serial).expect("serializable");
    let b = serde_json::to_string(&pooled).expect("serializable");
    assert_eq!(a, b, "fault schedules must not leak wall-clock state");
}

#[test]
fn a_panicking_scenario_is_contained_by_the_pool() {
    fn boom(_: u64, _: u64) -> ExperimentResult {
        panic!("injected matrix panic");
    }
    // Splice a hostile driver between two real (cheap) scenarios: the
    // pool must convert the panic into a structured failure and still
    // finish the neighbours.
    let entries: &[(&str, ExperimentFn)] = &[FAULT_MATRIX[2], ("boom", boom), FAULT_MATRIX[4]];
    for jobs in [1usize, 2] {
        let results = run_entries_with(entries, DEFAULT_SEED, 1, jobs, |_, _| {});
        assert_eq!(results.len(), 3);
        assert!(results[0].all_hold(), "jobs={jobs}");
        assert!(!results[1].all_hold(), "jobs={jobs}");
        let err = results[1].error.as_deref().unwrap_or_default();
        assert!(err.contains("injected matrix panic"), "jobs={jobs}: {err}");
        assert!(results[2].all_hold(), "jobs={jobs}");
    }
}
