//! End-to-end pins for the seed-derived campaign fuzzer.
//!
//! A small real sweep must come back green through every metamorphic
//! oracle, byte-identically for any worker count; and the injected
//! threshold fixture must be caught, survive panic isolation, and be
//! shrunk to exactly its minimal failing seed-plus-overrides.

use containerleaks::campaign::{
    run, CampaignConfig, InjectedViolation, Overrides, Scenario, Status,
};

#[test]
fn a_small_sweep_passes_every_oracle_in_any_jobs_mode() {
    let sweep = |jobs: usize| run(&CampaignConfig::sweep(0, 6).jobs(jobs).shrink(false));
    let serial = sweep(1);
    assert!(
        serial.all_green(),
        "sweep found real failures: {}",
        serial.render_md()
    );
    assert_eq!(serial.outcomes.len(), 6);
    assert_eq!(serial.passed(), 6);

    let pooled = sweep(4);
    assert_eq!(
        serial.render_md(),
        pooled.render_md(),
        "the report depends on the worker count"
    );
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&pooled).unwrap(),
    );
}

#[test]
fn an_injected_violation_is_reported_and_shrunk_to_its_thresholds() {
    // The fixture fails whenever hosts ≥ 2, tenants ≥ 2, and churn ≥ 3
    // all hold. Pin the starting scenario well above every threshold so
    // the shrinker has real distance to cover on each dimension.
    let inject = InjectedViolation {
        min_hosts: 2,
        min_tenants: 2,
        min_churn: 3,
    };
    let start = Overrides {
        hosts: Some(4),
        tenants: Some(5),
        churn_cycles: Some(20),
        faults: None,
    };
    let report = run(&CampaignConfig::sweep(77, 1)
        .overrides(start)
        .inject(inject)
        .shrink(true));
    assert_eq!(report.violations(), 1);
    assert_eq!(report.panics(), 0);

    let outcome = &report.outcomes[0];
    match &outcome.status {
        Status::Violated { oracle, .. } => assert_eq!(oracle, "injected"),
        other => panic!("expected a violation, got {other:?}"),
    }
    let shrink = outcome.shrink.as_ref().expect("failure was shrunk");
    let minimal = Scenario::derive(77).with(&shrink.minimal);
    assert_eq!(minimal.hosts, 2, "hosts shrunk to the fixture threshold");
    assert_eq!(
        minimal.tenants, 2,
        "tenants shrunk to the fixture threshold"
    );
    assert_eq!(
        minimal.churn_cycles, 3,
        "churn shrunk to the fixture threshold"
    );

    // The repro command replays the minimal scenario, not the original.
    assert!(outcome.repro.contains("--seed 77"), "{}", outcome.repro);
    assert!(outcome.repro.contains("--hosts 2"), "{}", outcome.repro);
    assert!(outcome.repro.contains("--tenants 2"), "{}", outcome.repro);
    assert!(outcome.repro.contains("--churn 3"), "{}", outcome.repro);

    // And replaying the shrunk overrides still trips the same fixture.
    let replay = run(&CampaignConfig::sweep(77, 1)
        .overrides(shrink.minimal)
        .inject(inject)
        .shrink(false));
    assert_eq!(replay.violations(), 1, "the minimal repro no longer fails");
}
