//! Golden-trace snapshot: a small seeded faulted run must render a
//! byte-identical JSONL trace, release after release.
//!
//! The committed snapshot is the determinism contract made concrete —
//! any change to event ordering, field layout, counter taxonomy, or the
//! underlying simulation's event stream shows up as a diff against
//! `tests/golden/trace_fig4_small.jsonl` and has to be reviewed, not
//! discovered in production traces. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test --test trace_golden`.
//!
//! Own integration-test binary: `simtrace::install` is once-per-process
//! and the rendered artifact embeds the process-global counter and
//! profile stores, so nothing else may trace in this process.

use std::sync::Arc;

use containerleaks::cloudsim::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
use containerleaks::powersim::RaplMonitor;
use containerleaks::simkernel::FaultPlan;
use containerleaks::simtrace;

const GOLDEN_PATH: &str = "tests/golden/trace_fig4_small.jsonl";
const SEED: u64 = 424;

/// A fig4-sized scenario: one host, an observer and a victim, a short
/// fault plan with a mid-run crash-reboot, RAPL monitoring, and a probe
/// sweep every five simulated seconds — small enough to commit, rich
/// enough to cover every event kind the cloud stack emits.
fn run_scenario() {
    let _scope = simtrace::scope("golden/fig4");
    let mut cloud = Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(1), SEED);
    let observer = cloud
        .launch("spy", InstanceSpec::new("obs").vcpus(1))
        .expect("launch observer");
    let victim = cloud
        .launch("victim", InstanceSpec::new("v"))
        .expect("launch victim");
    cloud.advance_secs(2);
    cloud.install_faults(
        &FaultPlan::builder(SEED)
            .horizon_secs(60)
            .transient_reads(3)
            .sensor_faults(3)
            .clock_skew(1)
            .reboot_at_secs(30)
            .build(),
    );
    let mut mon = RaplMonitor::new();
    for t in 0..60u64 {
        cloud.advance_secs(1);
        let _ = mon.sample_watts(&mut cloud, observer, t as f64);
        if t % 5 == 0 {
            for path in [
                "/proc/stat",
                "/proc/uptime",
                "/sys/class/thermal/thermal_zone0/temp",
            ] {
                let _ = cloud.read_file(observer, path);
            }
        }
    }
    cloud.terminate(victim).expect("terminate victim");
    cloud.advance_secs(2);
    // Dropping the cloud flushes every kernel's buffer to the sink.
}

#[test]
fn small_seeded_trace_matches_the_committed_golden_file() {
    let sink = Arc::new(simtrace::MemorySink::new());
    simtrace::install(Arc::clone(&sink) as Arc<dyn simtrace::TraceSink>);

    run_scenario();
    let rendered = simtrace::render_jsonl(SEED, &sink.drain());
    assert!(
        rendered.lines().count() > 50,
        "scenario too quiet to be a meaningful snapshot"
    );

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert!(
        rendered == golden,
        "trace diverged from the golden snapshot ({} vs {} lines). \
         If the change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test trace_golden",
        rendered.lines().count(),
        golden.lines().count()
    );
}
