//! Live masking-policy swaps must be indistinguishable from rebirth.
//!
//! The detector's whole enforcement path rests on [`Runtime::set_policy`]:
//! swapping a container's mask mid-run has to produce exactly the bytes a
//! container *created* with that policy would produce, even when the
//! render cache already holds entries rendered under the old view
//! fingerprint. These tests pin the create→warm-cache→swap→read chain
//! against a twin kernel that had the target policy from birth, in both
//! cache modes, and check the bookkeeping the fix relies on: affected
//! subsystem epochs are bumped and the swap is counted.

use containerleaks::container_runtime::{ContainerId, ContainerSpec, Runtime};
use containerleaks::pseudofs::{route_for, MaskPolicy};
use containerleaks::simkernel::{Kernel, MachineConfig};
use containerleaks::simtrace;

/// Channels crossing the policies below: one fully denied, one partially
/// filtered, one glob-denied, and two left open as controls.
const PROBES: &[&str] = &[
    "/proc/meminfo",
    "/proc/timer_list",
    "/sys/class/powercap/intel-rapl:0/energy_uj",
    "/proc/loadavg",
    "/proc/stat",
];

/// The mask the detector would impose on a flagged tenant.
fn masked() -> MaskPolicy {
    MaskPolicy::none()
        .deny("/proc/timer_list")
        .deny("/sys/class/powercap/**")
        .partial("/proc/meminfo")
}

/// One kernel + runtime + single container created under `policy`.
struct Cell {
    k: Kernel,
    rt: Runtime,
    id: ContainerId,
}

impl Cell {
    fn new(seed: u64, cache: bool, policy: MaskPolicy) -> Self {
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        k.set_render_caching(cache);
        let mut rt = Runtime::new();
        let id = rt
            .create(&mut k, ContainerSpec::new("cell").policy(policy))
            .expect("container");
        Cell { k, rt, id }
    }

    /// Every probe's bytes (or error) at the current instant.
    fn snapshot(&self) -> String {
        let mut out = String::new();
        for p in PROBES {
            match self.rt.read_file(&self.k, self.id, p) {
                Ok(body) => out.push_str(&body),
                Err(e) => out.push_str(&format!("<{e:?}>")),
            }
            out.push('\n');
        }
        out
    }
}

#[test]
fn live_swap_matches_policy_from_birth() {
    for cache in [true, false] {
        for seed in [0u64, 7, 1729] {
            // `live` starts open and is swapped mid-run; `born_masked` and
            // `born_open` are the ground-truth twins. All three evolve in
            // lockstep so rendered bytes depend only on the policy.
            let mut live = Cell::new(seed, cache, MaskPolicy::none());
            let mut born_masked = Cell::new(seed, cache, masked());
            let mut born_open = Cell::new(seed, cache, MaskPolicy::none());

            for c in [&mut live, &mut born_masked, &mut born_open] {
                c.k.advance_secs(30);
            }
            // Warm the render cache in every cell — `live` now holds
            // *unmasked* bytes under its current view fingerprint.
            let open_bytes = live.snapshot();
            let _ = born_masked.snapshot();
            assert_eq!(
                open_bytes,
                born_open.snapshot(),
                "open twins diverged before any swap (cache {cache}, seed {seed})"
            );

            // The live swap: stale entries must not survive it.
            live.rt
                .set_policy(&mut live.k, live.id, masked())
                .expect("swap");
            assert_eq!(
                live.snapshot(),
                born_masked.snapshot(),
                "post-swap reads differ from a container born with the \
                 policy (cache {cache}, seed {seed})"
            );

            // And again after time passes — revalidation must stay sound.
            for c in [&mut live, &mut born_masked, &mut born_open] {
                c.k.advance_secs(45);
            }
            assert_eq!(
                live.snapshot(),
                born_masked.snapshot(),
                "masked twins diverged after advancing (cache {cache}, seed {seed})"
            );

            // Swap back: the container must be indistinguishable from one
            // that was never masked at all.
            live.rt
                .set_policy(&mut live.k, live.id, MaskPolicy::none())
                .expect("swap back");
            let _ = born_open.snapshot();
            assert_eq!(
                live.snapshot(),
                born_open.snapshot(),
                "swap-back reads differ from the never-masked twin \
                 (cache {cache}, seed {seed})"
            );
        }
    }
}

/// The value of the named portable counter right now.
fn counter(name: &str) -> u64 {
    simtrace::counters::snapshot()
        .into_iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

#[test]
fn swap_bumps_affected_epochs_and_is_counted() {
    // Counters only accumulate with a sink installed; the other test in
    // this binary never reads counters, so installing here is safe.
    simtrace::install(std::sync::Arc::new(simtrace::MemorySink::new()));
    let mut cell = Cell::new(11, true, MaskPolicy::none());
    cell.k.advance_secs(10);
    let _ = cell.snapshot();

    let timer_deps = route_for("/proc/timer_list").expect("route").deps;
    let before_sum = cell.k.epochs().masked_sum(timer_deps);
    let before_swaps = counter("kernel.policy_swaps");

    cell.rt
        .set_policy(&mut cell.k, cell.id, masked())
        .expect("swap");
    assert!(
        cell.k.epochs().masked_sum(timer_deps) > before_sum,
        "swap left the denied route's dependency epochs untouched"
    );
    assert_eq!(
        counter("kernel.policy_swaps"),
        before_swaps + 1,
        "swap was not counted"
    );

    // Swapping to an identical policy is a no-op: no bump, no count.
    let sum = cell.k.epochs().masked_sum(timer_deps);
    let swaps = counter("kernel.policy_swaps");
    cell.rt
        .set_policy(&mut cell.k, cell.id, masked())
        .expect("no-op swap");
    assert_eq!(cell.k.epochs().masked_sum(timer_deps), sum);
    assert_eq!(counter("kernel.policy_swaps"), swaps);
}
