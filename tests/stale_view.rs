//! The render cache must never serve a destroyed container's bytes.
//!
//! A create–destroy–recreate loop is the adversarial input for an
//! epoch-keyed cache: if a recreated container ever reused a dead view's
//! fingerprint, cached entries rendered for the *old* namespaces and
//! cgroups could be served into the *new* container — a cross-incarnation
//! information leak (e.g. the old container's `/proc/self/cgroup` path or
//! cpuacct totals). These property tests drive seeded recreate loops
//! through the container [`Runtime`] and pin three contracts: view
//! fingerprints are fresh across incarnations, every read from a cached
//! kernel is byte-identical to an uncached twin driven through the same
//! script, and removal actually evicts the dead view's cache entries.

use proptest::prelude::*;

use containerleaks::container_runtime::{ContainerSpec, Runtime};
use containerleaks::simkernel::{Kernel, MachineConfig};
use containerleaks::workloads::models;

/// Channels a recreated container could leak its predecessor through:
/// identity (`self/cgroup`), accounting (`cpuacct`), interface state
/// (`net/dev`), and scheduler residue (`stat`, `uptime`).
const PROBES: &[&str] = &[
    "/proc/self/cgroup",
    "/sys/fs/cgroup/cpuacct/cpuacct.usage",
    "/proc/net/dev",
    "/proc/stat",
    "/proc/uptime",
];

/// One incarnation: create a container under `name`, exec a worker, let
/// it run, read every probe, then remove it. Returns the probe bytes and
/// the view fingerprint the incarnation lived under.
fn incarnate(k: &mut Kernel, rt: &mut Runtime, name: &str, secs: u64) -> (String, u64) {
    let id = rt.create(k, ContainerSpec::new(name)).unwrap();
    rt.exec(k, id, "worker", models::web_service(0.2)).unwrap();
    k.advance_secs(secs);
    let fp = rt.container(id).unwrap().view().fingerprint();
    let mut out = String::new();
    for path in PROBES {
        match rt.read_file(k, id, path) {
            Ok(body) => out.push_str(&body),
            Err(e) => out.push_str(&format!("<{e:?}>")),
        }
    }
    rt.remove(k, id).unwrap();
    (out, fp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Across a seeded create–destroy–recreate loop — reusing the *same
    /// container name* every time, the hardest aliasing case — every
    /// incarnation gets a fresh view fingerprint, and a render-caching
    /// kernel serves exactly the bytes an uncached twin renders.
    #[test]
    fn recreated_containers_never_see_cached_predecessor_bytes(
        seed in 0u64..10_000,
        cycles in 2usize..6,
    ) {
        let run = |cache: bool| -> (Vec<String>, Vec<u64>) {
            let mut k = Kernel::new(MachineConfig::small_server(), seed);
            k.set_render_caching(cache);
            let mut rt = Runtime::new();
            let mut transcripts = Vec::new();
            let mut fps = Vec::new();
            for cycle in 0..cycles {
                // Seed-derived but mode-independent run length.
                let secs = 1 + (seed.wrapping_add(cycle as u64 * 13)) % 5;
                let (bytes, fp) = incarnate(&mut k, &mut rt, "phoenix", secs);
                transcripts.push(bytes);
                fps.push(fp);
            }
            (transcripts, fps)
        };
        let (cached, cached_fps) = run(true);
        let (plain, _) = run(false);

        for (i, fp) in cached_fps.iter().enumerate() {
            for later in &cached_fps[i + 1..] {
                prop_assert!(
                    fp != later,
                    "view fingerprint recurred across incarnations (seed {})", seed
                );
            }
        }
        prop_assert_eq!(
            cached, plain,
            "a recreated container read different bytes with caching on (seed {})",
            seed
        );
    }

    /// Removal evicts the dead incarnation's render-cache entries: after
    /// each remove, the cache holds nothing under the dead fingerprint
    /// (re-reading through a fresh view with the same bytes would be a
    /// miss), so occupancy stays bounded by one live incarnation.
    #[test]
    fn removal_evicts_the_dead_views_cache_entries(seed in 0u64..10_000) {
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        k.set_render_caching(true);
        let mut rt = Runtime::new();

        // Baseline: occupancy right after the first incarnation dies.
        let (_, first_fp) = incarnate(&mut k, &mut rt, "phoenix", 2);
        let baseline = k.render_cache_len();

        // The dead fingerprint's entries are gone — evicting again finds
        // nothing to remove.
        prop_assert_eq!(
            k.render_cache_evict_view(first_fp),
            0,
            "remove() left render-cache entries under the dead view"
        );

        // Five more incarnations: occupancy never exceeds the baseline
        // plus one live container's worth of entries (= the per-cycle
        // probe count), because each remove evicts its incarnation.
        for cycle in 0..5u64 {
            let (_, fp) = incarnate(&mut k, &mut rt, "phoenix", 1 + cycle % 3);
            prop_assert_eq!(
                k.render_cache_evict_view(fp),
                0,
                "cycle {} left entries under its dead view", cycle
            );
            prop_assert!(
                k.render_cache_len() <= baseline + PROBES.len(),
                "render cache grew across recreate cycles: {} > {} + {}",
                k.render_cache_len(), baseline, PROBES.len()
            );
        }
    }
}
