//! Property test for the capped read path: an undersized (even
//! zero-length) destination must never panic, and the reported
//! [`ReadStatus`] must be consistent with the uncapped read — in both the
//! host and the container view, for every path the route registry lists.

use proptest::prelude::*;

use containerleaks::leakscan::Lab;
use containerleaks::pseudofs::{PseudoFs, ReadStatus, View, ROUTES};

/// Runs one capped read and cross-checks it against the full read.
fn check_capped(lab: &Lab, view: &View, path: &str, cap: usize) -> Result<(), TestCaseError> {
    let h = lab.host(0);
    let fs = PseudoFs::new();
    let mut full = String::new();
    let mut capped = String::new();
    let whole = fs.read_into(&h.kernel, view, path, &mut full);
    let status = fs.read_capped(&h.kernel, view, path, &mut capped, cap);
    match (whole, status) {
        (Ok(()), Ok(ReadStatus::Complete { len })) => {
            prop_assert_eq!(len, full.len(), "{}: Complete.len != full length", path);
            prop_assert!(
                len <= cap,
                "{}: Complete but {} bytes over cap {}",
                path,
                len,
                cap
            );
            prop_assert_eq!(
                &capped,
                &full,
                "{}: Complete must keep the whole file",
                path
            );
        }
        (Ok(()), Ok(ReadStatus::Short { written, total })) => {
            prop_assert_eq!(total, full.len(), "{}: Short.total != full length", path);
            prop_assert!(
                written <= cap,
                "{}: wrote {} past cap {}",
                path,
                written,
                cap
            );
            prop_assert!(total > cap, "{}: short-read a file that fit", path);
            prop_assert_eq!(written, capped.len(), "{}: Short.written != buffer", path);
            prop_assert!(
                full.starts_with(capped.as_str()),
                "{}: capped read is not a prefix of the full read",
                path
            );
        }
        (Err(a), Err(b)) => {
            prop_assert_eq!(
                a.to_string(),
                b.to_string(),
                "{}: capped and full reads fail differently",
                path
            );
        }
        (w, s) => {
            return Err(TestCaseError::fail(format!(
                "{path}: full read {w:?} but capped read {s:?}"
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random caps (including 0) over random registry routes, both views.
    #[test]
    fn capped_reads_are_consistent_for_any_cap(
        route in 0usize..ROUTES.len(),
        cap in 0usize..100_000,
    ) {
        let lab = Lab::new(1, 4040);
        let path = ROUTES[route].probe;
        for view in [View::host(), lab.host(0).container_view()] {
            check_capped(&lab, &view, path, cap)?;
        }
    }
}

/// The deterministic sweep: every route × both views × the boundary caps.
/// (The proptest above samples; this leaves no route unvisited.)
#[test]
fn every_route_survives_the_boundary_caps() {
    let lab = Lab::new(1, 4041);
    for route in ROUTES {
        for view in [View::host(), lab.host(0).container_view()] {
            for cap in [0usize, 1, 7, 64, 65_536] {
                check_capped(&lab, &view, route.probe, cap)
                    .unwrap_or_else(|e| panic!("{} (cap {cap}): {e}", route.probe));
            }
        }
    }
}
