//! Cross-crate integration: the paper's full story on one fleet —
//! discover the leaks, exploit them for co-residence and power attacks,
//! then deploy the defense and watch the exploit die.

use containerleaks::cloudsim::{
    Cloud, CloudConfig, CloudProfile, HostId, InstanceSpec, PlacementPolicy,
};
use containerleaks::container_runtime::ContainerSpec;
use containerleaks::leakscan::{ChannelClass, CoResDetector, CrossValidator, DetectorKind, Lab};
use containerleaks::powerns::{DefendedHost, Trainer};
use containerleaks::powersim::{
    AttackCampaign, AttackStrategy, DiurnalTrace, Orchestrator, RaplMonitor,
};
use containerleaks::simkernel::MachineConfig;
use containerleaks::workloads::models;

#[test]
fn discover_exploit_defend() {
    // ---- Act 1: discovery on a local testbed. ----
    let lab = Lab::new(1, 90_001);
    let host = lab.host(0);
    let findings = CrossValidator::new().scan(&host.kernel, &host.container_view());
    let leaks: Vec<&str> = findings
        .iter()
        .filter(|f| f.class == ChannelClass::Leaking)
        .map(|f| f.path.as_str())
        .collect();
    assert!(leaks.contains(&"/sys/class/powercap/intel-rapl:0/energy_uj"));
    assert!(leaks.contains(&"/proc/timer_list"));
    assert!(leaks.len() >= 21, "found only {} leaks", leaks.len());

    // ---- Act 2: exploitation in a cloud. ----
    let mut cloud = Cloud::new(
        CloudConfig::new(CloudProfile::CC1)
            .hosts(3)
            .placement(PlacementPolicy::Random),
        90_002,
    );
    cloud.advance_secs(2);
    // 2a. Aggregate co-resident containers via timer_list.
    let mut orch = Orchestrator::new();
    let agg = orch
        .aggregate(&mut cloud, "attacker", 2, 40)
        .expect("aggregation");
    assert_eq!(agg.kept.len(), 2);
    assert_eq!(cloud.coresident(agg.kept[0], agg.kept[1]), Some(true));
    // 2b. Monitor co-resident tenants through RAPL with ~zero CPU cost.
    let mut monitor = RaplMonitor::new();
    let observer = agg.kept[0];
    let _ = monitor
        .sample_watts(&mut cloud, observer, 0.0)
        .expect("rapl readable");
    let victim_host = cloud.instance(observer).expect("observer").host();
    cloud.set_background_demand(victim_host, 0.05);
    cloud.advance_secs(10);
    let calm = monitor
        .sample_watts(&mut cloud, observer, 10.0)
        .expect("rapl readable")
        .expect("warm");
    cloud.set_background_demand(victim_host, 0.85);
    cloud.advance_secs(10);
    let busy = monitor
        .sample_watts(&mut cloud, observer, 20.0)
        .expect("rapl readable")
        .expect("warm");
    assert!(busy > calm + 10.0, "attacker blind: {calm} -> {busy}");
    assert!(
        cloud.bill("attacker").vcpu_seconds < 25.0,
        "monitoring must be cheap"
    );

    // ---- Act 3: the defense closes the oracle. ----
    let model = Trainer::new(90_003).train();
    let mut defended = DefendedHost::new(MachineConfig::testbed_i7_6700(), 90_004, model);
    let spy = defended
        .create_container(ContainerSpec::new("spy"))
        .expect("spy");
    defended
        .exec(spy, "monitor", models::sleeper())
        .expect("spy process");
    let victim = defended
        .create_container(ContainerSpec::new("victim"))
        .expect("victim");
    defended.advance_secs(5);
    let read_spy = |d: &DefendedHost| -> u64 {
        d.read_file(spy, "/sys/class/powercap/intel-rapl:0/energy_uj")
            .expect("defended read")
            .trim()
            .parse()
            .expect("number")
    };
    let s0 = read_spy(&defended);
    defended.advance_secs(10);
    let idle_rate = (read_spy(&defended) - s0) / 10;
    let host0 = defended.host_energy_uj();
    for i in 0..4 {
        defended
            .exec(victim, &format!("p{i}"), models::prime())
            .expect("victim load");
    }
    let s1 = read_spy(&defended);
    defended.advance_secs(10);
    let loaded_rate = (read_spy(&defended) - s1) / 10;
    let host_rate = (defended.host_energy_uj() - host0) / 10.0;

    // Host power visibly surged; the spy's view did not.
    assert!(
        host_rate > idle_rate as f64 + 10e6,
        "victim load invisible to ground truth"
    );
    let drift = (loaded_rate as f64 - idle_rate as f64).abs();
    assert!(
        drift < idle_rate as f64 * 0.15,
        "defense leaked the surge: {idle_rate} -> {loaded_rate}"
    );
}

#[test]
fn masked_clouds_stop_the_rapl_monitor_but_not_cc1() {
    for (profile, expect_readable) in [
        (CloudProfile::CC1, true),
        (CloudProfile::CC2, true),
        (CloudProfile::CC3, true),
        (CloudProfile::CC4, false),
        (CloudProfile::CC5, false),
    ] {
        let mut cloud = Cloud::new(CloudConfig::new(profile).hosts(1), 90_005);
        let inst = cloud
            .launch("t", InstanceSpec::new("probe"))
            .expect("launch");
        cloud.advance_secs(1);
        let mut monitor = RaplMonitor::new();
        let ok = monitor.sample_watts(&mut cloud, inst, 1.0).is_ok();
        assert_eq!(ok, expect_readable, "{profile:?}");
    }
}

#[test]
fn detector_accuracy_is_perfect_across_strategies_on_cc1() {
    let mut cloud = Cloud::new(
        CloudConfig::new(CloudProfile::CC1)
            .hosts(2)
            .placement(PlacementPolicy::BinPack),
        90_006,
    );
    let ids: Vec<_> = (0..6)
        .map(|i| {
            cloud
                .launch("t", InstanceSpec::new(format!("i{i}")))
                .expect("launch")
        })
        .collect();
    for id in &ids {
        cloud
            .exec(*id, "anchor", models::sleeper())
            .expect("anchor");
    }
    cloud.advance_secs(2);
    for kind in [
        DetectorKind::BootId,
        DetectorKind::TimerSignature,
        DetectorKind::UptimeDelta,
    ] {
        let mut d = CoResDetector::new(kind);
        let (correct, total) = d.evaluate_accuracy(&mut cloud, &ids).expect("evaluate");
        assert_eq!(correct, total, "{kind:?} misclassified pairs");
    }
}

#[test]
fn synergistic_attack_dies_on_a_rapl_masked_cloud() {
    // Deploying against CC4 (powercap masked): the synergistic campaign
    // cannot even establish its monitor.
    let mut cloud = Cloud::new(CloudConfig::new(CloudProfile::CC4).hosts(2), 90_007);
    cloud.advance_secs(2);
    let mut campaign = AttackCampaign::deploy(
        &mut cloud,
        AttackStrategy::Synergistic {
            threshold_w: 100.0,
            burst_s: 60,
            cooldown_s: 60,
        },
        1,
        "attacker",
    )
    .expect("deploy");
    let mut trace = DiurnalTrace::flat(0.2, 90_007);
    let result = campaign.run(&mut cloud, &mut trace, 0, 30, None);
    assert!(result.is_err(), "masked cloud should blind the campaign");
}

#[test]
fn host_power_sums_match_between_views() {
    // The wall power powersim reports is consistent with what a tenant
    // derives from the RAPL channel plus the platform overhead.
    let mut cloud = Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(1), 90_008);
    let inst = cloud
        .launch("t", InstanceSpec::new("probe").vcpus(1))
        .expect("launch");
    let mut monitor = RaplMonitor::new();
    let _ = monitor
        .sample_watts(&mut cloud, inst, 0.0)
        .expect("readable");
    cloud.advance_secs(30);
    let pkg_w = monitor
        .sample_watts(&mut cloud, inst, 30.0)
        .expect("readable")
        .expect("warm");
    let wall_w = cloud.host_power_w(HostId(0));
    assert!(wall_w > pkg_w, "wall includes platform + PSU loss");
    assert!(wall_w < pkg_w + 100.0, "platform overhead bounded");
}
