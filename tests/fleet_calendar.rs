//! Tier-1 gate: the sharded, lazily-advanced fleet (global event
//! calendar, closed-form fast-forward of quiescent hosts) is
//! byte-identical to the eager naive-stepping reference.
//!
//! Each proptest case derives one tenant-lifecycle script and replays it
//! twice: once on a lazy calendar fleet with a drawn shard count and
//! worker-thread count, once on an unsharded eager fleet stepped
//! serially. Everything observable must match byte for byte —
//! per-instance pseudo-fs probes taken mid-script, the full per-host
//! pseudo-fs surface and wall power at the end, every tenant's bill,
//! and the simtrace event transcript (modulo the documented mode-exempt
//! bookkeeping, which legitimately counts calendar pops and syncs).
//!
//! Lives in its own integration-test binary because `simtrace::install`
//! is once-per-process and both replays share the process-global sink.

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use containerleaks::cloudsim::{Cloud, CloudConfig, CloudProfile, InstanceId, InstanceSpec};
use containerleaks::pseudofs::{PseudoFs, View};
use containerleaks::simkernel::FaultPlan;
use containerleaks::simtrace;
use containerleaks::workloads::models;
use proptest::prelude::*;

/// Channels probed from inside a live instance mid-script: time,
/// scheduler, memory, net, and cgroup classes.
const PROBE_CHANNELS: &[&str] = &[
    "/proc/uptime",
    "/proc/stat",
    "/proc/meminfo",
    "/proc/loadavg",
    "/proc/net/dev",
    "/proc/self/cgroup",
];

fn sink() -> &'static Arc<simtrace::MemorySink> {
    static SINK: OnceLock<Arc<simtrace::MemorySink>> = OnceLock::new();
    SINK.get_or_init(|| {
        let sink = Arc::new(simtrace::MemorySink::new());
        simtrace::install(Arc::clone(&sink) as Arc<dyn simtrace::TraceSink>);
        sink
    })
}

/// One scripted step: an action roll (0..100) and an advance span.
#[derive(Debug, Clone)]
struct Step {
    roll: u32,
    pick: u32,
    advance_secs: u64,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u32..100, 0u32..1_000_000, 1u64..5).prop_map(|(roll, pick, advance_secs)| Step {
            roll,
            pick,
            advance_secs,
        }),
        8..14,
    )
}

/// Replays the script on one fleet configuration and returns
/// `(snapshot, transcript)`: every observable byte the script saw, and
/// the rendered trace events (counter lines dropped — the counter store
/// is process-global and cumulative — and mode-exempt lines dropped,
/// since calendar bookkeeping legitimately varies with the sharding).
#[allow(clippy::too_many_arguments)]
fn run_script(
    seed: u64,
    hosts: usize,
    steps: &[Step],
    shards: usize,
    eager: bool,
    jobs: usize,
    coalesce: bool,
    faults: bool,
) -> (String, String) {
    sink().drain();
    let mut cfg = CloudConfig::new(CloudProfile::CC2)
        .hosts(hosts)
        .hosts_per_rack(2)
        .shards(shards)
        .without_background();
    if eager {
        cfg = cfg.eager_advance();
    }
    let mut cloud = Cloud::new(cfg, seed);
    cloud.set_coalescing(coalesce);
    if faults {
        cloud.install_faults(&FaultPlan::standard(seed));
    }

    let mut snap = String::new();
    let mut live: Vec<InstanceId> = Vec::new();
    let mut launched = 0u32;
    for (i, step) in steps.iter().enumerate() {
        if live.is_empty() || step.roll < 35 {
            launched += 1;
            let tenant = format!("t{}", step.pick % 3);
            let spec = InstanceSpec::new(format!("i{launched}")).vcpus(1 + (step.pick % 2) as u16);
            match cloud.launch(&tenant, spec) {
                Ok(id) => {
                    live.push(id);
                    let _ = writeln!(snap, "launch {tenant} {id:?}");
                }
                Err(e) => {
                    let _ = writeln!(snap, "launch {tenant} <{e:?}>");
                }
            }
        } else if step.roll < 55 {
            let id = live[step.pick as usize % live.len()];
            let r = cloud.exec(id, &format!("svc-{i}"), models::web_service(0.4));
            let _ = writeln!(snap, "exec {id:?} {r:?}");
        } else if step.roll < 70 {
            let id = live[step.pick as usize % live.len()];
            let r = cloud.implant_timer(id, &format!("timer-{i}"));
            let _ = writeln!(snap, "timer {id:?} {r:?}");
        } else if step.roll < 85 {
            let id = live.swap_remove(step.pick as usize % live.len());
            let r = cloud.terminate(id);
            let _ = writeln!(snap, "terminate {id:?} {r:?}");
        }
        cloud.advance_secs_threads(step.advance_secs, jobs);

        if let Some(&id) = live.get(step.pick as usize % live.len().max(1)) {
            for ch in PROBE_CHANNELS {
                match cloud.read_file(id, ch) {
                    Ok(bytes) => snap.push_str(&bytes),
                    Err(e) => {
                        let _ = writeln!(snap, "<{e:?}>");
                    }
                }
            }
        }
    }

    // End-of-script surface: every host's full host-view pseudo-fs plus
    // wall power, regardless of how lagged the calendar left it.
    let fs = PseudoFs::new();
    let view = View::host();
    for host in cloud.hosts() {
        for path in fs.list(host.kernel(), &view) {
            match fs.read(host.kernel(), &view, &path) {
                Ok(bytes) => snap.push_str(&bytes),
                Err(e) => {
                    let _ = writeln!(snap, "{path} <{e:?}>");
                }
            }
        }
    }
    for h in 0..cloud.host_count() {
        let w = cloud.host_power_w(containerleaks::cloudsim::HostId(h as u32));
        let _ = writeln!(snap, "host{h} {w:.6} W");
    }
    for t in 0..3 {
        let _ = writeln!(snap, "t{t} {:?}", cloud.bill(&format!("t{t}")));
    }

    let rendered = simtrace::render_jsonl(seed, &sink().drain());
    let transcript: String = rendered
        .lines()
        .filter(|l| {
            // Counter and profile rows render the *cumulative* process-
            // global stores; only the event stream is per-run.
            !l.contains("\"type\":\"counter\"")
                && !l.contains("\"type\":\"profile\"")
                && !l.contains("\"group\":\"mode-exempt\"")
        })
        .map(|l| format!("{l}\n"))
        .collect();
    (snap, transcript)
}

/// First line where two transcripts differ, for failure messages.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {i}:\n  a: {la}\n  b: {lb}");
        }
    }
    format!(
        "line counts differ: {} vs {}\n  a tail: {:?}\n  b tail: {:?}",
        a.lines().count(),
        b.lines().count(),
        a.lines().last(),
        b.lines().last()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The lazy calendar path, under any sharding and worker count, must
    /// be indistinguishable from naive eager stepping — and from itself
    /// under a different shard count (the ci.sh `--shards 1` vs
    /// `--shards 8` gate, in miniature and seeded). One `#[test]`, not
    /// several: the replays share the process-global trace sink, so a
    /// sibling test draining it concurrently would corrupt transcripts.
    #[test]
    fn lazy_calendar_matches_eager_reference(
        seed in 0u64..1_000_000,
        hosts in 1usize..7,
        steps in arb_steps(),
        shards in 1usize..9,
        jobs in 1usize..5,
        modes in 0u32..4,
    ) {
        let (coalesce, faults) = (modes & 1 == 1, modes & 2 == 2);
        let (snap_eager, trace_eager) =
            run_script(seed, hosts, &steps, 1, true, 1, coalesce, faults);
        let (snap_lazy, trace_lazy) =
            run_script(seed, hosts, &steps, shards, false, jobs, coalesce, faults);
        prop_assert!(
            snap_eager == snap_lazy,
            "observable bytes diverged: {}",
            first_diff(&snap_eager, &snap_lazy)
        );
        prop_assert!(
            trace_eager == trace_lazy,
            "trace transcript diverged: {}",
            first_diff(&trace_eager, &trace_lazy)
        );
        let (snap_one, trace_one) =
            run_script(seed, hosts, &steps, 1, false, 1, coalesce, faults);
        prop_assert!(
            snap_one == snap_lazy,
            "bytes diverged across shard counts: {}",
            first_diff(&snap_one, &snap_lazy)
        );
        prop_assert!(
            trace_one == trace_lazy,
            "trace diverged across shard counts: {}",
            first_diff(&trace_one, &trace_lazy)
        );
    }
}
