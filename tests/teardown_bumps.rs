//! Teardown paths must bump every dirty epoch they invalidate — and
//! unwind every registry entry they created.
//!
//! The render cache trusts the per-subsystem epochs completely: a
//! teardown path that mutates kernel state without bumping the epochs
//! its pseudo-files depend on would let the cache serve stale bytes
//! forever. These tests pin the bump masks of [`Kernel::kill`] and
//! [`Kernel::destroy_container_env`] bit by bit, then drive the seeded
//! churn loop to prove the same contracts hold at fuzzable rates: twin
//! kernels (cache on / cache off) stay byte-identical through an entire
//! create–work–kill–destroy script, and the namespace registry returns
//! to its baseline size once everything is torn down.

use containerleaks::pseudofs::{PseudoFs, View};
use containerleaks::simkernel::{dep, ChurnDriver, ChurnPlan, Kernel, MachineConfig};
use containerleaks::workloads::models;

/// Per-subsystem epoch snapshot, one masked sum per `dep` bit.
fn per_bit(k: &Kernel) -> Vec<(u32, u64)> {
    dep::BITS
        .iter()
        .map(|b| (*b, k.epochs().masked_sum(*b)))
        .collect()
}

/// Asserts that exactly the subsystems in `expected` advanced between
/// the two snapshots; everything else must have stood still.
fn assert_bumped(before: &[(u32, u64)], after: &[(u32, u64)], expected: u32, what: &str) {
    for ((bit, b), (_, a)) in before.iter().zip(after) {
        if expected & bit != 0 {
            assert!(
                a > b,
                "{what} must bump the {} epoch",
                dep::mask_names(*bit)
            );
        } else {
            assert_eq!(
                a,
                b,
                "{what} bumped the unrelated {} epoch",
                dep::mask_names(*bit)
            );
        }
    }
}

#[test]
fn kill_bumps_process_ns_fs_and_timer_epochs() {
    let mut k = Kernel::new(MachineConfig::small_server(), 3);
    let pid = k.spawn_host_process("victim", models::sleeper()).unwrap();
    k.advance_secs(2);
    let before = per_bit(&k);
    k.kill(pid).unwrap();
    // /proc listings (PROCESS), per-ns pid views (NS), open-fd derived
    // files (FS), and the dead process's timers (TIMERS) all changed.
    assert_bumped(
        &before,
        &per_bit(&k),
        dep::PROCESS | dep::NS | dep::FS | dep::TIMERS,
        "kill",
    );
}

#[test]
fn destroying_an_idle_container_env_bumps_ns_net_and_cgroup_epochs() {
    let mut k = Kernel::new(MachineConfig::small_server(), 5);
    let env = k.create_container_env("idle").unwrap();
    k.advance_secs(1);
    let before = per_bit(&k);
    k.destroy_container_env(&env).unwrap();
    // No member processes, so the teardown is purely namespace + veth +
    // cgroup removal; the process/fs/timer epochs must not move.
    assert_bumped(
        &before,
        &per_bit(&k),
        dep::NS | dep::NET | dep::CGROUP,
        "destroy_container_env (idle)",
    );
}

#[test]
fn destroying_a_populated_env_also_bumps_the_process_epochs() {
    let mut k = Kernel::new(MachineConfig::small_server(), 8);
    let env = k.create_container_env("busy").unwrap();
    let spec = containerleaks::simkernel::kernel::ProcessSpec::new("inmate", models::sleeper())
        .in_container(&env);
    k.spawn(spec).unwrap();
    k.advance_secs(1);
    let before = per_bit(&k);
    k.destroy_container_env(&env).unwrap();
    // The member process is reaped through the same cleanup path as
    // kill, so its bump mask rides along with the env teardown's.
    assert_bumped(
        &before,
        &per_bit(&k),
        dep::NS | dep::NET | dep::CGROUP | dep::PROCESS | dep::FS | dep::TIMERS,
        "destroy_container_env (populated)",
    );
}

/// Channels read after every churn event; chosen to depend on the
/// namespace, cgroup, process, and net subsystems the teardown paths
/// touch.
const PROBES: &[&str] = &[
    "/proc/stat",
    "/proc/uptime",
    "/proc/net/dev",
    "/proc/self/cgroup",
    "/sys/fs/cgroup/cpuacct/cpuacct.usage",
];

/// Runs the seeded churn script on a fresh kernel and folds every event
/// and every probe read (host view plus each live container view) into
/// one transcript string.
fn churn_transcript(cache: bool, seed: u64) -> String {
    let mut k = Kernel::new(MachineConfig::small_server(), seed);
    k.set_render_caching(cache);
    let mut driver = ChurnDriver::new(ChurnPlan::new(seed).cycles(16).max_live(3));
    let fs = PseudoFs::new();
    let mut out = String::new();
    for _ in 0..16 {
        let event = driver.step(&mut k);
        out.push_str(&format!("{event:?}\n"));
        k.advance_secs(1);
        let mut views = vec![View::host()];
        views.extend(
            driver
                .live()
                .iter()
                .map(|(env, _)| View::container(env.ns, env.cgroups)),
        );
        for view in &views {
            for path in PROBES {
                match fs.read(&k, view, path) {
                    Ok(body) => out.push_str(&body),
                    Err(e) => out.push_str(&format!("<{e:?}>")),
                }
            }
        }
    }
    driver.teardown_all(&mut k);
    for path in PROBES {
        match fs.read(&k, &View::host(), path) {
            Ok(body) => out.push_str(&body),
            Err(e) => out.push_str(&format!("<{e:?}>")),
        }
    }
    out
}

#[test]
fn churn_script_is_byte_identical_across_cache_modes() {
    for seed in [0, 11, 4242] {
        assert_eq!(
            churn_transcript(true, seed),
            churn_transcript(false, seed),
            "cached vs uncached churn transcripts diverged (seed {seed})"
        );
    }
}

#[test]
fn churn_teardown_returns_the_namespace_registry_to_baseline() {
    let mut k = Kernel::new(MachineConfig::small_server(), 7);
    let baseline = k.namespaces().len();
    let mut driver = ChurnDriver::new(ChurnPlan::new(7).cycles(24).max_live(4));
    driver.run(&mut k);
    driver.teardown_all(&mut k);
    assert!(
        driver.live().is_empty(),
        "teardown_all left live containers"
    );
    assert_eq!(
        k.namespaces().len(),
        baseline,
        "namespace registry leaked entries across a churn run"
    );
}

#[test]
fn evicting_destroyed_views_bounds_the_render_cache() {
    // Two back-to-back churn runs with eviction after each teardown: the
    // cache must end no larger than one generation of live views leaves
    // it — destroyed containers' fingerprints never recur, so without
    // eviction occupancy would grow with every generation.
    let mut k = Kernel::new(MachineConfig::small_server(), 13);
    k.set_render_caching(true);
    let fs = PseudoFs::new();
    let live_fps = |d: &ChurnDriver| -> std::collections::HashSet<u64> {
        d.live()
            .iter()
            .map(|(env, _)| View::container(env.ns, env.cgroups).fingerprint())
            .collect()
    };
    let mut occupancy_after = Vec::new();
    for generation in 0..2u64 {
        let mut driver = ChurnDriver::new(ChurnPlan::new(13 + generation).cycles(12).max_live(3));
        let mut prev = live_fps(&driver);
        for _ in 0..12 {
            driver.step(&mut k);
            let now = live_fps(&driver);
            // Evict what this cycle destroyed, exactly as the container
            // runtime does on removal.
            for fp in prev.difference(&now) {
                k.render_cache_evict_view(*fp);
            }
            prev = now;
            k.advance_secs(1);
            for (env, _) in driver.live() {
                let view = View::container(env.ns, env.cgroups);
                for path in PROBES {
                    let _ = fs.read(&k, &view, path);
                }
            }
        }
        driver.teardown_all(&mut k);
        for fp in prev {
            k.render_cache_evict_view(fp);
        }
        occupancy_after.push(k.render_cache_len());
    }
    // Only host-view entries (a fixed set of routes) may persist across
    // generations, so occupancy must not grow from one run to the next.
    assert!(
        occupancy_after[1] <= occupancy_after[0],
        "render cache grew across evicted churn generations: {occupancy_after:?}"
    );
}
