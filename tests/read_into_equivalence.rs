//! The allocation-reusing `read_into` path must be byte-identical to the
//! allocating `read` path on every file the tree lists, in both reader
//! contexts — the scanner and the metric windows stream through
//! `read_into`, so a divergent fast arm would silently skew every
//! downstream result.

use containerleaks::leakscan::Lab;
use containerleaks::pseudofs::{PseudoFs, View, ROUTES};

#[test]
fn read_and_read_into_agree_on_every_listed_path() {
    let lab = Lab::new(1, 41);
    let h = lab.host(0);
    let fs = PseudoFs::new();
    let mut buf = String::new();
    let mut checked = 0usize;
    for view in [View::host(), h.container_view()] {
        for path in fs.list(&h.kernel, &view) {
            let direct = fs
                .read(&h.kernel, &view, &path)
                .unwrap_or_else(|e| panic!("{path} listed but unreadable: {e}"));
            fs.read_into(&h.kernel, &view, &path, &mut buf)
                .unwrap_or_else(|e| panic!("{path} read_into failed: {e}"));
            assert_eq!(direct, buf, "read vs read_into diverge on {path}");
            checked += 1;
        }
    }
    assert!(checked > 150, "both views walked, got {checked} paths");
}

#[test]
fn fast_arms_cover_every_registered_fast_path() {
    // The nine registered fast arms are exactly the hand-written
    // buffer renderers; exercise each probe explicitly so a dropped
    // `read_into` match arm cannot hide behind the dispatch fallback.
    let lab = Lab::new(1, 42);
    let h = lab.host(0);
    let fs = PseudoFs::new();
    let view = View::host();
    let mut buf = String::new();
    let fast: Vec<_> = ROUTES.iter().filter(|r| r.fast_into.is_some()).collect();
    assert_eq!(fast.len(), 9);
    for r in fast {
        fs.read_into(&h.kernel, &view, r.probe, &mut buf).unwrap();
        assert_eq!(
            fs.read(&h.kernel, &view, r.probe).unwrap(),
            buf,
            "{}",
            r.probe
        );
        assert!(!buf.is_empty(), "{} rendered empty", r.probe);
    }
}
