//! Counter coverage under the standard fault plan: a faulted run that
//! reads every sensor class must light up a nonzero counter for every
//! §4.1 fault class, plus the tick-shape counters in their documented
//! determinism groups.
//!
//! Lives in its own integration-test binary because `simtrace::install`
//! is once-per-process and the counter store is process-global; both
//! checks share one `#[test]` so the delta arithmetic on the global
//! counters never races another test.

use std::sync::Arc;

use containerleaks::cloudsim::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
use containerleaks::simkernel::{FaultPlan, Kernel, MachineConfig, NANOS_PER_SEC};
use containerleaks::simtrace;

fn counter(name: &str) -> u64 {
    simtrace::counters::snapshot()
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

#[test]
fn faulted_run_counters_cover_every_class_and_group() {
    simtrace::install(Arc::new(simtrace::MemorySink::new()));

    // Part 1 — tick shape. An idle kernel with coalescing on jumps in
    // multi-tick spans; with it off the same idle time is walked tick
    // by tick. Both shapes are counted as mode-exempt, while the
    // portable quiescent_ns total is identical either way.
    let mut coalescing = Kernel::new(MachineConfig::testbed_i7_6700(), 7);
    coalescing.set_coalescing(true);
    coalescing.advance(3 * NANOS_PER_SEC);
    let spans = counter("kernel.quiescent_spans");
    let idle_on = counter("kernel.quiescent_ns");
    assert!(spans > 0, "coalescing on must produce multi-tick spans");

    let mut ticking = Kernel::new(MachineConfig::testbed_i7_6700(), 7);
    ticking.set_coalescing(false);
    ticking.advance(3 * NANOS_PER_SEC);
    let stepped = counter("kernel.quiescent_stepped_ticks");
    assert!(stepped > 0, "coalescing off must walk quiescent ticks");
    assert_eq!(
        counter("kernel.quiescent_ns") - idle_on,
        idle_on,
        "portable quiescent_ns must not depend on the coalescing mode"
    );
    for entry in &simtrace::counters::snapshot() {
        let exempt = entry.group == simtrace::Group::ModeExempt;
        // The two tick-shape counters, plus the epoch-bump tally: the
        // fleet calendar's lazy fast-forward folds many eager `advance`
        // calls into one covering call, so the bump *count* (never any
        // epoch comparison outcome) varies with the stepping mode.
        let is_shape = entry.name == "kernel.quiescent_spans"
            || entry.name == "kernel.quiescent_stepped_ticks"
            || entry.name == "kernel.epoch_bump";
        assert_eq!(exempt, is_shape, "{} in wrong group", entry.name);
    }

    // Part 2 — fault classes. A standard faulted run polling every
    // sensor class once per second across the whole 300 s horizon:
    // plain files (EIO / short reads), the energy counter (dropout /
    // quantization), the thermal zone (dropout / saturation), and
    // uptime (clock skew). Errors are the point.
    let _scope = simtrace::scope("counters/faulted");
    let mut cloud = Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(1), 1729);
    let probe = cloud
        .launch("probe", InstanceSpec::new("p").vcpus(1))
        .expect("launch");
    cloud.advance_secs(1);
    cloud.install_faults(&FaultPlan::standard(1729));

    const POLLED: [&str; 8] = [
        "/proc/stat",
        "/proc/meminfo",
        "/proc/loadavg",
        "/proc/interrupts",
        "/proc/schedstat",
        "/sys/class/powercap/intel-rapl:0/energy_uj",
        "/sys/class/thermal/thermal_zone0/temp",
        "/proc/uptime",
    ];
    for _ in 0..300 {
        cloud.advance_secs(1);
        for path in POLLED {
            let _ = cloud.read_file(probe, path);
        }
    }

    // Every §4.1 fault class must have fired at least once.
    for class in [
        "faults.injected.fs.eio",
        "faults.injected.fs.short_read",
        "faults.injected.sensor.dropout",
        "faults.injected.sensor.saturation",
        "faults.injected.sensor.quantization",
        "faults.injected.clock.skew",
    ] {
        assert!(
            counter(class) > 0,
            "{class} never fired: {:#?}",
            simtrace::counters::snapshot()
        );
    }
    // The plan's mid-horizon crash-reboot happened and was counted.
    assert!(counter("faults.reboots") >= 1);
    assert!(counter("faults.plans_installed") >= 1);
    // The probes themselves were accounted per channel. Only successful
    // reads count, so EIO windows and reboot downtime shave a few off
    // the 300 polls.
    assert!(counter("pseudofs.read./proc/uptime") >= 250);
}
