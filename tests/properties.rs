//! Property-based invariants across the workspace (proptest).

use proptest::prelude::*;

use containerleaks::leakscan::metrics::joint_entropy;
use containerleaks::powersim::{BreakerState, CircuitBreaker};
use containerleaks::pseudofs::view::glob_match;
use containerleaks::simkernel::{Kernel, MachineConfig, NANOS_PER_SEC};
use containerleaks::workloads::{Phase, Repeat, WorkloadClass, WorkloadSpec};

fn arb_phase() -> impl Strategy<Value = Phase> {
    (
        1_000_000u64..10_000_000_000,
        0.1f64..6.0,
        0.0f64..40.0,
        0.0f64..20.0,
        0.0f64..1.0,
        0.01f64..1.0,
    )
        .prop_map(|(dur, ipc, cm, bm, fp, demand)| Phase {
            duration_ns: dur,
            instructions_per_cycle: ipc,
            cache_miss_per_kilo_instr: cm,
            branch_miss_per_kilo_instr: bm,
            fp_ratio: fp,
            mem_bytes: 16 << 20,
            syscalls_per_sec: 100.0,
            io_bytes_per_sec: 0.0,
            cpu_demand: demand,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Energy counters never decrease and scale with elapsed time,
    /// whatever workload mix runs.
    #[test]
    fn rapl_counters_monotone_under_any_workload(
        phases in proptest::collection::vec(arb_phase(), 1..4),
        seed in 0u64..1_000,
    ) {
        let spec = WorkloadSpec::new("prop", WorkloadClass::Mixed, phases, Repeat::Forever);
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        k.spawn_host_process("w", spec).unwrap();
        let mut last = 0u64;
        for _ in 0..6 {
            k.advance_secs(1);
            let e = k.rapl().raw(0).unwrap().package_uj as u64;
            prop_assert!(e >= last, "energy decreased: {last} -> {e}");
            prop_assert!(e > last, "energy frozen");
            last = e;
        }
    }

    /// The scheduler conserves CPU time: total busy time across processes
    /// never exceeds machine capacity.
    #[test]
    fn scheduler_conserves_cpu_time(
        phases in proptest::collection::vec(arb_phase(), 1..3),
        nprocs in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let spec = WorkloadSpec::new("prop", WorkloadClass::Mixed, phases, Repeat::Forever);
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        let pids: Vec<_> = (0..nprocs)
            .map(|i| k.spawn_host_process(&format!("w{i}"), spec.clone()).unwrap())
            .collect();
        let secs = 5u64;
        k.advance_secs(secs);
        let total: u64 = pids.iter().map(|p| k.process(*p).unwrap().cpu_time_ns()).sum();
        let capacity = secs * NANOS_PER_SEC * u64::from(k.config().cpus);
        prop_assert!(total <= capacity, "overcommitted: {total} > {capacity}");
        // And at least one process made progress.
        prop_assert!(total > 0);
    }

    /// Uptime and idle accounting stay consistent: idle time never exceeds
    /// cpus × uptime.
    #[test]
    fn idle_time_bounded_by_capacity(seed in 0u64..500, secs in 1u64..30) {
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        k.advance_secs(secs);
        let idle = k.total_idle_ns();
        let cap = secs * NANOS_PER_SEC * u64::from(k.config().cpus);
        prop_assert!(idle <= cap);
        prop_assert!(idle >= cap / 2, "idle machine should be mostly idle");
    }

    /// Joint entropy is non-negative and bounded by log2(samples) per field.
    #[test]
    fn entropy_bounds(
        data in proptest::collection::vec(
            proptest::collection::vec(0u8..16, 3),
            2..40,
        )
    ) {
        let snaps: Vec<Vec<f64>> = data
            .iter()
            .map(|row| row.iter().map(|v| f64::from(*v)).collect())
            .collect();
        let h = joint_entropy(&snaps);
        let n_fields = 3.0;
        let max = n_fields * (snaps.len() as f64).log2();
        prop_assert!(h >= 0.0);
        prop_assert!(h <= max + 1e-9, "h = {h} > {max}");
    }

    /// Glob matching: a pattern always matches itself when it has no
    /// wildcards, and `**` extension matches any suffix.
    #[test]
    fn glob_reflexivity_and_suffix(
        segs in proptest::collection::vec("[a-z0-9_]{1,8}", 1..5),
        extra in proptest::collection::vec("[a-z0-9_]{1,8}", 0..3),
    ) {
        let path = format!("/{}", segs.join("/"));
        prop_assert!(glob_match(&path, &path));
        let pattern = format!("{path}/**");
        let longer = if extra.is_empty() {
            // `**` does not match the bare prefix without a further segment
            // unless the path equals the prefix-with-empty-suffix; check
            // with one synthetic segment instead.
            format!("{path}/x")
        } else {
            format!("{path}/{}", extra.join("/"))
        };
        prop_assert!(glob_match(&pattern, &longer), "{pattern} !~ {longer}");
    }

    /// Breaker: never trips at or below rating; always trips at sustained
    /// gross overload; trip time decreases with load.
    #[test]
    fn breaker_inverse_time(rated in 100.0f64..5_000.0, over in 1.1f64..1.9) {
        let mut ok = CircuitBreaker::new(rated);
        for _ in 0..600 {
            prop_assert_eq!(ok.step(rated * 0.99, 1.0), BreakerState::Closed);
        }
        let trip_time = |factor: f64| -> u64 {
            let mut b = CircuitBreaker::new(rated);
            let mut t = 0;
            while b.step(rated * factor, 1.0) == BreakerState::Closed {
                t += 1;
                if t > 100_000 { break; }
            }
            t
        };
        let slow = trip_time(over);
        let fast = trip_time(over + 0.1);
        prop_assert!(slow < 100_000, "never tripped at {over}x");
        prop_assert!(fast <= slow, "higher load must trip no later");
    }

    /// The pseudo filesystem never panics, whatever path it's asked for.
    #[test]
    fn pseudofs_read_never_panics(path in "[/a-z0-9_.:*-]{0,60}", seed in 0u64..100) {
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        k.advance_secs(1);
        let fs = containerleaks::pseudofs::PseudoFs::new();
        let view = containerleaks::pseudofs::View::host();
        let _ = fs.read(&k, &view, &path); // must not panic
    }

    /// Masking soundness: under any deny policy, the set of readable
    /// container files is a subset of the unmasked set — a policy can only
    /// remove visibility, never add it.
    #[test]
    fn masking_only_removes_visibility(
        patterns in proptest::collection::vec("/(proc|sys)/[a-z_*]{1,12}(/[a-z_*]{1,12}){0,2}", 0..5),
        seed in 0u64..50,
    ) {
        use containerleaks::pseudofs::{MaskPolicy, PseudoFs};
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        let env = k.create_container_env("c").unwrap();
        k.advance_secs(1);
        let fs = PseudoFs::new();
        let open_view =
            containerleaks::pseudofs::View::container(env.ns, env.cgroups);
        let mut policy = MaskPolicy::none();
        for p in &patterns {
            policy = policy.deny(p.clone());
        }
        let masked_view = containerleaks::pseudofs::View::container(env.ns, env.cgroups)
            .with_policy(policy);
        let open: std::collections::HashSet<String> =
            fs.list(&k, &open_view).into_iter().collect();
        let masked = fs.list(&k, &masked_view);
        for p in &masked {
            prop_assert!(open.contains(p), "masking conjured {p}");
            // And everything listed stays readable under the policy.
            prop_assert!(fs.read(&k, &masked_view, p).is_ok(), "{p} unreadable");
        }
        prop_assert!(masked.len() <= open.len());
    }

    /// Leak monotonicity: a container never reads content the host context
    /// cannot also obtain (the host view is the information-theoretic
    /// upper bound the leaks approach).
    #[test]
    fn container_view_is_bounded_by_host_view(seed in 0u64..40) {
        use containerleaks::pseudofs::{PseudoFs, View};
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        let env = k.create_container_env("c").unwrap();
        k.advance_secs(1);
        let fs = PseudoFs::new();
        let cview = View::container(env.ns, env.cgroups);
        for path in fs.list(&k, &cview) {
            if path.starts_with("/proc/1/") || path.starts_with("/proc/2/") {
                continue; // pid numbering differs across namespaces
            }
            prop_assert!(
                fs.read(&k, &View::host(), &path).is_ok(),
                "container-only visibility on {path}"
            );
        }
    }

    /// Container pid namespaces are bijective: every container process has
    /// exactly one in-namespace pid, and host pids are globally unique.
    #[test]
    fn pid_mapping_bijective(n in 1usize..6, seed in 0u64..200) {
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        let env = k.create_container_env("c").unwrap();
        let mut host_pids = std::collections::HashSet::new();
        let mut ns_pids = std::collections::HashSet::new();
        for i in 0..n {
            let pid = k
                .spawn(
                    containerleaks::simkernel::kernel::ProcessSpec::new(
                        format!("p{i}"),
                        containerleaks::workloads::models::sleeper(),
                    )
                    .in_container(&env),
                )
                .unwrap();
            prop_assert!(host_pids.insert(pid));
            prop_assert!(ns_pids.insert(k.process(pid).unwrap().ns_pid()));
        }
        prop_assert_eq!(ns_pids.len(), n);
        // In-namespace pids are dense from 1.
        prop_assert_eq!(*ns_pids.iter().max().unwrap(), n as u32);
    }

    /// Parallel fleet stepping is bitwise equal to serial: whatever the
    /// seed, host count and thread count, `Cloud::advance_secs_threads`
    /// produces the same per-host `PowerSnapshot` sequence and the same
    /// pseudofs reads. Determinism is per-host RNG ownership, not
    /// single-threadedness.
    #[test]
    fn parallel_fleet_stepping_matches_serial(
        hosts in 1usize..5,
        threads in 2usize..6,
        seed in 0u64..500,
    ) {
        use containerleaks::cloudsim::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
        let run = |threads: usize| {
            let mut cloud =
                Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(hosts), seed);
            let obs = cloud.launch("t", InstanceSpec::new("obs")).unwrap();
            let mut snaps = Vec::new();
            let mut reads = Vec::new();
            for _ in 0..3 {
                cloud.advance_secs_threads(5, threads);
                for h in cloud.hosts() {
                    snaps.push(h.kernel().last_power().clone());
                }
                reads.push(cloud.read_file(obs, "/proc/stat").unwrap());
                reads.push(cloud.read_file(obs, "/proc/interrupts").unwrap());
            }
            (snaps, reads)
        };
        let serial = run(1);
        let parallel = run(threads);
        prop_assert_eq!(&serial.0, &parallel.0, "power snapshots diverged");
        prop_assert_eq!(&serial.1, &parallel.1, "pseudofs reads diverged");
    }
}
