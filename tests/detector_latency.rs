//! Detection latency and false-positive bounds for the online detector.
//!
//! Pins the defender-side guarantees the detection experiment builds
//! on: a Table I prober is flagged within seconds under every exposure
//! tier, a benign low-rate tenant is never flagged no matter the seed,
//! and the watched-channel list actually covers the paper's channel
//! inventory (a Table I channel the detector cannot see would be a
//! silent hole in the whole defense).

use containerleaks::cloudsim::{Cloud, CloudConfig, CloudProfile, DetectorConfig, InstanceSpec};
use containerleaks::detector::watched_index;
use containerleaks::leakscan::{AdaptiveAttacker, AttackerMode, TABLE1_CHANNELS};

/// Drives `secs` of fleet time with an optional persistent prober and a
/// benign tenant polling `/proc/meminfo` at 1/15 Hz; returns the final
/// mask levels (prober, benign) and the first-flag time.
fn run(profile: CloudProfile, seed: u64, secs: u64, with_prober: bool) -> (u8, u8, Option<u64>) {
    let cfg = CloudConfig::new(profile)
        .hosts(2)
        .without_background()
        .detector(DetectorConfig::default());
    let mut cloud = Cloud::new(cfg, seed);
    let benign = cloud
        .launch("alice", InstanceSpec::new("web"))
        .expect("benign");
    let benign_tenant = cloud.instance(benign).expect("benign").tenant().0;
    let prober = with_prober.then(|| {
        let id = cloud
            .launch("mallory", InstanceSpec::new("probe"))
            .expect("prober");
        let t = cloud.instance(id).expect("prober").tenant().0;
        (AdaptiveAttacker::new(AttackerMode::Persistent, id, None), t)
    });
    let mut atk = prober;
    let mut flagged_at = None;
    for s in 0..secs {
        if s % 15 == 0 {
            let _ = cloud.read_file(benign, "/proc/meminfo");
        }
        if let Some((a, _)) = atk.as_mut() {
            a.step(&mut cloud, s);
        }
        cloud.advance_secs(1);
        if flagged_at.is_none() {
            if let (Some((_, t)), Some(d)) = (&atk, cloud.detector()) {
                if d.level(*t) > 0 {
                    flagged_at = Some(s + 1);
                }
            }
        }
    }
    let d = cloud.detector().expect("detector attached");
    let prober_level = atk.as_ref().map_or(0, |(_, t)| d.level(*t));
    (prober_level, d.level(benign_tenant), flagged_at)
}

#[test]
fn prober_is_flagged_within_a_minute_under_every_tier() {
    // ● full exposure, ◐ partial masking, ○ base-deny hardening. Under
    // ○ most reads come back denied — attempted probing is still
    // signal, so the latency bound holds regardless of the tier.
    for (label, profile) in [
        ("CC1 ●", CloudProfile::CC1),
        ("CC5 ◐", CloudProfile::CC5),
        ("CC4 ○", CloudProfile::CC4),
    ] {
        let (level, benign_level, flagged_at) = run(profile, 1729, 90, true);
        let lat = flagged_at.unwrap_or_else(|| panic!("{label}: prober never flagged"));
        assert!(lat <= 60, "{label}: flagged only after {lat} s");
        assert!(level > 0, "{label}: flag did not stick");
        assert_eq!(benign_level, 0, "{label}: benign tenant was masked");
    }
}

#[test]
fn benign_tenant_is_never_flagged_across_seeds() {
    // 16 seeds × 10 simulated minutes of a lone 1/15 Hz poller, across
    // the tier that exposes the most readable channels (every read is
    // observed, none denied) — the detector must stay silent.
    for seed in 0..16u64 {
        let (_, benign_level, _) = run(CloudProfile::CC1, seed, 600, false);
        assert_eq!(benign_level, 0, "seed {seed}: benign tenant flagged");
    }
}

#[test]
fn watched_channels_cover_the_table1_inventory() {
    // Every Table I probe path outside the container's own namespace
    // (`/proc/self/...` is per-container state, not a cross-tenant
    // channel) must map to a watched pattern — otherwise a prober could
    // walk the paper's own channel list invisibly.
    for ch in TABLE1_CHANNELS {
        if ch.probe.starts_with("/proc/self/") {
            continue;
        }
        assert!(
            watched_index(ch.probe).is_some(),
            "Table I channel {} is not watched by the detector",
            ch.probe
        );
    }
}
