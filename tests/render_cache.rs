//! Epoch-keyed render caching must be invisible.
//!
//! The pseudofs render cache serves previously rendered bytes whenever
//! the dependency epochs of a path are unchanged. These tests pin the
//! contract that caching on and off are *byte-identical* — full pseudofs
//! snapshots across host, container, and masked-container views, the
//! leakscan differential pipelines, and the whole fault matrix at
//! several worker counts — with and without an installed [`FaultPlan`]
//! and in both coalescing modes. A property test then checks the
//! soundness direction of the epoch contract itself: rendered bytes
//! never change while the route's masked epoch sum stands still.

use proptest::prelude::*;

use containerleaks::leakscan::{CrossValidator, Hardener, Lab};
use containerleaks::pseudofs::{MaskPolicy, PseudoFs, View};
use containerleaks::simkernel::{
    dep, set_render_caching_default, FaultPlan, Kernel, MachineConfig, NANOS_PER_SEC,
};
use containerleaks::workloads::models;
use containerleaks::{run_fault_matrix, DEFAULT_SEED};

/// Reads every pseudo file in `view` (listing included) into `out`.
fn snapshot_view(k: &Kernel, view: &View, out: &mut String) {
    let fs = PseudoFs::new();
    for path in fs.list(k, view) {
        out.push_str(&path);
        out.push('\n');
        match fs.read(k, view, &path) {
            Ok(body) => out.push_str(&body),
            Err(e) => out.push_str(&format!("<{e:?}>")),
        }
        out.push('\n');
    }
    // A path outside the listing exercises the cached deny verdict when
    // the view's policy masks it, and NotFound caching-bypass otherwise.
    for probe in ["/proc/stat", "/sys/class/powercap/intel-rapl:0/energy_uj"] {
        match fs.read(k, view, probe) {
            Ok(body) => out.push_str(&body),
            Err(e) => out.push_str(&format!("<{e:?}>")),
        }
        out.push('\n');
    }
}

/// One seeded scenario observed at four instants: right after a
/// quiescent stretch (populates the cache), again at the same instant
/// (pure cache hits), after a burst of real work (every dirty epoch
/// advanced — entries must revalidate), and after a long tail crossing
/// the fault plan's reboot. Reads go through a host view, an open
/// container view, and a deny/partial-masked container view.
fn run_scenario(cache: bool, coalesce: bool, faults: bool, seed: u64) -> String {
    let mut k = Kernel::new(MachineConfig::small_server(), seed);
    k.set_render_caching(cache);
    k.set_coalescing(coalesce);
    if faults {
        k.install_faults(FaultPlan::standard(seed));
    }
    let env = k.create_container_env("c1").unwrap();
    let views = [
        View::host(),
        View::container(env.ns, env.cgroups),
        View::container(env.ns, env.cgroups).with_policy(
            MaskPolicy::none()
                .deny("/sys/class/powercap/**")
                .deny("/proc/timer_list")
                .partial("/proc/meminfo"),
        ),
    ];
    let pid = k.spawn_host_process("shell", models::sleeper()).unwrap();
    k.add_user_timer(pid, "itimer", 7 * NANOS_PER_SEC + 123)
        .unwrap();

    let mut out = String::new();
    k.advance_secs(40);
    for v in &views {
        snapshot_view(&k, v, &mut out);
    }
    // Same instant again: with caching on this pass is all cache hits,
    // and it must reproduce the first pass byte for byte.
    for v in &views {
        snapshot_view(&k, v, &mut out);
    }
    let worker = k
        .spawn_host_process("burst", models::stress_small())
        .unwrap();
    k.advance_secs(10);
    for v in &views {
        snapshot_view(&k, v, &mut out);
    }
    let _ = k.kill(worker);
    k.advance_secs(310);
    for v in &views {
        snapshot_view(&k, v, &mut out);
    }
    out
}

#[test]
fn caching_is_invisible_on_a_clean_host() {
    for coalesce in [true, false] {
        for seed in [0, 7, 1729] {
            assert_eq!(
                run_scenario(true, coalesce, false, seed),
                run_scenario(false, coalesce, false, seed),
                "cached vs uncached diverged (clean, coalesce {coalesce}, seed {seed})"
            );
        }
    }
}

#[test]
fn caching_is_invisible_under_the_standard_fault_plan() {
    // Injected EIO, short reads, and sensor distortion all land *after*
    // the cache layer — a fault window must never poison an entry that
    // later fault-free reads would serve.
    for coalesce in [true, false] {
        for seed in [0, 7, 1729] {
            assert_eq!(
                run_scenario(true, coalesce, true, seed),
                run_scenario(false, coalesce, true, seed),
                "cached vs uncached diverged (faulted, coalesce {coalesce}, seed {seed})"
            );
        }
    }
}

#[test]
fn leakscan_pipelines_are_identical_in_both_modes() {
    // The two profiled pipelines — the Table I differential walk and
    // hardening policy generation — must report the same findings and
    // the same policy whether their reads are cached or not, including
    // on a rescan after the kernel advanced.
    let run = |cache: bool| {
        let mut lab = Lab::new(1, DEFAULT_SEED);
        lab.host_mut(0).kernel.set_render_caching(cache);
        let view = lab.host(0).container_view();
        let validator = CrossValidator::new();
        let hardener = Hardener::new();
        let mut out = String::new();
        for _ in 0..2 {
            let findings = validator.scan(&lab.host(0).kernel, &view);
            out.push_str(&serde_json::to_string(&findings).expect("serializable findings"));
            let (policy, report) = hardener.harden(&lab.host(0).kernel, &view);
            out.push_str(&serde_json::to_string(&policy).expect("serializable policy"));
            out.push_str(&serde_json::to_string(&report).expect("serializable report"));
            lab.advance_secs(3);
        }
        out
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn fault_matrix_is_identical_across_cache_modes_and_worker_counts() {
    // The process-wide default is what the CLI `--render-cache` flag
    // flips; crossing it with the worker count proves the artifact
    // bytes depend on neither. Restore the default (on) before exiting
    // so other tests in this binary see the shipped configuration.
    let matrix = |cache: bool, jobs: usize| {
        set_render_caching_default(cache);
        let results = run_fault_matrix(DEFAULT_SEED, jobs);
        set_render_caching_default(true);
        serde_json::to_string(&results).expect("serializable matrix")
    };
    let baseline = matrix(true, 1);
    assert_eq!(baseline, matrix(false, 1), "cache off diverged (jobs 1)");
    assert_eq!(baseline, matrix(true, 4), "jobs 4 diverged (cache on)");
    assert_eq!(baseline, matrix(false, 4), "cache off diverged (jobs 4)");
}

#[test]
fn reads_never_advance_epochs() {
    // The whole cache rests on this: rendering is pure. Listing and
    // reading every path — through every view and both cache modes —
    // must not bump a single subsystem epoch.
    let mut k = Kernel::new(MachineConfig::small_server(), 11);
    let env = k.create_container_env("c1").unwrap();
    k.advance_secs(5);
    let fs = PseudoFs::new();
    let before = k.epochs().total();
    for cache in [true, false] {
        k.set_render_caching(cache);
        for view in [View::host(), View::container(env.ns, env.cgroups)] {
            for path in fs.list(&k, &view) {
                let _ = fs.read(&k, &view, &path);
            }
        }
    }
    assert_eq!(k.epochs().total(), before, "a read bumped an epoch");
    k.set_render_caching(true);
}

/// Routes whose dependency masks span every subsystem class the bump
/// sites distinguish (clock, sched, hw, mem, net, process, cgroup, …).
const PROBED: &[&str] = &[
    "/proc/uptime",
    "/proc/loadavg",
    "/proc/meminfo",
    "/proc/stat",
    "/proc/net/dev",
    "/proc/timer_list",
    "/proc/interrupts",
    "/sys/fs/cgroup/cpuacct/cpuacct.usage",
    "/proc/sys/kernel/random/entropy_avail",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The soundness direction of the epoch contract, on a fault-free
    /// kernel (distortion faults change bytes *after* the cache layer by
    /// design, so the claim is scoped to clean reads): whenever a
    /// route's rendered bytes change between two instants, the masked
    /// sum of its declared dependency epochs must have advanced — and
    /// the total epoch sum never decreases.
    #[test]
    fn changed_bytes_imply_advanced_epochs(seed in 0u64..10_000) {
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        k.set_render_caching(seed % 2 == 0);
        let fs = PseudoFs::new();
        let view = View::host();
        let masks: Vec<u32> = PROBED
            .iter()
            .map(|p| containerleaks::pseudofs::route_for(p).map_or(dep::ALL, |r| r.deps))
            .collect();

        let mut last: Vec<(String, u64)> = Vec::new();
        let mut last_total = k.epochs().total();
        let mut worker = None;
        for step in 0..6u64 {
            // Seed-derived evolution: uneven advances plus a spawn/kill
            // pair so run ticks, idle ticks, and process-table changes
            // all occur somewhere in the walk.
            let secs = 1 + (seed.wrapping_mul(31).wrapping_add(step * 7)) % 9;
            k.advance_secs(secs);
            if step == 2 {
                worker = k.spawn_host_process("w", models::stress_small()).ok();
            }
            if step == 4 {
                if let Some(pid) = worker.take() {
                    let _ = k.kill(pid);
                }
            }

            let total = k.epochs().total();
            prop_assert!(total >= last_total, "total epoch sum went backwards");
            last_total = total;

            let now: Vec<(String, u64)> = PROBED
                .iter()
                .zip(&masks)
                .map(|(p, m)| {
                    (
                        fs.read(&k, &view, p).unwrap_or_default(),
                        k.epochs().masked_sum(*m),
                    )
                })
                .collect();
            if !last.is_empty() {
                for (i, (path, (bytes, sum))) in PROBED.iter().zip(&now).enumerate() {
                    let (prev_bytes, prev_sum) = &last[i];
                    if bytes != prev_bytes {
                        prop_assert!(
                            sum != prev_sum,
                            "{path} changed bytes while its dependency epochs \
                             ({}) stood still at step {step}",
                            dep::mask_names(masks[i])
                        );
                    }
                }
            }
            last = now;
        }
    }
}
