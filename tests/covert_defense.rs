//! The RAPL covert channel (§III-C) versus the power-based namespace (§V):
//! the same bit pattern that decodes perfectly through the leaked host
//! counter becomes unreadable once the defense serves per-container energy.

use containerleaks::container_runtime::{ContainerSpec, Runtime};
use containerleaks::leakscan::{CovertLink, CovertMedium};
use containerleaks::powerns::{DefendedHost, Trainer};
use containerleaks::simkernel::{Kernel, MachineConfig};
use containerleaks::workloads::models;

const MSG: [bool; 12] = [
    true, false, true, true, false, true, false, false, true, true, false, true,
];

#[test]
fn rapl_covert_channel_works_undefended_and_dies_defended() {
    // --- Undefended: the channel moves 12 bits without error. ---
    let mut kernel = Kernel::new(MachineConfig::testbed_i7_6700(), 61_000);
    let mut runtime = Runtime::new();
    let tx = runtime
        .create(&mut kernel, ContainerSpec::new("tx"))
        .unwrap();
    let rx = runtime
        .create(&mut kernel, ContainerSpec::new("rx"))
        .unwrap();
    runtime
        .exec(&mut kernel, tx, "anchor", models::sleeper())
        .unwrap();
    runtime
        .exec(&mut kernel, rx, "anchor", models::sleeper())
        .unwrap();
    kernel.advance_secs(2);
    let mut link = CovertLink::new(CovertMedium::RaplPower);
    let clear = link
        .transmit(&mut kernel, &mut runtime, tx, rx, &MSG)
        .unwrap();
    assert_eq!(clear.errors, 0, "undefended channel should be clean");

    // --- Defended: same protocol, but the receiver's energy_uj is its
    //     own namespace-calibrated counter. ---
    let model = Trainer::new(61_001).train();
    let mut host = DefendedHost::new(MachineConfig::testbed_i7_6700(), 61_002, model);
    let tx = host.create_container(ContainerSpec::new("tx")).unwrap();
    let rx = host.create_container(ContainerSpec::new("rx")).unwrap();
    host.exec(tx, "anchor", models::sleeper()).unwrap();
    host.exec(rx, "anchor", models::sleeper()).unwrap();
    host.advance_secs(2);

    let read_rx = |h: &DefendedHost| -> u64 {
        h.read_file(rx, "/sys/class/powercap/intel-rapl:0/energy_uj")
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };

    // Calibrate the receiver's idle slot delta under the defense.
    let e0 = read_rx(&host);
    host.advance_secs(2);
    let idle_delta = read_rx(&host) - e0;

    let mut decoded = Vec::new();
    let mut host_truth_decoded = Vec::new();
    for (slot, bit) in MSG.iter().enumerate() {
        let mut pids = Vec::new();
        if *bit {
            for i in 0..4 {
                pids.push(
                    host.exec(tx, &format!("pv-{slot}-{i}"), models::power_virus())
                        .unwrap(),
                );
            }
        }
        let pre = read_rx(&host);
        let host_pre = host.host_energy_uj();
        host.advance_secs(2);
        let post = read_rx(&host);
        let host_post = host.host_energy_uj();
        decoded.push(post - pre > idle_delta + idle_delta / 2);
        host_truth_decoded.push(host_post - host_pre > 60e6);
        for pid in pids {
            let _ = host.kernel.kill(pid);
        }
        host.advance_secs(1);
    }

    // The operator-side ground truth still sees the bursts...
    let truth_errors = MSG
        .iter()
        .zip(&host_truth_decoded)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        truth_errors <= 1,
        "bursts should be physically present: {host_truth_decoded:?}"
    );

    // ...but the defended receiver decodes nothing: its counter never
    // reflects the sender's activity, so it reads all-zeros.
    assert!(
        decoded.iter().all(|b| !b),
        "defense leaked covert bits: {decoded:?}"
    );
    let errors = MSG.iter().zip(&decoded).filter(|(a, b)| a != b).count();
    let ones = MSG.iter().filter(|b| **b).count();
    assert_eq!(errors, ones, "every 1-bit must be lost");
}
