//! Dynamic cross-validation of the static information-flow analysis.
//!
//! The leakcheck flow fixpoint derives, per registered channel, the set
//! of kernel subsystems whose state can reach the rendered bytes. This
//! test attacks that claim from the runtime side: mutate exactly one
//! subsystem at a frozen virtual clock, diff a full pseudofs snapshot
//! (host and container views, listing included), and require that every
//! byte that moved belongs to a channel whose *derived* mask covers the
//! bumped subsystem. A byte change outside the derived mask would mean
//! the static analysis missed a flow — the same bug class the
//! derived-⊇-declared gate catches for the registry's cache masks.
//!
//! Lives in its own integration-test binary because `simtrace::install`
//! is once-per-process and the counter store is process-global; the
//! single `#[test]` keeps the epoch-bump counter deltas race-free while
//! the first (corroborated) pass runs, then repeats the whole suite on
//! four threads to pin that the transcript is independent of
//! parallelism, as it is of caching and of the standard fault plan.

use std::collections::BTreeMap;
use std::sync::Arc;

use containerleaks::leakcheck;
use containerleaks::pseudofs::{route_for, PseudoFs, View};
use containerleaks::simkernel::ns::NamespaceData;
use containerleaks::simkernel::{dep, FaultPlan, Kernel, MachineConfig};
use containerleaks::simtrace;
use containerleaks::workloads::models;
use containerleaks::DEFAULT_SEED;

fn counter(name: &str) -> u64 {
    simtrace::counters::snapshot()
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

/// Folds subsystem names back into a dirty-epoch bit mask.
fn bit_mask(names: &[String]) -> u32 {
    names
        .iter()
        .map(|n| dep::from_name(n).expect("flow rows use canonical subsystem names"))
        .fold(0, |a, b| a | b)
}

/// Reads every pseudo file through every view. Keys are `view:path`;
/// the listing itself is snapshotted under the `(list)` pseudo-path,
/// matching the flow report's listing row.
fn snapshot(k: &Kernel, views: &[View]) -> BTreeMap<String, String> {
    let fs = PseudoFs::new();
    let mut out = BTreeMap::new();
    for (vi, v) in views.iter().enumerate() {
        let listing = fs.list(k, v);
        out.insert(format!("{vi}:(list)"), listing.join("\n"));
        for path in listing {
            let body = match fs.read(k, v, &path) {
                Ok(b) => b,
                Err(e) => format!("<{e:?}>"),
            };
            out.insert(format!("{vi}:{path}"), body);
        }
    }
    out
}

/// Every key whose bytes differ between the two snapshots must map to a
/// route whose derived mask intersects the bumped subsystems. Returns
/// the number of changed keys (for the non-vacuity check).
fn assert_containment(
    derived: &BTreeMap<String, u32>,
    before: &BTreeMap<String, String>,
    after: &BTreeMap<String, String>,
    bumped: u32,
    ctx: &str,
) -> usize {
    let mut changed = 0;
    let keys: std::collections::BTreeSet<&String> = before.keys().chain(after.keys()).collect();
    for key in keys {
        if before.get(key) == after.get(key) {
            continue;
        }
        changed += 1;
        let path = key.split_once(':').expect("snapshot keys are view:path").1;
        let pattern = if path == "(list)" {
            "(list)"
        } else {
            route_for(path)
                .expect("every listed path has a registered route")
                .pattern
        };
        let mask = derived
            .get(pattern)
            .unwrap_or_else(|| panic!("no flow row for route {pattern}"));
        assert!(
            mask & bumped != 0,
            "{ctx}: {key} changed bytes after a [{}] bump, but its derived \
             mask [{}] does not cover any bumped subsystem — the static \
             flow analysis missed this dependency",
            dep::mask_names(bumped),
            dep::mask_names(*mask),
        );
    }
    changed
}

/// One mutation step at a frozen clock: the mutation must bump exactly
/// `expect` (nothing else moves while the clock stands still), the
/// epoch-bump counter must agree when we are the only thread touching
/// the global store, and every byte diff must stay inside the derived
/// masks. Clean runs additionally assert non-vacuity: a mutation that
/// changes no bytes at all would make the containment claim empty.
#[allow(clippy::too_many_arguments)]
fn step(
    k: &mut Kernel,
    views: &[View],
    derived: &BTreeMap<String, u32>,
    before: &mut BTreeMap<String, String>,
    name: &str,
    expect: u32,
    corroborate: bool,
    faults: bool,
    out: &mut String,
    mutate: &mut dyn FnMut(&mut Kernel),
) {
    let epochs: Vec<u64> = (0..dep::COUNT).map(|i| k.epochs().get(i)).collect();
    let bumps = counter("kernel.epoch_bump");
    mutate(k);
    let bumped: u32 = (0..dep::COUNT)
        .filter(|&i| k.epochs().get(i) != epochs[i])
        .map(|i| dep::BITS[i])
        .sum();
    assert_eq!(
        bumped,
        expect,
        "{name}: expected a pure [{}] bump at a frozen clock, saw [{}]",
        dep::mask_names(expect),
        dep::mask_names(bumped),
    );
    if corroborate {
        assert_eq!(
            counter("kernel.epoch_bump") - bumps,
            u64::from(expect.count_ones()),
            "{name}: simtrace epoch_bump counter disagrees with the epoch diff",
        );
    }
    let after = snapshot(k, views);
    let ctx = format!("{name} (faults {faults})");
    let changed = assert_containment(derived, before, &after, bumped, &ctx);
    if !faults {
        assert!(
            changed > 0,
            "{name}: the mutation changed no rendered bytes — the \
             containment assertion is vacuous for this subsystem",
        );
    }
    for (key, body) in &after {
        out.push_str(key);
        out.push('\n');
        out.push_str(body);
        out.push('\n');
    }
    *before = after;
}

/// The full single-subsystem mutation suite for one (cache, faults)
/// configuration, appending every post-mutation snapshot to `out`.
fn run_config(
    derived: &BTreeMap<String, u32>,
    cache: bool,
    faults: bool,
    corroborate: bool,
    out: &mut String,
) {
    let mut k = Kernel::new(MachineConfig::small_server(), DEFAULT_SEED);
    k.set_render_caching(cache);
    if faults {
        k.install_faults(FaultPlan::standard(DEFAULT_SEED));
    }
    let env = k.create_container_env("c1").expect("container env");
    let pid = k
        .spawn_host_process("shell", models::sleeper())
        .expect("spawn");
    k.advance_secs(30);
    let views = [View::host(), View::container(env.ns, env.cgroups)];
    // Populate the cache so mutations exercise invalidation, not a cold
    // cache, and give each step a fresh baseline.
    let mut before = snapshot(&k, &views);

    let uts = env.ns.uts;
    step(
        &mut k,
        &views,
        derived,
        &mut before,
        "uts hostname",
        dep::NS,
        corroborate,
        faults,
        out,
        &mut |k| {
            if let Some(NamespaceData::Uts { hostname, .. }) = k.namespaces_mut().get_mut(uts) {
                *hostname = "mutated-host".to_string();
            } else {
                panic!("container uts namespace disappeared");
            }
        },
    );
    let memcg = env.cgroups.memory;
    step(
        &mut k,
        &views,
        derived,
        &mut before,
        "memcg usage",
        dep::CGROUP,
        corroborate,
        faults,
        out,
        &mut |k| k.cgroups_mut().set_memory_usage(memcg, 7 << 20),
    );
    step(
        &mut k,
        &views,
        derived,
        &mut before,
        "boot id",
        dep::FS,
        corroborate,
        faults,
        out,
        &mut |k| {
            let (fs, rng) = k.fs_mut();
            fs.rotate_boot_id(rng);
        },
    );
    step(
        &mut k,
        &views,
        derived,
        &mut before,
        "user timer",
        dep::TIMERS,
        corroborate,
        faults,
        out,
        &mut |k| {
            k.add_user_timer(pid, "sigtimer", 5_000_000_000)
                .expect("timer")
        },
    );
    if !faults {
        // Clock advance: a multi-bit bump (fault distortion depends on
        // the clock position, so this scenario is clean-only — a fault
        // window opening mid-advance changes bytes through the *read
        // path*, not through kernel state the flow analysis models).
        let epochs: Vec<u64> = (0..dep::COUNT).map(|i| k.epochs().get(i)).collect();
        k.advance_secs(3);
        let bumped: u32 = (0..dep::COUNT)
            .filter(|&i| k.epochs().get(i) != epochs[i])
            .map(|i| dep::BITS[i])
            .sum();
        let after = snapshot(&k, &views);
        assert_containment(derived, &before, &after, bumped, "clock advance");
        for (key, body) in &after {
            out.push_str(key);
            out.push('\n');
            out.push_str(body);
            out.push('\n');
        }
    }
}

fn transcript(derived: &BTreeMap<String, u32>, corroborate: bool) -> String {
    let mut out = String::new();
    for cache in [true, false] {
        for faults in [false, true] {
            out.push_str(&format!("== cache {cache} faults {faults}\n"));
            run_config(derived, cache, faults, corroborate, &mut out);
        }
    }
    out
}

#[test]
fn byte_changes_stay_inside_the_derived_masks() {
    simtrace::install(Arc::new(simtrace::MemorySink::new()));

    let report = leakcheck::audit().expect("static audit");
    assert!(
        report.flow.missing.is_empty(),
        "declared masks missing derived bits: {:?}",
        report.flow.missing
    );
    let derived: BTreeMap<String, u32> = report
        .flow
        .rows
        .iter()
        .map(|r| (r.pattern.clone(), bit_mask(&r.derived)))
        .collect();

    // Pass 1 — single-threaded, with epoch-bump counter corroboration.
    let solo = transcript(&derived, true);

    // Pass 2 — the identical suite on four threads at once. The
    // transcripts must match pass 1 byte for byte: the flow contract is
    // independent of parallelism, caching, and fault injection.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let derived = derived.clone();
            std::thread::spawn(move || transcript(&derived, false))
        })
        .collect();
    for (i, w) in workers.into_iter().enumerate() {
        assert!(
            w.join().expect("worker panicked") == solo,
            "worker {i} transcript diverged from the single-threaded run",
        );
    }
}
