//! Property tests: the event-horizon oracles (`timers::next_event_after`,
//! `faults::next_event_after`) agree with a naive per-tick scan.
//!
//! The quiescent-span coalescing machinery trusts these oracles
//! completely: a kernel jumps straight to the reported horizon on the
//! promise that nothing observable changes strictly before it. These
//! properties check that promise two ways over seeded schedules:
//!
//! 1. *soundness* — every fault query is constant at sampled instants
//!    strictly between `rel` and the reported next event;
//! 2. *completeness* — whenever a naive tick-by-tick scan observes a
//!    query change across a tick, the oracle reports an event inside
//!    that tick.

use proptest::prelude::*;

use containerleaks::simkernel::timers::TimerList;
use containerleaks::simkernel::{FaultPlan, HostPid, NANOS_PER_SEC};

/// Probe paths spanning every class the plan can affect: a plain file,
/// an energy counter, a temperature sensor, and the skewed uptime.
const PROBES: [&str; 5] = [
    "/proc/stat",
    "/proc/meminfo",
    "/sys/class/powercap/intel-rapl:0/energy_uj",
    "/sys/devices/platform/coretemp.0/hwmon/hwmon0/temp1_input",
    "/sys/class/thermal/thermal_zone0/temp",
];

/// Everything a kernel can observe about the plan at one instant.
fn fingerprint(plan: &FaultPlan, rel_ns: u64) -> Vec<String> {
    let mut fp: Vec<String> = PROBES
        .iter()
        .map(|p| {
            format!(
                "{:?}/{:?}",
                plan.fs_fault(rel_ns, p),
                plan.sensor_transform(rel_ns, p)
            )
        })
        .collect();
    fp.push(plan.clock_skew_ns(rel_ns).to_string());
    fp
}

/// A seeded plan with a little of everything.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..u64::MAX, 0usize..5, 0usize..5, 0usize..3, 0usize..3).prop_map(
        |(seed, reads, sensors, skews, reboots)| {
            FaultPlan::builder(seed)
                .horizon_secs(120)
                .transient_reads(reads)
                .sensor_faults(sensors)
                .clock_skew(skews)
                .reboots(reboots)
                .build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: no fault query changes strictly before the reported
    /// next event, so a coalesced jump to it loses nothing.
    #[test]
    fn fault_queries_constant_until_the_reported_event(
        plan in arb_plan(),
        rel_frac in 0.0f64..1.0,
        sample_fracs in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let horizon = 120 * NANOS_PER_SEC;
        let rel = (rel_frac * horizon as f64) as u64;
        // Sample inside (rel, next); with no next event, inside
        // (rel, horizon] — constancy must hold either way.
        let end = plan.next_event_after(rel).unwrap_or(horizon.max(rel + 1));
        let base = fingerprint(&plan, rel);
        for f in sample_fracs {
            let span = end - rel;
            if span <= 1 { continue; }
            let t = rel + 1 + (f * (span - 1) as f64) as u64;
            let t = t.min(end - 1);
            prop_assert_eq!(&fingerprint(&plan, t), &base, "query changed at {} < next {}", t, end);
            prop_assert!(
                !plan.reboot_in(rel, t),
                "reboot inside (rel, {t}] before reported event {end}"
            );
        }
    }

    /// Completeness against the naive scan: walk the horizon tick by
    /// tick; wherever the fingerprint differs across a tick, the oracle
    /// must place an event inside that tick.
    #[test]
    fn naive_tick_scan_never_sees_an_unannounced_change(
        plan in arb_plan(),
        tick_ms in 50u64..500,
    ) {
        let tick = tick_ms * 1_000_000;
        let horizon = 121 * NANOS_PER_SEC;
        let mut prev = 0u64;
        let mut prev_fp = fingerprint(&plan, 0);
        let mut t = tick;
        while t <= horizon {
            let fp = fingerprint(&plan, t);
            if fp != prev_fp || plan.reboot_in(prev, t) {
                let next = plan.next_event_after(prev);
                prop_assert!(
                    matches!(next, Some(e) if prev < e && e <= t),
                    "change in ({prev}, {t}] but next_event_after({prev}) = {next:?}"
                );
            }
            prev = t;
            prev_fp = fp;
            t += tick;
        }
    }

    /// The timer oracle against a naive per-tick scan of the public
    /// timer dump: the first tick containing a pending one-shot expiry
    /// is exactly the tick the oracle points into, and periodic timers
    /// (which re-arm phase-preservingly) never register.
    #[test]
    fn timer_oracle_matches_naive_scan(
        oneshot_fracs in proptest::collection::vec(0.0f64..1.0, 0..6),
        periodic_ms in proptest::collection::vec(1u64..5_000, 0..4),
        now_frac in 0.0f64..1.0,
        tick_ms in 50u64..500,
    ) {
        let horizon = 60 * NANOS_PER_SEC;
        let mut tl = TimerList::new();
        for (i, f) in oneshot_fracs.iter().enumerate() {
            tl.arm_oneshot(
                HostPid(100 + i as u32),
                "alarm",
                (f * horizon as f64) as u64,
            );
        }
        for (i, ms) in periodic_ms.iter().enumerate() {
            tl.arm_user_timer(HostPid(200 + i as u32), "tick", 0, ms * 1_000_000);
        }
        let now = (now_frac * horizon as f64) as u64;
        let next = tl.next_event_after(now);

        // Naive scan: step tick by tick, reading the public dump for a
        // one-shot expiry inside each tick.
        let tick = tick_ms * 1_000_000;
        let mut naive = None;
        let mut lo = now;
        'scan: while lo < horizon + tick {
            let hi = lo + tick;
            for timer in tl.timers() {
                if timer.period_ns == 0 && lo < timer.expires_ns && timer.expires_ns <= hi {
                    naive = Some(timer.expires_ns);
                    break 'scan;
                }
            }
            lo = hi;
        }
        // The dump is unordered within a tick; take the true minimum.
        if let Some(n) = naive {
            let hi = ((n - now - 1) / tick + 1) * tick + now;
            let min_in_tick = tl
                .timers()
                .iter()
                .filter(|t| t.period_ns == 0 && now < t.expires_ns && t.expires_ns <= hi)
                .map(|t| t.expires_ns)
                .min();
            prop_assert_eq!(next, min_in_tick);
        } else {
            prop_assert_eq!(next, None, "oracle invented an event the scan never found");
        }

        // refresh() re-arms only periodic timers and must not move the
        // coalescing horizon.
        let mut refreshed = tl.clone();
        refreshed.refresh(now);
        prop_assert_eq!(refreshed.next_event_after(now), next);
    }
}
