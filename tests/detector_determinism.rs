//! The online detector must be byte-deterministic across execution modes.
//!
//! Verdicts, masking-policy updates, and the `detector.*` counters are
//! part of the simulation's observable surface, so they fall under the
//! same contract as every pseudo-file byte: identical across `--jobs`,
//! `--shards`, coalescing, and render caching. A detector whose flagging
//! depended on worker scheduling would make the attack↔defense
//! experiment unreproducible.
//!
//! Everything lives in one `#[test]` on purpose: the counter deltas are
//! read from the process-global counter store, and a second test running
//! concurrently in this binary would pollute them.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::{Strategy, TestRunner};

use containerleaks::cloudsim::{Cloud, CloudConfig, CloudProfile, DetectorConfig, InstanceSpec};
use containerleaks::leakscan::{AdaptiveAttacker, AttackerMode};
use containerleaks::simtrace;

/// Runs one attack-under-detection scenario in the given execution mode
/// and returns the detector's full report (config, verdict log, policy
/// updates) — the bytes that must not depend on the mode.
fn detector_report(
    seed: u64,
    horizon: u64,
    jobs: usize,
    shards: usize,
    coalesce: bool,
    cache: bool,
) -> String {
    let modes = [
        AttackerMode::Persistent,
        AttackerMode::Backoff,
        AttackerMode::Rotate,
        AttackerMode::CovertFallback,
    ];
    let profiles = [CloudProfile::CC1, CloudProfile::CC5, CloudProfile::CC4];
    let mode = modes[(seed % 4) as usize];
    let profile = profiles[(seed % 3) as usize];

    let cfg = CloudConfig::new(profile)
        .hosts(4)
        .placement(containerleaks::cloudsim::PlacementPolicy::BinPack)
        .shards(shards)
        .without_background()
        .detector(DetectorConfig::default());
    let mut cloud = Cloud::new(cfg, seed);
    cloud.set_coalescing(coalesce);
    cloud.set_render_caching(cache);
    let benign = cloud
        .launch("alice", InstanceSpec::new("web"))
        .expect("benign");
    let prober = cloud
        .launch("mallory", InstanceSpec::new("probe"))
        .expect("prober");
    let decoder = cloud
        .launch("cassandra", InstanceSpec::new("decode"))
        .expect("decoder");
    let mut atk = AdaptiveAttacker::new(mode, prober, Some(decoder));
    for s in 0..horizon {
        if s % 15 == 0 {
            let _ = cloud.read_file(benign, "/proc/meminfo");
        }
        atk.step(&mut cloud, s);
        cloud.advance_secs_threads(1, jobs);
    }
    cloud.detector().expect("detector attached").report()
}

/// Current values of every detector-owned counter (all portable-group).
fn detector_counters() -> BTreeMap<String, u64> {
    simtrace::counters::snapshot()
        .into_iter()
        .filter(|c| c.name.starts_with("detector.") || c.name == "kernel.policy_swaps")
        .map(|c| (c.name, c.value))
        .collect()
}

/// Delta of the detector counters across `f`.
fn counter_delta(f: impl FnOnce()) -> BTreeMap<String, u64> {
    let before = detector_counters();
    f();
    detector_counters()
        .into_iter()
        .map(|(k, v)| {
            let b = before.get(&k).copied().unwrap_or(0);
            (k, v - b)
        })
        .collect()
}

#[test]
fn detector_is_byte_identical_across_execution_modes() {
    // Counters only accumulate with a sink installed.
    simtrace::install(Arc::new(simtrace::MemorySink::new()));

    // Part 1: the full mode matrix on two fixed seeds, comparing reports
    // AND counter deltas. Seed 2 drives a rotating prober under CC4,
    // seed 4 a persistent prober under CC5 — both scenarios flag (a
    // covert-fallback prober under a masked tier goes dark on the base
    // policy's denials before the detector fires, so such seeds would
    // make the verdict sanity check below vacuous).
    for seed in [2u64, 4] {
        let mut baseline: Option<(String, BTreeMap<String, u64>)> = None;
        for (jobs, shards) in [(1usize, 1usize), (4, 1), (1, 8), (4, 8)] {
            for coalesce in [true, false] {
                for cache in [true, false] {
                    let mut report = String::new();
                    let delta = counter_delta(|| {
                        report = detector_report(seed, 180, jobs, shards, coalesce, cache);
                    });
                    match &baseline {
                        None => baseline = Some((report, delta)),
                        Some((r0, d0)) => {
                            assert_eq!(
                                &report, r0,
                                "detector report diverged (seed {seed}, jobs {jobs}, \
                                 shards {shards}, coalesce {coalesce}, cache {cache})"
                            );
                            assert_eq!(
                                &delta, d0,
                                "detector counters diverged (seed {seed}, jobs {jobs}, \
                                 shards {shards}, coalesce {coalesce}, cache {cache})"
                            );
                        }
                    }
                }
            }
        }
        let (report, delta) = baseline.expect("matrix ran");
        assert!(
            report.contains("flag "),
            "seed {seed} scenario never produced a verdict:\n{report}"
        );
        assert!(
            delta.get("detector.observations").copied().unwrap_or(0) > 0,
            "no observations counted: {delta:?}"
        );
    }

    // Part 2: a seeded property sweep — any scenario seed must replay
    // byte-identically across the two extreme modes. Reports only here;
    // the counter store was already pinned above. Drawn through the
    // proptest runner so each case is reproducible from its index.
    for case in 0..6u32 {
        let mut runner = TestRunner::for_case("detector_determinism_sweep", case);
        let seed = (0u64..10_000).generate(&mut runner);
        let serial = detector_report(seed, 90, 1, 1, true, true);
        let sharded = detector_report(seed, 90, 4, 8, false, false);
        assert_eq!(serial, sharded, "case {case} (seed {seed}) diverged");
    }
}
