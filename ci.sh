#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting, the determinism
# regressions for the parallel experiment runner (--jobs 1 vs --jobs 4,
# event-horizon coalescing on vs off, and render caching on vs off must
# all produce byte-identical EXPERIMENTS.md / .json artifacts), the
# detector-on replays of the detection experiment, the 16-seed campaign
# metamorphic-oracle sweep, and the bench medians gate.
set -euo pipefail
cd "$(dirname "$0")"

# Byte compare that fails loudly: on divergence, print a bounded unified
# diff before exiting non-zero (a bare `cmp` offset helps nobody).
same() {
    if ! cmp -s "$1" "$2"; then
        echo "ci: FAIL — $1 and $2 differ:" >&2
        diff -u "$1" "$2" | head -40 >&2 || true
        return 1
    fi
}

# The committed snapshots the gates below anchor on. A missing file must
# be a loud failure up front, not a confusing mid-run error.
for snap in BENCH_pipelines.json leakcheck.json tests/golden/trace_fig4_small.jsonl; do
    if [ ! -f "$snap" ]; then
        echo "ci: FAIL — committed snapshot $snap is missing; the gate it" >&2
        echo "    anchors cannot run (see its regeneration note in README.md)" >&2
        exit 1
    fi
done

echo "== build (release) =="
cargo build --offline --release --workspace

echo "== tests =="
cargo test --offline -q --workspace

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --check

echo "== docs (rustdoc, warnings denied; vendored stand-ins exempt) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q \
    --exclude criterion --exclude proptest --exclude rand \
    --exclude serde --exclude serde_derive --exclude serde_json

echo "== static leakage audit (snapshot + dynamic agreement) =="
cargo run --offline --release -q -p containerleaks-experiments --bin leakcheck -- \
    --check --deny-missing-dep

echo "== flow analysis vs runtime: single-subsystem mutation containment =="
cargo test --offline -q --release --test flow_dynamic_agreement

echo "== fault matrix: graceful degradation under injected faults =="
cargo test --offline -q --release --test fault_matrix

echo "== determinism: --jobs 1 vs --jobs 4 (artifacts + simtrace) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 1 --out "$tmp/j1.md" --trace "$tmp/j1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --out "$tmp/j4.md" --trace "$tmp/j4.trace" >/dev/null
same "$tmp/j1.md" "$tmp/j4.md"
same "$tmp/j1.json" "$tmp/j4.json"
# The trace is compared raw: exec-dependent counters never enter the
# artifact, so the byte-compare needs no filtering across job counts.
same "$tmp/j1.trace" "$tmp/j4.trace"
echo "byte-identical across job counts (trace included)"

echo "== determinism: coalescing on (--jobs 1) vs off (--jobs 4) =="
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --coalesce off --out "$tmp/c0.md" --trace "$tmp/c0.trace" >/dev/null
same "$tmp/j1.md" "$tmp/c0.md"
same "$tmp/j1.json" "$tmp/c0.json"
# Coalescing legitimately reshapes quiescent ticks into spans; those
# lines carry the documented mode-exempt tag. Everything else must be
# byte-identical across the two modes.
grep -v '"group":"mode-exempt"' "$tmp/j1.trace" > "$tmp/j1.trace.portable"
grep -v '"group":"mode-exempt"' "$tmp/c0.trace" > "$tmp/c0.trace.portable"
same "$tmp/j1.trace.portable" "$tmp/c0.trace.portable"
echo "byte-identical with coalescing disabled (trace modulo mode-exempt)"

echo "== determinism under faults: fault_matrix --jobs 1 vs --jobs 4 =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 1 --out "$tmp/f1.md" --trace "$tmp/f1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --out "$tmp/f4.md" --trace "$tmp/f4.trace" >/dev/null
same "$tmp/f1.md" "$tmp/f4.md"
same "$tmp/f1.json" "$tmp/f4.json"
same "$tmp/f1.trace" "$tmp/f4.trace"
echo "byte-identical across job counts with faults active (trace included)"

echo "== determinism under faults: coalescing on vs off =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --coalesce off --out "$tmp/fc0.md" --trace "$tmp/fc0.trace" >/dev/null
same "$tmp/f1.md" "$tmp/fc0.md"
same "$tmp/f1.json" "$tmp/fc0.json"
grep -v '"group":"mode-exempt"' "$tmp/f1.trace" > "$tmp/f1.trace.portable"
grep -v '"group":"mode-exempt"' "$tmp/fc0.trace" > "$tmp/fc0.trace.portable"
same "$tmp/f1.trace.portable" "$tmp/fc0.trace.portable"
echo "byte-identical with coalescing disabled and faults active (trace modulo mode-exempt)"

echo "== determinism: render caching on vs off =="
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --render-cache off --out "$tmp/r0.md" --trace "$tmp/r0.trace" >/dev/null
same "$tmp/j1.md" "$tmp/r0.md"
same "$tmp/j1.json" "$tmp/r0.json"
# Cache-occupancy counters exist only while caching is on; every other
# trace line — the per-channel read counters included — must match byte
# for byte, proving the cache never changes *what* gets read.
grep -v '"name":"pseudofs.cache_' "$tmp/j1.trace" > "$tmp/j1.trace.nocache"
grep -v '"name":"pseudofs.cache_' "$tmp/r0.trace" > "$tmp/r0.trace.nocache"
same "$tmp/j1.trace.nocache" "$tmp/r0.trace.nocache"
echo "byte-identical with render caching disabled (trace modulo cache occupancy)"

echo "== determinism under faults: render caching on vs off =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --render-cache off --out "$tmp/fr0.md" --trace "$tmp/fr0.trace" >/dev/null
same "$tmp/f1.md" "$tmp/fr0.md"
same "$tmp/f1.json" "$tmp/fr0.json"
grep -v '"name":"pseudofs.cache_' "$tmp/f1.trace" > "$tmp/f1.trace.nocache"
grep -v '"name":"pseudofs.cache_' "$tmp/fr0.trace" > "$tmp/fr0.trace.nocache"
same "$tmp/f1.trace.nocache" "$tmp/fr0.trace.nocache"
echo "byte-identical with render caching disabled and faults active (trace modulo cache occupancy)"

echo "== determinism: fleet shards 1 vs 8 =="
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --shards 1 --out "$tmp/s1.md" --trace "$tmp/s1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --shards 8 --out "$tmp/s8.md" --trace "$tmp/s8.trace" >/dev/null
same "$tmp/j1.md" "$tmp/s1.md"
same "$tmp/s1.md" "$tmp/s8.md"
same "$tmp/s1.json" "$tmp/s8.json"
# Shard membership changes which calendar a host's horizon lives in —
# and so the calendar-pop/sync bookkeeping, which carries the documented
# mode-exempt tag. Every observable line must be byte-identical.
grep -v '"group":"mode-exempt"' "$tmp/s1.trace" > "$tmp/s1.trace.portable"
grep -v '"group":"mode-exempt"' "$tmp/s8.trace" > "$tmp/s8.trace.portable"
same "$tmp/s1.trace.portable" "$tmp/s8.trace.portable"
echo "byte-identical across shard counts (trace modulo mode-exempt)"

echo "== determinism under faults: fleet shards 1 vs 8 =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --shards 1 --out "$tmp/fs1.md" --trace "$tmp/fs1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --shards 8 --out "$tmp/fs8.md" --trace "$tmp/fs8.trace" >/dev/null
same "$tmp/f1.md" "$tmp/fs1.md"
same "$tmp/fs1.md" "$tmp/fs8.md"
same "$tmp/fs1.json" "$tmp/fs8.json"
grep -v '"group":"mode-exempt"' "$tmp/fs1.trace" > "$tmp/fs1.trace.portable"
grep -v '"group":"mode-exempt"' "$tmp/fs8.trace" > "$tmp/fs8.trace.portable"
same "$tmp/fs1.trace.portable" "$tmp/fs8.trace.portable"
echo "byte-identical across shard counts with faults active (trace modulo mode-exempt)"

echo "== determinism with detector on: --jobs 1 vs --jobs 4 =="
# The online detector observes every read and swaps masking policies
# mid-run, so it exercises the cross-thread verdict/apply path directly.
# Its verdicts, policy updates, and counters are all portable-group:
# the traced run must be byte-identical across worker counts.
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --only detection --detector on --jobs 1 \
    --out "$tmp/d1.md" --trace "$tmp/d1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --only detection --detector on --jobs 4 \
    --out "$tmp/d4.md" --trace "$tmp/d4.trace" >/dev/null
same "$tmp/d1.md" "$tmp/d4.md"
same "$tmp/d1.json" "$tmp/d4.json"
same "$tmp/d1.trace" "$tmp/d4.trace"
echo "byte-identical across job counts with detector on (trace included)"

echo "== determinism with detector on: fleet shards 1 vs 8 =="
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --only detection --detector on --jobs 4 --shards 1 \
    --out "$tmp/ds1.md" --trace "$tmp/ds1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --only detection --detector on --jobs 4 --shards 8 \
    --out "$tmp/ds8.md" --trace "$tmp/ds8.trace" >/dev/null
same "$tmp/d1.md" "$tmp/ds1.md"
same "$tmp/ds1.md" "$tmp/ds8.md"
same "$tmp/ds1.json" "$tmp/ds8.json"
grep -v '"group":"mode-exempt"' "$tmp/ds1.trace" > "$tmp/ds1.trace.portable"
grep -v '"group":"mode-exempt"' "$tmp/ds8.trace" > "$tmp/ds8.trace.portable"
same "$tmp/ds1.trace.portable" "$tmp/ds8.trace.portable"
echo "byte-identical across shard counts with detector on (trace modulo mode-exempt)"

echo "== campaign: 16-seed metamorphic sweep, --jobs 1 vs --jobs 4 =="
# Every scenario must pass every oracle (the bin exits non-zero on any
# violation or panic), and the report artifacts must not depend on the
# worker count.
cargo run --offline --release -q -p containerleaks-experiments --bin campaign -- \
    --seeds 16 --jobs 1 --out "$tmp/camp1.md" >/dev/null 2>&1
cargo run --offline --release -q -p containerleaks-experiments --bin campaign -- \
    --seeds 16 --jobs 4 --out "$tmp/camp4.md" >/dev/null 2>&1
same "$tmp/camp1.md" "$tmp/camp4.md"
same "$tmp/camp1.json" "$tmp/camp4.json"
echo "16 scenarios green, report byte-identical across job counts"

echo "== bench medians vs committed baseline =="
./scripts/bench_compare.sh

echo "== all checks passed =="
