#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting, the determinism
# regressions for the parallel experiment runner (--jobs 1 vs --jobs 4,
# and event-horizon coalescing on vs off, must produce byte-identical
# EXPERIMENTS.md / .json artifacts), and the bench medians gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --offline --release --workspace

echo "== tests =="
cargo test --offline -q --workspace

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --check

echo "== docs (rustdoc, warnings denied; vendored stand-ins exempt) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q \
    --exclude criterion --exclude proptest --exclude rand \
    --exclude serde --exclude serde_derive --exclude serde_json

echo "== static leakage audit (snapshot + dynamic agreement) =="
cargo run --offline --release -q -p containerleaks-experiments --bin leakcheck -- --check

echo "== fault matrix: graceful degradation under injected faults =="
cargo test --offline -q --release --test fault_matrix

echo "== determinism: --jobs 1 vs --jobs 4 =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 1 --out "$tmp/j1.md" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --out "$tmp/j4.md" >/dev/null
cmp "$tmp/j1.md" "$tmp/j4.md"
cmp "$tmp/j1.json" "$tmp/j4.json"
echo "byte-identical across job counts"

echo "== determinism: coalescing on (--jobs 1) vs off (--jobs 4) =="
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --coalesce off --out "$tmp/c0.md" >/dev/null
cmp "$tmp/j1.md" "$tmp/c0.md"
cmp "$tmp/j1.json" "$tmp/c0.json"
echo "byte-identical with coalescing disabled"

echo "== determinism under faults: fault_matrix --jobs 1 vs --jobs 4 =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 1 --out "$tmp/f1.md" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --out "$tmp/f4.md" >/dev/null
cmp "$tmp/f1.md" "$tmp/f4.md"
cmp "$tmp/f1.json" "$tmp/f4.json"
echo "byte-identical across job counts with faults active"

echo "== determinism under faults: coalescing on vs off =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --coalesce off --out "$tmp/fc0.md" >/dev/null
cmp "$tmp/f1.md" "$tmp/fc0.md"
cmp "$tmp/f1.json" "$tmp/fc0.json"
echo "byte-identical with coalescing disabled and faults active"

echo "== bench medians vs committed baseline =="
./scripts/bench_compare.sh

echo "== all checks passed =="
