#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting, the determinism
# regressions for the parallel experiment runner (--jobs 1 vs --jobs 4,
# and event-horizon coalescing on vs off, must produce byte-identical
# EXPERIMENTS.md / .json artifacts), and the bench medians gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --offline --release --workspace

echo "== tests =="
cargo test --offline -q --workspace

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== fmt =="
cargo fmt --check

echo "== docs (rustdoc, warnings denied; vendored stand-ins exempt) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q \
    --exclude criterion --exclude proptest --exclude rand \
    --exclude serde --exclude serde_derive --exclude serde_json

echo "== static leakage audit (snapshot + dynamic agreement) =="
cargo run --offline --release -q -p containerleaks-experiments --bin leakcheck -- --check

echo "== fault matrix: graceful degradation under injected faults =="
cargo test --offline -q --release --test fault_matrix

echo "== determinism: --jobs 1 vs --jobs 4 (artifacts + simtrace) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 1 --out "$tmp/j1.md" --trace "$tmp/j1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --out "$tmp/j4.md" --trace "$tmp/j4.trace" >/dev/null
cmp "$tmp/j1.md" "$tmp/j4.md"
cmp "$tmp/j1.json" "$tmp/j4.json"
# The trace is compared raw: exec-dependent counters never enter the
# artifact, so the byte-compare needs no filtering across job counts.
cmp "$tmp/j1.trace" "$tmp/j4.trace"
echo "byte-identical across job counts (trace included)"

echo "== determinism: coalescing on (--jobs 1) vs off (--jobs 4) =="
cargo run --offline --release -q -p containerleaks-experiments --bin all -- \
    --jobs 4 --coalesce off --out "$tmp/c0.md" --trace "$tmp/c0.trace" >/dev/null
cmp "$tmp/j1.md" "$tmp/c0.md"
cmp "$tmp/j1.json" "$tmp/c0.json"
# Coalescing legitimately reshapes quiescent ticks into spans; those
# lines carry the documented mode-exempt tag. Everything else must be
# byte-identical across the two modes.
grep -v '"group":"mode-exempt"' "$tmp/j1.trace" > "$tmp/j1.trace.portable"
grep -v '"group":"mode-exempt"' "$tmp/c0.trace" > "$tmp/c0.trace.portable"
cmp "$tmp/j1.trace.portable" "$tmp/c0.trace.portable"
echo "byte-identical with coalescing disabled (trace modulo mode-exempt)"

echo "== determinism under faults: fault_matrix --jobs 1 vs --jobs 4 =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 1 --out "$tmp/f1.md" --trace "$tmp/f1.trace" >/dev/null
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --out "$tmp/f4.md" --trace "$tmp/f4.trace" >/dev/null
cmp "$tmp/f1.md" "$tmp/f4.md"
cmp "$tmp/f1.json" "$tmp/f4.json"
cmp "$tmp/f1.trace" "$tmp/f4.trace"
echo "byte-identical across job counts with faults active (trace included)"

echo "== determinism under faults: coalescing on vs off =="
cargo run --offline --release -q -p containerleaks-experiments --bin fault_matrix -- \
    --jobs 4 --coalesce off --out "$tmp/fc0.md" --trace "$tmp/fc0.trace" >/dev/null
cmp "$tmp/f1.md" "$tmp/fc0.md"
cmp "$tmp/f1.json" "$tmp/fc0.json"
grep -v '"group":"mode-exempt"' "$tmp/f1.trace" > "$tmp/f1.trace.portable"
grep -v '"group":"mode-exempt"' "$tmp/fc0.trace" > "$tmp/fc0.trace.portable"
cmp "$tmp/f1.trace.portable" "$tmp/fc0.trace.portable"
echo "byte-identical with coalescing disabled and faults active (trace modulo mode-exempt)"

echo "== bench medians vs committed baseline =="
./scripts/bench_compare.sh

echo "== all checks passed =="
