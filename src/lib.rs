//! Root facade of the ContainerLeaks reproduction workspace.
//!
//! Re-exports the [`containerleaks`] crate so the repository root hosts
//! the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). See `README.md` for the tour and `DESIGN.md` for the
//! architecture.

pub use containerleaks::*;
