//! Offline stand-in for `proptest`.
//!
//! Provides the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / string-pattern
//! strategies, [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: each case draws inputs
//! from a generator seeded by `(test name, case index)`, so failures are
//! reproducible run-to-run without persistence files.

use std::ops::Range;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-test configuration (only `cases` is modeled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case (produced by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The deterministic input source for one test case.
#[derive(Debug)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Seeds the runner from the test name and case index, so every case
    /// is reproducible without persistence.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(runner.next_u64()) % width) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * runner.unit_f64()
    }
}

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$n.generate(runner),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

impl Strategy for &str {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> String {
        pattern::generate(self, runner)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Element count for [`vec`]: a half-open range or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// A strategy generating `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + runner.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

mod pattern {
    //! A tiny regex-subset sampler for string strategies: literals,
    //! classes `[a-z0-9_]`, groups with alternation `(a|b)`, and the
    //! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.

    use super::TestRunner;

    #[derive(Debug, Clone)]
    enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Piece>>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        node: Node,
        min: u32,
        max: u32,
    }

    pub fn generate(pattern: &str, runner: &mut TestRunner) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let alts = parse_alt(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "unsupported pattern `{pattern}` (stopped at {pos})"
        );
        let mut out = String::new();
        gen_alt(&alts, runner, &mut out);
        out
    }

    fn gen_alt(alts: &[Vec<Piece>], runner: &mut TestRunner, out: &mut String) {
        let pick = runner.below(alts.len() as u64) as usize;
        for piece in &alts[pick] {
            let span = u64::from(piece.max - piece.min) + 1;
            let reps = piece.min + runner.below(span) as u32;
            for _ in 0..reps {
                match &piece.node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(a, b)| u64::from(*b as u32 - *a as u32) + 1)
                            .sum();
                        let mut idx = runner.below(total);
                        for (a, b) in ranges {
                            let w = u64::from(*b as u32 - *a as u32) + 1;
                            if idx < w {
                                out.push(char::from_u32(*a as u32 + idx as u32).unwrap());
                                break;
                            }
                            idx -= w;
                        }
                    }
                    Node::Group(alts) => gen_alt(alts, runner, out),
                }
            }
        }
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Vec<Vec<Piece>> {
        let mut alts = vec![parse_concat(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_concat(chars, pos));
        }
        alts
    }

    fn parse_concat(chars: &[char], pos: &mut usize) -> Vec<Piece> {
        let mut pieces = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let node = match chars[*pos] {
                '(' => {
                    *pos += 1;
                    let alts = parse_alt(chars, pos);
                    assert!(*pos < chars.len() && chars[*pos] == ')', "unclosed group");
                    *pos += 1;
                    Node::Group(alts)
                }
                '[' => {
                    *pos += 1;
                    let mut ranges = Vec::new();
                    while *pos < chars.len() && chars[*pos] != ']' {
                        let mut c = chars[*pos];
                        if c == '\\' {
                            *pos += 1;
                            c = chars[*pos];
                        }
                        *pos += 1;
                        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                            let hi = chars[*pos + 1];
                            ranges.push((c, hi));
                            *pos += 2;
                        } else {
                            ranges.push((c, c));
                        }
                    }
                    assert!(*pos < chars.len(), "unclosed class");
                    *pos += 1;
                    Node::Class(ranges)
                }
                '\\' => {
                    *pos += 1;
                    let c = chars[*pos];
                    *pos += 1;
                    Node::Lit(c)
                }
                '.' => {
                    *pos += 1;
                    Node::Class(vec![('a', 'z'), ('0', '9')])
                }
                c => {
                    *pos += 1;
                    Node::Lit(c)
                }
            };
            let (min, max) = parse_quant(chars, pos);
            pieces.push(Piece { node, min, max });
        }
        pieces
    }

    fn parse_quant(chars: &[char], pos: &mut usize) -> (u32, u32) {
        if *pos >= chars.len() {
            return (1, 1);
        }
        match chars[*pos] {
            '{' => {
                *pos += 1;
                let mut min = 0u32;
                while chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut m = 0u32;
                    while chars[*pos].is_ascii_digit() {
                        m = m * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    m
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "bad quantifier");
                *pos += 1;
                (min, max)
            }
            '?' => {
                *pos += 1;
                (0, 1)
            }
            '*' => {
                *pos += 1;
                (0, 8)
            }
            '+' => {
                *pos += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

/// Defines property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0u64..100, s in "[a-z]{1,8}") { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __runner = $crate::TestRunner::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __runner);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, e.0
                    );
                }
            }
        }
    )*};
}

/// Fails the current property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = TestRunner::for_case("t", 0);
        let s = (0u64..10, 0.5f64..1.5, 1usize..4);
        for _ in 0..100 {
            let (a, b, c) = s.generate(&mut r);
            assert!(a < 10);
            assert!((0.5..1.5).contains(&b));
            assert!((1..4).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut r = TestRunner::for_case("v", 3);
        let s = collection::vec(0u8..16, 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 16));
        }
        let exact = collection::vec(0u8..16, 3);
        assert_eq!(exact.generate(&mut r).len(), 3);
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut r = TestRunner::for_case("s", 1);
        for _ in 0..50 {
            let s = "[a-z0-9_]{1,8}".generate(&mut r);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let p = "/(proc|sys)/[a-z_*]{1,12}(/[a-z_*]{1,12}){0,2}".generate(&mut r);
            assert!(p.starts_with("/proc/") || p.starts_with("/sys/"), "{p:?}");

            let q = "[/a-z0-9_.:*-]{0,60}".generate(&mut r);
            assert!(q.chars().count() <= 60);
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut r = TestRunner::for_case("m", 2);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..20 {
            let v = s.generate(&mut r);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_end_to_end(x in 0u64..50, s in "[a-z]{2,4}") {
            prop_assert!(x < 50);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert!((2..=4).contains(&s.len()), "len {} out of range", s.len());
        }
    }
}
