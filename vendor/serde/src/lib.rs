//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in the build environment, so this in-tree
//! crate supplies the subset the workspace uses: `#[derive(Serialize,
//! Deserialize)]` plus value-tree serialization consumed by the in-tree
//! `serde_json`. Instead of serde's visitor architecture, both traits go
//! through one dynamic [`Value`] tree: simpler, and exactly as capable as
//! the workspace needs (derived structs/enums with no field attributes).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A dynamically typed serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so struct output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

fn mismatch(expected: &str, got: &Value) -> DeError {
    DeError(format!("expected {expected}, got {}", got.type_name()))
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by the derive-generated code ----------------------

/// Looks up a struct field; missing fields read as `Null` (so `Option`
/// fields tolerate omission, like serde).
#[doc(hidden)]
pub fn __field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DeError> {
    const NULL: Value = Value::Null;
    match v {
        Value::Object(fields) => Ok(fields
            .iter()
            .find(|(k, _)| k == key)
            .map_or(&NULL, |(_, fv)| fv)),
        other => Err(mismatch("object", other)),
    }
}

/// Checks an array payload of exactly `n` elements (tuple structs).
#[doc(hidden)]
pub fn __array(v: &Value, n: usize) -> Result<&[Value], DeError> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        Value::Array(items) => Err(DeError(format!(
            "expected array of {n}, got {}",
            items.len()
        ))),
        other => Err(mismatch("array", other)),
    }
}

/// The `(tag, payload)` of an externally tagged enum value.
#[doc(hidden)]
pub fn __variant(v: &Value) -> Result<(&str, &Value), DeError> {
    match v {
        Value::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
        other => Err(mismatch("single-key variant object", other)),
    }
}

#[doc(hidden)]
pub fn __unknown_variant(ty: &str, tag: &str) -> DeError {
    DeError(format!("unknown variant `{tag}` for {ty}"))
}

/// Map keys rendered as JSON object keys.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.type_name()),
    }
}

/// Inverse of [`key_to_string`]: keys parse back to the numeric value
/// shapes integer newtypes deserialize from.
fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::UInt(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::Int(n)
    } else {
        Value::Str(s.to_string())
    }
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(mismatch("integer", other)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        u64::deserialize_value(v)
            .and_then(|n| usize::try_from(n).map_err(|_| DeError(format!("{n} out of range"))))
    }
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(mismatch("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        (*self as i64).serialize_value()
    }
}
impl Deserialize for isize {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        i64::deserialize_value(v)
            .and_then(|n| isize::try_from(n).map_err(|_| DeError(format!("{n} out of range"))))
    }
}

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Supports derived structs carrying `&'static str` table labels.
    /// Leaks the parsed string; acceptable because the workspace only
    /// round-trips such types in tests, if at all.
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(mismatch("string", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(mismatch("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.serialize_value()), v.serialize_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| {
                    Ok((
                        K::deserialize_value(&key_from_string(k))?,
                        V::deserialize_value(fv)?,
                    ))
                })
                .collect(),
            other => Err(mismatch("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort by rendered key for deterministic output; HashMap
        // iteration order is not.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.serialize_value()), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, fv)| {
                    Ok((
                        K::deserialize_value(&key_from_string(k))?,
                        V::deserialize_value(fv)?,
                    ))
                })
                .collect(),
            other => Err(mismatch("object", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = __array(v, N)?;
        let parsed: Result<Vec<T>, DeError> = items.iter().map(T::deserialize_value).collect();
        parsed.map(|v| match v.try_into() {
            Ok(arr) => arr,
            Err(_) => unreachable!("__array checked the length"),
        })
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                let items = __array(v, N)?;
                Ok(($($t::deserialize_value(&items[$n])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_through_null() {
        let v = Option::<u32>::serialize_value(&None);
        assert_eq!(v, Value::Null);
        assert_eq!(Option::<u32>::deserialize_value(&v).unwrap(), None);
        let v = Some(7u32).serialize_value();
        assert_eq!(Option::<u32>::deserialize_value(&v).unwrap(), Some(7));
    }

    #[test]
    fn btreemap_uses_stringified_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "c".to_string());
        m.insert(1u32, "a".to_string());
        let v = m.serialize_value();
        match &v {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "1");
                assert_eq!(fields[1].0, "3");
            }
            other => panic!("not an object: {other:?}"),
        }
        let back: BTreeMap<u32, String> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn negative_ints_survive() {
        let v = (-5i64).serialize_value();
        assert_eq!(i64::deserialize_value(&v).unwrap(), -5);
    }

    #[test]
    fn missing_struct_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(__field(&obj, "b").unwrap(), &Value::Null);
        assert_eq!(
            Option::<u32>::deserialize_value(__field(&obj, "b").unwrap()).unwrap(),
            None
        );
    }
}
