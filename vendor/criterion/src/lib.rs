//! Offline stand-in for `criterion`.
//!
//! Supports the subset the workspace's benches use — `criterion_group!`
//! with a `config`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, and `BatchSize` — and additionally
//! writes machine-readable results to `BENCH_<file>.json` at the
//! workspace root so the perf trajectory is tracked across PRs. Set
//! `BENCH_OUT=<dir>` to redirect the JSON (the bench-compare CI step
//! uses this to take a fresh measurement without clobbering the
//! committed baseline).

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// How `iter_batched` amortizes setup (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs; batches may share one timing window.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark id.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

static ALL_RESULTS: Mutex<Vec<(String, Vec<BenchStats>)>> = Mutex::new(Vec::new());
static RUN_STEM: Mutex<Option<String>> = Mutex::new(None);

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark, printing a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let mut samples = b.samples_ns;
        assert!(!samples.is_empty(), "bench `{name}` measured nothing");
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let stats = BenchStats {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: median,
            min_ns: samples[0],
            samples: samples.len(),
        };
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(samples[samples.len() - 1]),
        );
        self.results.push(stats);
        self
    }

    /// Records this driver's results under `group` for the JSON report.
    pub fn finalize(self, group: &str) {
        ALL_RESULTS
            .lock()
            .unwrap()
            .push((group.to_string(), self.results));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

/// Target wall-clock time per sample: long enough to average out timer
/// noise, short enough that 10–20 samples of ~15 benches stay fast.
const TARGET_SAMPLE_NS: f64 = 5_000_000.0;

impl Bencher {
    /// Times `f` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + per-iteration estimate.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warmup_iters += 1;
            if start.elapsed().as_nanos() >= 10_000_000 || warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let iters_per_sample = (TARGET_SAMPLE_NS / est_ns.max(0.5)).ceil().max(1.0) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Estimate with one warmup pass.
        let input = setup();
        let t = Instant::now();
        std::hint::black_box(routine(input));
        let est_ns = t.elapsed().as_nanos() as f64;
        let iters_per_sample = (TARGET_SAMPLE_NS / est_ns.max(0.5))
            .ceil()
            .clamp(1.0, 10_000.0) as u64;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Called by `criterion_main!` before any group runs.
#[doc(hidden)]
pub fn start_run(source_file: &str) {
    let stem = PathBuf::from(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bench".to_string());
    *RUN_STEM.lock().unwrap() = Some(stem);
}

/// Called by `criterion_main!` after all groups ran; writes
/// `BENCH_<stem>.json` at the workspace root.
#[doc(hidden)]
pub fn finish_run() {
    let stem = RUN_STEM
        .lock()
        .unwrap()
        .clone()
        .unwrap_or_else(|| "bench".to_string());
    let results = ALL_RESULTS.lock().unwrap();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench_file\": \"{stem}\",\n"));
    json.push_str("  \"groups\": {\n");
    for (gi, (group, stats)) in results.iter().enumerate() {
        json.push_str(&format!("    \"{group}\": {{\n"));
        for (si, s) in stats.iter().enumerate() {
            json.push_str(&format!(
                "      \"{}\": {{\"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"samples\": {}}}{}\n",
                s.name,
                s.mean_ns,
                s.median_ns,
                s.min_ns,
                s.samples,
                if si + 1 < stats.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    }}{}\n",
            if gi + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let out_dir = std::env::var_os("BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(workspace_root);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("warning: could not create {}: {e}", out_dir.display());
    }
    let path = out_dir.join(format!("BENCH_{stem}.json"));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}

/// The outermost ancestor of the current directory that still contains a
/// `Cargo.toml` (cargo runs benches with CWD = package root).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut best = cwd.clone();
    for dir in cwd.ancestors() {
        if dir.join("Cargo.toml").exists() {
            best = dir.to_path_buf();
        }
    }
    best
}

/// Environment-variable filter (`BENCH_FILTER`), applied by groups.
#[doc(hidden)]
pub fn bench_enabled(name: &str) -> bool {
    match std::env::var("BENCH_FILTER") {
        Ok(f) if !f.is_empty() => name.contains(&f),
        _ => true,
    }
}

/// Defines a benchmark group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $(
                if $crate::bench_enabled(stringify!($target)) {
                    $target(&mut c);
                }
            )+
            c.finalize(stringify!($name));
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Defines the bench `main`, running each group then writing the JSON
/// report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::start_run(file!());
            $( $group(); )+
            $crate::finish_run();
        }
    };
}

/// Re-export for convenience; benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].samples, 3);
        assert!(c.results[0].mean_ns >= 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.results[0].samples, 2);
    }
}
