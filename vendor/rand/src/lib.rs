//! Offline, deterministic stand-in for the `rand` crate.
//!
//! The workspace's registry source is unreachable in the build
//! environment, so this in-tree crate provides the exact API subset the
//! simulation uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`RngExt`] extension with `random_range` / `random`.
//!
//! The generator is SplitMix64: a 64-bit state advanced by a Weyl
//! constant and finalized with an avalanche mixer. It is fast, has no
//! allocation, and — the property the simulation actually relies on —
//! every stream is a pure function of its seed, so two rngs seeded alike
//! produce identical streams regardless of thread interleaving.

pub mod rngs {
    /// A seedable deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Types that can be drawn uniformly from a half-open `start..end` range.
pub trait SampleUniform: Sized + Copy {
    /// Draws uniformly from `[start, end)`.
    fn sample_range(rng: &mut rngs::StdRng, start: Self, end: Self) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut rngs::StdRng, start: Self, end: Self) -> Self {
                assert!(start < end, "empty random_range");
                let width = (end as i128).wrapping_sub(start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % width) as i128;
                ((start as i128) + v) as $t
            }
        }
    )*};
}
impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut rngs::StdRng, start: Self, end: Self) -> Self {
        assert!(start < end, "empty random_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + (end - start) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut rngs::StdRng, start: Self, end: Self) -> Self {
        f64::sample_range(rng, f64::from(start), f64::from(end)) as f32
    }
}

/// Types drawable from the full-width "standard" distribution.
pub trait StandardDist: Sized {
    /// Draws one value covering the type's whole range (or `[0, 1)` for
    /// floats).
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_int_standard {
    ($($t:ty),* $(,)?) => {$(
        impl StandardDist for $t {
            fn sample(rng: &mut rngs::StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The `Rng`-style extension methods the workspace calls.
pub trait RngExt {
    /// Uniform draw from the half-open range `start..end`.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T;
    /// Full-width draw (ints) or `[0, 1)` (floats).
    fn random<T: StandardDist>(&mut self) -> T;
}

impl RngExt for rngs::StdRng {
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn random<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = r.random_range(-100..-50);
            assert!((-100..-50).contains(&i));
            let u: usize = r.random_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn standard_draws_cover_types() {
        let mut r = rngs::StdRng::seed_from_u64(9);
        let _: u16 = r.random();
        let _: u32 = r.random();
        let _: u64 = r.random();
        let f: f64 = r.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn range_distribution_is_not_degenerate() {
        let mut r = rngs::StdRng::seed_from_u64(11);
        let draws: std::collections::HashSet<u64> =
            (0..200).map(|_| r.random_range(0..1000u64)).collect();
        assert!(draws.len() > 100, "only {} distinct draws", draws.len());
    }
}
