//! Offline stand-in for `serde_json`, over the in-tree `serde` [`Value`]
//! model: compact/pretty writers and a recursive-descent parser.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Infallible for the value shapes this workspace produces; the `Result`
/// mirrors the real API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns a message naming the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing input at byte {}", p.i)));
    }
    T::deserialize_value(&v).map_err(|e| Error(e.0))
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.i))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.i += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            // Digit strings too long for i64/u64 come from large-magnitude
            // floats (Display prints e.g. 1e300 without an exponent).
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
            ("c".into(), Value::Str("x \"y\"\n".into())),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(
            compact,
            "{\"a\":1,\"b\":[0.5,null],\"c\":\"x \\\"y\\\"\\n\"}"
        );
        let mut p = Parser {
            s: compact.as_bytes(),
            i: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        let mut p = Parser {
            s: pretty.as_bytes(),
            i: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn numbers_parse_by_shape() {
        let mut p = Parser { s: b"-7", i: 0 };
        assert_eq!(p.parse_value().unwrap(), Value::Int(-7));
        let mut p = Parser { s: b"7", i: 0 };
        assert_eq!(p.parse_value().unwrap(), Value::UInt(7));
        let mut p = Parser { s: b"7.25", i: 0 };
        assert_eq!(p.parse_value().unwrap(), Value::Float(7.25));
        let mut p = Parser { s: b"1e3", i: 0 };
        assert_eq!(p.parse_value().unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn float_display_roundtrips_exactly() {
        for f in [0.05f64, 1.0, -3.75, 1e300, 6.02e-23] {
            let s = Value::Float(f);
            let mut text = String::new();
            write_value(&mut text, &s, None, 0);
            let mut p = Parser {
                s: text.as_bytes(),
                i: 0,
            };
            let back = match p.parse_value().unwrap() {
                Value::Float(g) => g,
                Value::UInt(n) => n as f64,
                Value::Int(n) => n as f64,
                other => panic!("{other:?}"),
            };
            assert_eq!(f, back, "{f} -> {text}");
        }
    }
}
