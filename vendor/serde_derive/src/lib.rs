//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the in-tree `serde`'s value-based `Serialize` /
//! `Deserialize` traits. Implemented directly over `proc_macro` token
//! trees (the build environment has no registry access, hence no
//! syn/quote); generated code is assembled as a string and re-parsed.
//!
//! Supported shapes — exactly what the workspace derives:
//! named-field structs, tuple/newtype structs, unit structs, and enums
//! with unit / newtype / tuple / struct variants. No generics, no
//! `#[serde(...)]` field attributes (the workspace uses neither).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the value-based `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape).parse().unwrap()
}

/// Derives the value-based `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape).parse().unwrap()
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic type {name} not supported");
    }
    let shape = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        kw => panic!("cannot derive for `{kw}`"),
    };
    (name, shape)
}

type PeekIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(iter: &mut PeekIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next(); // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ ... }` body. Commas inside angle brackets (e.g.
/// `BTreeMap<String, u32>`) are not separators, so track angle depth.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:`, got {other:?}"),
        }
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Number of fields in a `( ... )` body (top-level comma count).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    loop {
        // Leading attrs/vis of each field.
        if !saw_tokens {
            skip_attrs_and_vis(&mut iter);
        }
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) => match p.as_char() {
                '<' => {
                    angle += 1;
                    saw_tokens = true;
                }
                '>' => {
                    angle -= 1;
                    saw_tokens = true;
                }
                ',' if angle == 0 => {
                    count += 1;
                    saw_tokens = false;
                }
                _ => saw_tokens = true,
            },
            Some(_) => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(parse_named_fields(g.stream()));
                iter.next();
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip to (and past) the separating comma, tolerating `= expr`.
        for tok in iter.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- codegen ---------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::serialize_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{items}]))]),",
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         ::serde::__field(v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_value(v)?))"
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::__array(v, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                 let items = ::serde::__array(payload, {n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(\
                                         ::serde::__field(payload, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {units}\n\
                 other => ::std::result::Result::Err(\
                 ::serde::__unknown_variant(\"{name}\", other)),\n\
                 }},\n\
                 _ => {{\n\
                 let (tag, payload) = ::serde::__variant(v)?;\n\
                 let _ = payload;\n\
                 match tag {{\n\
                 {datas}\n\
                 other => ::std::result::Result::Err(\
                 ::serde::__unknown_variant(\"{name}\", other)),\n\
                 }}\n\
                 }}\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
