//! The noise-discounted median gate behind the `benchcmp` binary.
//!
//! A benchmark regresses when its fresh median exceeds the baseline
//! median by more than the threshold *and* by more than the absolute
//! floor — sub-floor deltas are scheduler noise, not code. On shared
//! boxes the whole suite sometimes runs uniformly slower (co-tenant
//! load), which says nothing about the code, so each ratio is first
//! discounted by the suite-wide *noise factor* — the median of all
//! fresh/baseline ratios, clamped to at least 1 so a fast run never
//! manufactures regressions. The escape valve is bounded: past
//! [`HARD_CAP`]× undiscounted, a bench fails regardless (a uniform
//! *real* regression cannot hide forever). Benchmarks present in the
//! baseline but missing from the fresh run fail the gate; benchmarks
//! only in the fresh run are reported as new and pass.
//!
//! Medians are still a fragile location estimate on a one-core shared
//! box: background bursts only ever *inflate* samples, so a handful of
//! contaminated iterations drag the median up while the minimum stays
//! at the true cost. When both reports carry `min_ns`, a bench whose
//! fresh minimum sits within the threshold and floor of the baseline
//! minimum is therefore rescued to `ok (min)` — at least one iteration
//! demonstrated the old speed, which a real code regression makes
//! impossible (a genuinely slower path shifts the minimum with it).

use std::collections::BTreeMap;

use serde::Deserialize;

/// The slice of each benchmark's statistics the gate compares. The
/// report also carries `mean_ns`/`min_ns`/`samples`; the derive ignores
/// fields it is not asked for.
#[derive(Debug, Clone, Deserialize)]
pub struct BenchStats {
    /// Median wall time of one iteration, in nanoseconds.
    pub median_ns: f64,
    /// Fastest observed iteration, in nanoseconds. Optional so reports
    /// without it still parse (missing fields deserialize as `None`);
    /// then the min-rescue for contaminated medians simply never applies.
    pub min_ns: Option<f64>,
}

/// The `BENCH_<file>.json` report shape.
#[derive(Debug, Deserialize)]
pub struct BenchReport {
    /// Which bench file produced the report (e.g. `pipelines`).
    pub bench_file: String,
    /// `group -> bench -> stats`.
    pub groups: BTreeMap<String, BTreeMap<String, BenchStats>>,
}

impl BenchReport {
    /// Parses a report from its JSON text.
    ///
    /// # Errors
    ///
    /// Fails with a human-readable message when the text is not a valid
    /// report.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        serde_json::from_str(text).map_err(|e| format!("cannot parse bench report: {e}"))
    }

    /// Loads and parses a report file.
    ///
    /// # Errors
    ///
    /// Fails when the file is unreadable or not a valid report.
    pub fn load(path: &str) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchReport::parse(&text)
    }

    /// Flattens `group/bench -> median_ns`; names are unique per file.
    pub fn medians(&self) -> BTreeMap<String, f64> {
        self.groups
            .values()
            .flat_map(|benches| benches.iter().map(|(name, s)| (name.clone(), s.median_ns)))
            .collect()
    }

    /// Flattens `group/bench -> stats`; names are unique per file.
    pub fn stats(&self) -> BTreeMap<String, BenchStats> {
        self.groups
            .values()
            .flat_map(|benches| benches.iter().map(|(name, s)| (name.clone(), s.clone())))
            .collect()
    }
}

/// Past this many times the baseline — undiscounted — a bench fails
/// even if the whole suite slowed with it.
pub const HARD_CAP: f64 = 4.0;

/// What the gate decided about one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the (noise-discounted) threshold.
    Ok,
    /// The median regressed but the fresh minimum matched the baseline
    /// minimum: contaminated samples, not slower code. Passes.
    OkMinRescued,
    /// Beyond the threshold and the floor, or past the hard cap.
    Regressed,
    /// In the baseline but absent from the fresh run — fails the gate.
    Missing,
    /// In the fresh run only; passes, there is nothing to compare.
    New,
}

/// One benchmark's comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name (unique within the bench file).
    pub name: String,
    /// Baseline median, absent for [`Verdict::New`].
    pub baseline_ns: Option<f64>,
    /// Fresh median, absent for [`Verdict::Missing`].
    pub fresh_ns: Option<f64>,
    /// The gate's decision.
    pub verdict: Verdict,
}

/// The whole gate evaluation: the noise factor it discounted by, one
/// row per benchmark (baseline order, then new benches), and the
/// pass/fail verdict.
#[derive(Debug)]
pub struct Outcome {
    /// Median fresh/baseline ratio across shared benches, clamped ≥ 1.
    pub noise: f64,
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
    /// True when any row is `Regressed` or `Missing`.
    pub failed: bool,
}

/// The suite-wide noise factor: the median fresh/baseline ratio across
/// every bench present in both maps, never below 1 (a uniformly fast
/// run must not manufacture regressions elsewhere).
pub fn noise_factor(base: &BTreeMap<String, f64>, fresh: &BTreeMap<String, f64>) -> f64 {
    let mut ratios: Vec<f64> = base
        .iter()
        .filter_map(|(name, &b)| fresh.get(name).map(|&n| n / b))
        .collect();
    ratios.sort_by(f64::total_cmp);
    if ratios.is_empty() {
        1.0
    } else {
        ratios[ratios.len() / 2].max(1.0)
    }
}

/// Evaluates the gate: `threshold_pct` is the allowed median growth in
/// percent after noise discounting, `floor_ns` the absolute delta below
/// which a regression is never called.
pub fn gate(
    baseline: &BenchReport,
    fresh: &BenchReport,
    threshold_pct: f64,
    floor_ns: f64,
) -> Outcome {
    let base = baseline.stats();
    let new = fresh.stats();
    let limit = 1.0 + threshold_pct / 100.0;
    let noise = noise_factor(&baseline.medians(), &fresh.medians());

    let mut rows = Vec::new();
    let mut failed = false;
    for (name, base_stats) in &base {
        let b = base_stats.median_ns;
        let (fresh_ns, verdict) = match new.get(name) {
            None => (None, Verdict::Missing),
            Some(stats) => {
                let n = stats.median_ns;
                let ratio = n / b;
                let discounted = ratio / noise;
                let regressed = (discounted > limit && n - b * noise > floor_ns)
                    || (ratio > HARD_CAP && n - b > floor_ns);
                // The minimum is immune to asymmetric contamination: if
                // the fresh floor still reaches baseline speed (within
                // the same threshold and noise floor), the code did not
                // get slower — some iterations proved it.
                let min_ok = match (base_stats.min_ns, stats.min_ns) {
                    (Some(bm), Some(nm)) => nm / bm <= limit || nm - bm <= floor_ns,
                    _ => false,
                };
                (
                    Some(n),
                    match (regressed, min_ok) {
                        (false, _) => Verdict::Ok,
                        (true, true) => Verdict::OkMinRescued,
                        (true, false) => Verdict::Regressed,
                    },
                )
            }
        };
        failed |= matches!(verdict, Verdict::Missing | Verdict::Regressed);
        rows.push(Row {
            name: name.clone(),
            baseline_ns: Some(b),
            fresh_ns,
            verdict,
        });
    }
    for (name, stats) in &new {
        let n = stats.median_ns;
        if !base.contains_key(name) {
            rows.push(Row {
                name: name.clone(),
                baseline_ns: None,
                fresh_ns: Some(n),
                verdict: Verdict::New,
            });
        }
    }
    Outcome {
        noise,
        rows,
        failed,
    }
}

/// One `--require-speedup <fast>:<slow>:<factor>` demand: the fresh
/// median of `slow` must be at least `factor` times the fresh median of
/// `fast`. Evaluated on the fresh run only — a stale committed baseline
/// can neither grant nor revoke a speedup the current code doesn't have.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReq {
    /// The optimized benchmark (e.g. `table1_scan_cached`).
    pub fast: String,
    /// The reference benchmark it must beat (e.g. `table1_scan`).
    pub slow: String,
    /// Minimum required `slow / fast` median ratio.
    pub factor: f64,
}

impl SpeedupReq {
    /// Parses a `fast:slow:factor` spec.
    ///
    /// # Errors
    ///
    /// Fails with a usage message on malformed specs.
    pub fn parse(spec: &str) -> Result<SpeedupReq, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let err = || format!("--require-speedup takes `fast:slow:factor`, got `{spec}`");
        let [fast, slow, factor] = parts.as_slice() else {
            return Err(err());
        };
        let factor: f64 = factor.parse().map_err(|_| err())?;
        if fast.is_empty() || slow.is_empty() || !factor.is_finite() || factor <= 0.0 {
            return Err(err());
        }
        Ok(SpeedupReq {
            fast: (*fast).to_string(),
            slow: (*slow).to_string(),
            factor,
        })
    }
}

/// One evaluated speedup requirement.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// The demand being checked.
    pub req: SpeedupReq,
    /// Fresh median of the optimized bench, when present.
    pub fast_ns: Option<f64>,
    /// Fresh median of the reference bench, when present.
    pub slow_ns: Option<f64>,
    /// Achieved `slow / fast` ratio, when both are present.
    pub achieved: Option<f64>,
    /// False when a bench is missing or the ratio falls short.
    pub ok: bool,
}

/// Evaluates speedup requirements against the fresh report. A missing
/// bench fails its row — silently skipping a vanished benchmark would
/// turn the gate into a no-op.
pub fn check_speedups(fresh: &BenchReport, reqs: &[SpeedupReq]) -> Vec<SpeedupRow> {
    let medians = fresh.medians();
    reqs.iter()
        .map(|req| {
            let fast_ns = medians.get(&req.fast).copied();
            let slow_ns = medians.get(&req.slow).copied();
            let achieved = match (fast_ns, slow_ns) {
                (Some(f), Some(s)) if f > 0.0 => Some(s / f),
                _ => None,
            };
            SpeedupRow {
                req: req.clone(),
                fast_ns,
                slow_ns,
                achieved,
                ok: achieved.is_some_and(|r| r >= req.factor),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a one-group report from `(name, median_ns)` pairs.
    fn report(medians: &[(&str, f64)]) -> BenchReport {
        let benches: Vec<String> = medians
            .iter()
            .map(|(name, ns)| format!("\"{name}\":{{\"median_ns\":{ns}}}"))
            .collect();
        let text = format!(
            "{{\"bench_file\":\"pipelines\",\"groups\":{{\"g\":{{{}}}}}}}",
            benches.join(",")
        );
        BenchReport::parse(&text).expect("fixture parses")
    }

    /// Like [`report`] but with explicit minima, as the real harness
    /// emits them.
    fn report_with_min(stats: &[(&str, f64, f64)]) -> BenchReport {
        let benches: Vec<String> = stats
            .iter()
            .map(|(name, med, min)| format!("\"{name}\":{{\"median_ns\":{med},\"min_ns\":{min}}}"))
            .collect();
        let text = format!(
            "{{\"bench_file\":\"pipelines\",\"groups\":{{\"g\":{{{}}}}}}}",
            benches.join(",")
        );
        BenchReport::parse(&text).expect("fixture parses")
    }

    fn verdict_of(out: &Outcome, name: &str) -> Verdict {
        out.rows
            .iter()
            .find(|r| r.name == name)
            .expect("row present")
            .verdict
    }

    #[test]
    fn parses_the_real_report_shape_ignoring_extra_stats() {
        let r = BenchReport::parse(
            r#"{"bench_file":"pipelines","generated_by":"bench_json",
                "groups":{"scan":{"cold":{"median_ns":1500000.0,
                "mean_ns":1600000.0,"min_ns":1400000.0,"samples":20}}}}"#,
        )
        .expect("parses with extra fields");
        assert_eq!(r.medians()["cold"], 1_500_000.0);
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(&[("a", 1e6), ("b", 2e6)]);
        let out = gate(&base, &report(&[("a", 1e6), ("b", 2e6)]), 25.0, 20_000.0);
        assert!(!out.failed);
        assert_eq!(out.noise, 1.0);
        assert!(out.rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn single_bench_regression_beyond_threshold_and_floor_fails() {
        // One bench +60%, the rest flat: noise stays ~1, delta 600µs
        // clears the 20µs floor.
        let base = report(&[("a", 1e6), ("b", 1e6), ("c", 1e6)]);
        let fresh = report(&[("a", 1.6e6), ("b", 1e6), ("c", 1e6)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert!(out.failed);
        assert_eq!(verdict_of(&out, "a"), Verdict::Regressed);
        assert_eq!(verdict_of(&out, "b"), Verdict::Ok);
    }

    #[test]
    fn sub_floor_deltas_never_regress() {
        // +100% but the benches are tiny: 8µs deltas sit under the 20µs
        // floor, so this is scheduler noise by definition.
        let base = report(&[("a", 8_000.0), ("b", 8_000.0), ("c", 8_000.0)]);
        let fresh = report(&[("a", 16_000.0), ("b", 8_000.0), ("c", 8_000.0)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert!(!out.failed, "{out:?}");
    }

    #[test]
    fn uniform_slowdown_is_discounted_as_box_noise() {
        // Everything 1.8x: co-tenant load, not a code regression.
        let base = report(&[("a", 1e6), ("b", 2e6), ("c", 3e6)]);
        let fresh = report(&[("a", 1.8e6), ("b", 3.6e6), ("c", 5.4e6)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert!((out.noise - 1.8).abs() < 1e-9);
        assert!(!out.failed, "{out:?}");
    }

    #[test]
    fn hard_cap_defeats_the_noise_discount() {
        // Everything 5x — beyond HARD_CAP, so the uniform-slowdown
        // escape valve closes and every bench fails.
        let base = report(&[("a", 1e6), ("b", 2e6), ("c", 3e6)]);
        let fresh = report(&[("a", 5e6), ("b", 10e6), ("c", 15e6)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert!(out.failed);
        assert!(out.rows.iter().all(|r| r.verdict == Verdict::Regressed));
    }

    #[test]
    fn fast_runs_clamp_noise_to_one_and_still_catch_regressions() {
        // Most benches got 2x faster; one got 60% slower. The clamp
        // keeps the fast majority from hiding it (unclamped noise 0.5
        // would *help*; the floor is the only remaining guard).
        let base = report(&[("a", 1e6), ("b", 1e6), ("c", 1e6), ("d", 1e6)]);
        let fresh = report(&[("a", 0.5e6), ("b", 0.5e6), ("c", 0.5e6), ("d", 1.6e6)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert_eq!(out.noise, 1.0);
        assert_eq!(verdict_of(&out, "d"), Verdict::Regressed);
    }

    #[test]
    fn missing_bench_fails_and_new_bench_passes() {
        let base = report(&[("a", 1e6), ("gone", 1e6)]);
        let fresh = report(&[("a", 1e6), ("added", 9e9)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert!(out.failed);
        assert_eq!(verdict_of(&out, "gone"), Verdict::Missing);
        assert_eq!(verdict_of(&out, "added"), Verdict::New);
        // A lone new bench contributes no ratio and cannot regress.
        assert_eq!(
            out.rows
                .iter()
                .filter(|r| r.verdict == Verdict::Regressed)
                .count(),
            0
        );
    }

    #[test]
    fn contaminated_median_with_clean_minimum_is_rescued() {
        // The one-core-box failure shape: one bench's median jumped 48%
        // because background bursts hit most samples, but its fastest
        // iteration still reached baseline speed. Slower code cannot
        // produce that minimum, so the gate passes it as noise.
        let base = report_with_min(&[
            ("flat", 1e6, 0.95e6),
            ("flat2", 1e6, 0.95e6),
            ("noisy", 1.35e6, 1.29e6),
        ]);
        let fresh = report_with_min(&[
            ("flat", 1e6, 0.95e6),
            ("flat2", 1e6, 0.95e6),
            ("noisy", 2.0e6, 1.34e6),
        ]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert_eq!(verdict_of(&out, "noisy"), Verdict::OkMinRescued);
        assert!(!out.failed, "{out:?}");
    }

    #[test]
    fn real_regressions_shift_the_minimum_and_still_fail() {
        // A genuine 2x slowdown moves the whole distribution, minimum
        // included — the rescue must not apply.
        let base = report_with_min(&[
            ("flat", 1e6, 0.95e6),
            ("flat2", 1e6, 0.95e6),
            ("slow", 1.35e6, 1.29e6),
        ]);
        let fresh = report_with_min(&[
            ("flat", 1e6, 0.95e6),
            ("flat2", 1e6, 0.95e6),
            ("slow", 2.7e6, 2.6e6),
        ]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert_eq!(verdict_of(&out, "slow"), Verdict::Regressed);
        assert!(out.failed);
    }

    #[test]
    fn rescue_requires_minima_on_both_sides() {
        // Median-only reports (older harness) keep the strict verdict.
        let base = report(&[("a", 1e6), ("b", 1e6), ("c", 1e6)]);
        let fresh = report(&[("a", 1.6e6), ("b", 1e6), ("c", 1e6)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert_eq!(verdict_of(&out, "a"), Verdict::Regressed);
        // Sub-floor minimum deltas rescue even when the ratio is large:
        // an 8 µs floor-scale bench doubling its min is scheduler noise.
        let base = report_with_min(&[
            ("flat", 1e6, 0.95e6),
            ("flat2", 1e6, 0.95e6),
            ("tiny", 100_000.0, 8_000.0),
        ]);
        let fresh = report_with_min(&[
            ("flat", 1e6, 0.95e6),
            ("flat2", 1e6, 0.95e6),
            ("tiny", 140_000.0, 16_000.0),
        ]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert_eq!(verdict_of(&out, "tiny"), Verdict::OkMinRescued);
    }

    #[test]
    fn speedup_spec_parses_and_rejects_garbage() {
        let r = SpeedupReq::parse("fast:slow:5.0").expect("valid spec");
        assert_eq!(r.fast, "fast");
        assert_eq!(r.slow, "slow");
        assert!((r.factor - 5.0).abs() < 1e-12);
        for bad in ["fast:slow", "fast:slow:zero", ":slow:2", "a:b:-1", "a:b:0"] {
            assert!(SpeedupReq::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn speedup_check_passes_meets_and_fails_shortfalls() {
        let fresh = report(&[("scan", 1e6), ("scan_cached", 1e5)]);
        let meets = check_speedups(
            &fresh,
            &[SpeedupReq::parse("scan_cached:scan:5.0").unwrap()],
        );
        assert!(meets[0].ok, "{meets:?}");
        assert!((meets[0].achieved.unwrap() - 10.0).abs() < 1e-9);
        let short = check_speedups(
            &fresh,
            &[SpeedupReq::parse("scan_cached:scan:20.0").unwrap()],
        );
        assert!(!short[0].ok);
    }

    #[test]
    fn speedup_check_fails_on_missing_benches() {
        let fresh = report(&[("scan", 1e6)]);
        let rows = check_speedups(&fresh, &[SpeedupReq::parse("gone:scan:5.0").unwrap()]);
        assert!(!rows[0].ok);
        assert!(rows[0].achieved.is_none());
    }

    #[test]
    fn empty_overlap_defaults_noise_to_one() {
        let base = report(&[("only-old", 1e6)]);
        let fresh = report(&[("only-new", 1e6)]);
        let out = gate(&base, &fresh, 25.0, 20_000.0);
        assert_eq!(out.noise, 1.0);
        assert!(out.failed, "the dropped bench must still fail the gate");
    }
}
