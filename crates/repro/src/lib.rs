//! Shared helpers for the experiment binaries.
//!
//! Every binary accepts `--seed <u64>` (default
//! [`containerleaks::DEFAULT_SEED`]) and `--json` to emit the structured
//! result instead of the rendered text.

use containerleaks::ExperimentResult;

/// Parses `--seed` from argv, with a default.
pub fn seed_arg(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Parses `--jobs` from argv; defaults to the number of available
/// cores. `--jobs 1` forces the historical serial order.
pub fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--jobs")
        .and_then(|w| w[1].parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Whether `--json` was passed.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints one experiment result (text or JSON).
pub fn emit(result: &ExperimentResult) {
    if json_flag() {
        println!(
            "{}",
            serde_json::to_string_pretty(result).expect("serializable")
        );
        return;
    }
    println!("=== {} ===\n", result.title);
    println!("{}", result.rendered);
    println!("{:<48} {:<42} {:<34} holds", "metric", "paper", "measured");
    for c in &result.comparisons {
        println!(
            "{:<48} {:<42} {:<34} {}",
            c.metric,
            c.paper,
            c.measured,
            if c.holds { "yes" } else { "NO" }
        );
    }
}
