//! Shared helpers for the experiment binaries.
//!
//! Every binary accepts `--seed <u64>` (default
//! [`containerleaks::DEFAULT_SEED`]) and `--json` to emit the structured
//! result instead of the rendered text. The `all` and `fault_matrix`
//! bins additionally take `--trace <path>` (write the deterministic
//! JSONL trace artifact) and `--counters` (print the subsystem counter
//! and sim-time profile summary after the run).

use std::sync::{Arc, OnceLock};

use containerleaks::simtrace;
use containerleaks::ExperimentResult;

pub mod benchgate;

/// Parses `--seed` from argv, with a default.
pub fn seed_arg(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Parses `--jobs` from argv; defaults to the number of available
/// cores. `--jobs 1` forces the historical serial order.
pub fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--jobs")
        .and_then(|w| w[1].parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Applies `--coalesce <on|off>` process-wide (the default, absent the
/// flag, is the kernel's compiled default: on). CI runs every
/// experiment binary both ways and byte-compares the artifacts —
/// event-horizon coalescing must be an invisible optimization.
pub fn apply_coalesce_arg() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--coalesce") {
        match w[1].as_str() {
            "on" => containerleaks::simkernel::set_coalescing_default(true),
            "off" => containerleaks::simkernel::set_coalescing_default(false),
            other => {
                eprintln!("--coalesce takes `on` or `off`, got `{other}`");
                std::process::exit(2);
            }
        }
    }
}

/// Applies `--render-cache <on|off>` process-wide (the default, absent
/// the flag, is the kernel's compiled default: on). CI runs the
/// experiment binaries both ways and byte-compares the artifacts —
/// epoch-keyed render caching must be an invisible optimization.
pub fn apply_render_cache_arg() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--render-cache") {
        match w[1].as_str() {
            "on" => containerleaks::simkernel::set_render_caching_default(true),
            "off" => containerleaks::simkernel::set_render_caching_default(false),
            other => {
                eprintln!("--render-cache takes `on` or `off`, got `{other}`");
                std::process::exit(2);
            }
        }
    }
}

/// Applies `--shards <n>` process-wide (the default, absent the flag,
/// is auto-sharding: rack-aligned shards of at least 128 hosts). CI
/// runs the experiment binaries at `--shards 1` and `--shards 8` and
/// byte-compares the artifacts — how the fleet is partitioned across
/// event calendars must be an invisible optimization.
pub fn apply_shards_arg() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--shards") {
        match w[1].parse::<usize>() {
            Ok(n) => containerleaks::cloudsim::set_shards_default(n),
            Err(_) => {
                eprintln!("--shards takes a shard count (0 = auto), got `{}`", w[1]);
                std::process::exit(2);
            }
        }
    }
}

/// Applies `--detector <on|off>` process-wide (the default, absent the
/// flag, is off, which reproduces the historical artifacts byte for
/// byte). With `on`, every cloud built in-process attaches the online
/// leak detector and its masking-policy enforcement; CI runs the
/// detection experiment with the flag at several `--jobs`/`--shards`
/// settings and byte-compares verdicts, policy updates, and counters.
pub fn apply_detector_arg() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--detector") {
        match w[1].as_str() {
            "on" => containerleaks::cloudsim::set_detector_default(true),
            "off" => containerleaks::cloudsim::set_detector_default(false),
            other => {
                eprintln!("--detector takes `on` or `off`, got `{other}`");
                std::process::exit(2);
            }
        }
    }
}

/// Parses `--trace <path>` from argv.
pub fn trace_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--trace")
        .map(|w| w[1].clone())
}

/// Whether `--counters` was passed.
pub fn counters_flag() -> bool {
    std::env::args().any(|a| a == "--counters")
}

static TRACE_SINK: OnceLock<Arc<simtrace::MemorySink>> = OnceLock::new();

/// Enables tracing for this process when `--trace` or `--counters` asks
/// for it. Must run before the first kernel is built so every event is
/// captured; a no-op (tracing stays zero-cost) when neither flag is
/// present.
pub fn init_tracing() {
    if trace_arg().is_none() && !counters_flag() {
        return;
    }
    let sink = Arc::new(simtrace::MemorySink::new());
    let _ = TRACE_SINK.set(Arc::clone(&sink));
    simtrace::install(sink);
}

/// After the run: writes the JSONL trace artifact (`--trace`) and/or
/// prints the counter + profile summary (`--counters`).
pub fn finish_tracing(seed: u64) {
    if let Some(path) = trace_arg() {
        let sink = TRACE_SINK.get().expect("init_tracing ran at startup");
        let trace = simtrace::render_jsonl(seed, &sink.drain());
        std::fs::write(&path, trace).expect("write trace artifact");
        eprintln!("wrote {path}");
    }
    if counters_flag() {
        println!("{}", simtrace::render_summary());
    }
}

/// Whether `--json` was passed.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints one experiment result (text or JSON).
pub fn emit(result: &ExperimentResult) {
    if json_flag() {
        println!(
            "{}",
            serde_json::to_string_pretty(result).expect("serializable")
        );
        return;
    }
    println!("=== {} ===\n", result.title);
    println!("{}", result.rendered);
    println!("{:<48} {:<42} {:<34} holds", "metric", "paper", "measured");
    for c in &result.comparisons {
        println!(
            "{:<48} {:<42} {:<34} {}",
            c.metric,
            c.paper,
            c.measured,
            if c.holds { "yes" } else { "NO" }
        );
    }
}
