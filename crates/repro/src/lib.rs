#![warn(missing_docs)]

//! Shared helpers for the experiment binaries.
//!
//! Every binary accepts `--seed <u64>` (default
//! [`containerleaks::DEFAULT_SEED`]) and `--json` to emit the structured
//! result instead of the rendered text.

use containerleaks::ExperimentResult;

/// Parses `--seed` from argv, with a default.
pub fn seed_arg(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Whether `--json` was passed.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints one experiment result (text or JSON).
pub fn emit(result: &ExperimentResult) {
    if json_flag() {
        println!(
            "{}",
            serde_json::to_string_pretty(result).expect("serializable")
        );
        return;
    }
    println!("=== {} ===\n", result.title);
    println!("{}", result.rendered);
    println!("{:<48} {:<42} {:<34} holds", "metric", "paper", "measured");
    for c in &result.comparisons {
        println!(
            "{:<48} {:<42} {:<34} {}",
            c.metric,
            c.paper,
            c.measured,
            if c.holds { "yes" } else { "NO" }
        );
    }
}
