//! `leakcheck` — the static leakage auditor as a standalone tool.
//!
//! Tokenizes the pseudo-filesystem handler sources, classifies every
//! registered channel on the namespace-blindness lattice, lints the
//! simulation crates for determinism hazards, and (by default) joins
//! the result against a dynamic differential scan to prove the two
//! analyses agree.
//!
//! ```sh
//! cargo run --release -p containerleaks-experiments --bin leakcheck
//! cargo run --release -p containerleaks-experiments --bin leakcheck -- --check
//! cargo run --release -p containerleaks-experiments --bin leakcheck -- --write
//! ```
//!
//! Flags:
//! * `--json`   emit the machine-readable report instead of the table
//! * `--check`  compare against the committed `leakcheck.json` snapshot
//!   and exit non-zero on drift (the `ci.sh` gate)
//! * `--write`  regenerate the committed snapshot in place
//! * `--static-only`  skip the dynamic agreement join
//! * `--deny-missing-dep`  exit non-zero when any declared render-cache
//!   mask is missing an interprocedurally derived dependency bit (a
//!   proved stale-cache bug); unreviewed extra bits always warn

use std::process::ExitCode;

use containerleaks::leakcheck;
use containerleaks::leakscan::{agreement, Lab};

const SNAPSHOT: &str = "leakcheck.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let has = |f: &str| args.iter().any(|a| a == f);

    let report = match leakcheck::audit() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("leakcheck: audit failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let unreviewed: Vec<_> = report.hazards.iter().filter(|h| !h.accepted).collect();
    if !unreviewed.is_empty() {
        for h in &unreviewed {
            eprintln!(
                "leakcheck: unreviewed determinism hazard in {}::{} ({}): {}",
                h.file, h.function, h.kind, h.detail
            );
        }
        return ExitCode::FAILURE;
    }

    for m in &report.flow.missing {
        eprintln!(
            "leakcheck: declared mask for {} ({}) is missing derived \
             dependency bits [{}] — stale render-cache bug",
            m.pattern,
            m.handler,
            m.bits.join(", ")
        );
    }
    for x in report.flow.extra.iter().filter(|x| x.allowed.is_none()) {
        eprintln!(
            "leakcheck: warning: declared mask for {} ({}) carries \
             underivable bits [{}] (lost cache hits; allowlist or tighten)",
            x.pattern,
            x.handler,
            x.bits.join(", ")
        );
    }
    if has("--deny-missing-dep") && !report.flow.missing.is_empty() {
        eprintln!(
            "leakcheck: --deny-missing-dep: {} declared mask(s) missing \
             derived bits",
            report.flow.missing.len()
        );
        return ExitCode::FAILURE;
    }

    if !has("--static-only") {
        let lab = Lab::new(1, containerleaks::DEFAULT_SEED);
        let host = lab.host(0);
        let rows = agreement::check(&host.kernel, &host.container_view(), &report);
        let bad = agreement::disagreements(&rows);
        if !bad.is_empty() {
            for r in &bad {
                eprintln!(
                    "leakcheck: disagreement on {} ({}): static {} predicts \
                     {:?}, scanner saw {:?}",
                    r.path, r.handler, r.static_verdict, r.predicted, r.dynamic
                );
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "leakcheck: static and dynamic verdicts agree on {} paths \
             ({} allowlisted)",
            rows.len(),
            rows.iter().filter(|r| r.allowlisted).count()
        );
    }

    let snapshot_path = leakcheck::workspace_root().join(SNAPSHOT);
    if has("--write") {
        if let Err(e) = std::fs::write(&snapshot_path, report.to_json()) {
            eprintln!("leakcheck: write {}: {e}", snapshot_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("leakcheck: wrote {}", snapshot_path.display());
        return ExitCode::SUCCESS;
    }
    if has("--check") {
        let expected = match std::fs::read_to_string(&snapshot_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "leakcheck: read {}: {e} (regenerate with --write)",
                    snapshot_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let diff = leakcheck::diff_lines(&expected, &report.to_json());
        if !diff.is_empty() {
            eprintln!(
                "leakcheck: snapshot {} is stale (regenerate with --write \
                 and review the verdict changes):",
                SNAPSHOT
            );
            for d in &diff {
                eprintln!("  {d}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("leakcheck: snapshot is current");
        return ExitCode::SUCCESS;
    }

    if has("--json") {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.human_table());
    }
    ExitCode::SUCCESS
}
