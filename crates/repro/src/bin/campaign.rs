//! Seed-derived scenario campaign fuzzer.
//!
//! Sweeps whole scenarios — fleet size, tenant mix, churn rate, fault
//! plan, masking profile, execution mode — each derived from a single
//! seed, and checks the metamorphic oracles (masking monotonicity, mode
//! invariance, power monotonicity, churn soundness). Failing scenarios
//! are shrunk to a minimal seed-plus-overrides and reported with a
//! copy-pasteable repro command.
//!
//! Flags: `--seeds <n>` scenarios to sweep (default 16) starting at
//! `--seed-start <u64>` (default 0), or `--seed <u64>` for exactly one
//! scenario; `--hosts/--tenants/--churn <n>` and `--faults <on|off>`
//! pin dimensions (how a shrunk repro is replayed); `--jobs <n>` worker
//! threads (default 1); `--no-shrink` disables failure shrinking;
//! `--inject <hosts,tenants,churn>` replaces the real oracles with the
//! deterministic threshold fixture (shrinker self-test); `--out <path>`
//! writes the markdown report plus a `.json` companion. The report is
//! byte-identical for any `--jobs` value. Exits 1 unless every scenario
//! passes every oracle.

use std::io::Write as _;

use containerleaks::campaign::{CampaignConfig, InjectedViolation, Overrides, Status};

fn arg(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    arg(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name} takes a number, got `{v}`");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    containerleaks_experiments::init_tracing();

    let overrides = Overrides {
        hosts: parse(&args, "--hosts"),
        tenants: parse(&args, "--tenants"),
        churn_cycles: parse(&args, "--churn"),
        faults: arg(&args, "--faults").map(|v| match v.as_str() {
            "on" => true,
            "off" => false,
            other => {
                eprintln!("--faults takes `on` or `off`, got `{other}`");
                std::process::exit(2);
            }
        }),
    };
    let seed_start: u64 = parse(&args, "--seed-start").unwrap_or(0);
    let count: usize = parse(&args, "--seeds").unwrap_or(16);
    let mut cfg = match parse::<u64>(&args, "--seed") {
        Some(seed) => CampaignConfig::sweep(seed, 1),
        None => CampaignConfig::sweep(seed_start, count),
    };
    cfg = cfg
        .jobs(parse(&args, "--jobs").unwrap_or(1))
        .overrides(overrides)
        .shrink(!args.iter().any(|a| a == "--no-shrink"));
    if let Some(spec) = arg(&args, "--inject") {
        let parts: Vec<&str> = spec.split(',').collect();
        let num = |i: usize| -> u64 {
            parts
                .get(i)
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--inject takes `hosts,tenants,churn`, got `{spec}`");
                    std::process::exit(2);
                })
        };
        cfg = cfg.inject(InjectedViolation {
            min_hosts: num(0) as usize,
            min_tenants: num(1) as usize,
            min_churn: num(2) as u32,
        });
    }

    let report = containerleaks::campaign::run(&cfg);
    for o in &report.outcomes {
        match &o.status {
            Status::Passed => eprintln!("seed {:>6}  ok    {}", o.seed, o.scenario),
            Status::Violated { oracle, detail } => {
                eprintln!("seed {:>6}  VIOLATED {oracle}: {detail}", o.seed);
                eprintln!("             repro: {}", o.repro);
            }
            Status::Panicked { message } => {
                eprintln!("seed {:>6}  PANICKED: {message}", o.seed);
                eprintln!("             repro: {}", o.repro);
            }
        }
    }
    eprintln!(
        "{} scenarios: {} passed, {} violations, {} panics",
        report.outcomes.len(),
        report.passed(),
        report.violations(),
        report.panics(),
    );

    if let Some(out_path) = arg(&args, "--out") {
        let md = report.render_md();
        let mut f = std::fs::File::create(&out_path).expect("create report file");
        f.write_all(md.as_bytes()).expect("write report");
        eprintln!("wrote {out_path}");
        let json_path = format!("{}.json", out_path.trim_end_matches(".md"));
        let json = serde_json::to_string_pretty(&report).expect("serializable report");
        std::fs::write(&json_path, json).expect("write json artifact");
        eprintln!("wrote {json_path}");
    }
    containerleaks_experiments::finish_tracing(seed_start);
    if !report.all_green() {
        std::process::exit(1);
    }
}
