//! `scan` — the ContainerLeaks detector as a standalone tool.
//!
//! Boots a simulated testbed (host + unprivileged container), runs the
//! cross-validation scan, classifies every pseudo file, assesses the
//! co-residence metrics for the known channel inventory, and emits the
//! masking policy that would close the leaks.
//!
//! ```sh
//! cargo run --release -p containerleaks-experiments --bin scan
//! cargo run --release -p containerleaks-experiments --bin scan -- --machine cloud --metrics --harden
//! ```
//!
//! Flags:
//! * `--seed <u64>`    deterministic seed (default 1729)
//! * `--machine <m>`   `testbed` (default), `cloud`, `small`, `legacy`
//! * `--metrics`       also run the (slower) U/V/M measurement campaign
//! * `--harden`        emit the generated masking policy
//! * `--json`          machine-readable output

use containerleaks::leakscan::{
    ChannelClass, CrossValidator, Hardener, Lab, MetricsAssessor, TABLE2_CHANNELS,
};
use containerleaks::simkernel::MachineConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    let machine = match args
        .windows(2)
        .find(|w| w[0] == "--machine")
        .map(|w| w[1].as_str())
    {
        Some("cloud") => MachineConfig::cloud_server(),
        Some("small") => MachineConfig::small_server(),
        Some("legacy") => MachineConfig::legacy_server_no_rapl(),
        _ => MachineConfig::testbed_i7_6700(),
    };
    let want_metrics = args.iter().any(|a| a == "--metrics");
    let want_harden = args.iter().any(|a| a == "--harden");
    let json = args.iter().any(|a| a == "--json");

    let n_hosts = if want_metrics { 2 } else { 1 };
    let mut lab = Lab::with_machine(n_hosts, seed, machine);
    let findings = {
        let host = lab.host(0);
        CrossValidator::new().scan(&host.kernel, &host.container_view())
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&findings).expect("serializable findings")
        );
    } else {
        let count = |c: ChannelClass| findings.iter().filter(|f| f.class == c).count();
        println!("ContainerLeaks scan — seed {seed}");
        println!(
            "{} files examined: {} LEAKING, {} namespaced, {} masked, {} partial\n",
            findings.len(),
            count(ChannelClass::Leaking),
            count(ChannelClass::Namespaced),
            count(ChannelClass::Masked),
            count(ChannelClass::PartiallyMasked),
        );
        println!("leaking channels (host state readable from the container):");
        for f in findings.iter().filter(|f| f.class == ChannelClass::Leaking) {
            println!("  LEAK  {}", f.path);
        }
    }

    if want_metrics {
        eprintln!("\nrunning U/V/M measurement campaign (~80 simulated seconds)...");
        let assessor = MetricsAssessor::new(format!("scan-{seed}"));
        let rows = assessor.rank_table2(assessor.assess_all(&mut lab, TABLE2_CHANNELS));
        println!("\nco-residence capability ranking:");
        println!("{:>4}  {:<52} U V M", "rank", "channel");
        for r in &rows {
            let a = &r.assessment;
            println!(
                "{:>4}  {:<52} {} {} {}",
                r.rank,
                a.channel.glob,
                if a.unique { "●" } else { "○" },
                if a.varies { "●" } else { "○" },
                match a.manipulation {
                    containerleaks::leakscan::ManipulationKind::Direct => "●",
                    containerleaks::leakscan::ManipulationKind::Indirect => "◐",
                    containerleaks::leakscan::ManipulationKind::None => "○",
                },
            );
        }
    }

    if want_harden {
        let host = lab.host(0);
        let (policy, report) = Hardener::new().harden(&host.kernel, &host.container_view());
        println!(
            "\ngenerated masking policy ({} leaks → {}):",
            report.leaks_before, report.leaks_after
        );
        for rule in policy.rules() {
            println!("  {:?} {}", rule.action, rule.pattern);
        }
    }
}
