//! Regenerates the detection extension experiment: online detection
//! latency vs. adaptive attacker cost across Table I exposure tiers.
//!
//! Flags: `--seed <u64>`, `--json`, and the process-wide execution-mode
//! toggles `--coalesce <on|off>`, `--render-cache <on|off>`,
//! `--shards <n>`, `--detector <on|off>` (this experiment attaches its
//! own detector explicitly, so the flag only affects other clouds built
//! in-process).

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    containerleaks_experiments::apply_coalesce_arg();
    containerleaks_experiments::apply_render_cache_arg();
    containerleaks_experiments::apply_shards_arg();
    containerleaks_experiments::apply_detector_arg();
    containerleaks_experiments::emit(&containerleaks::experiments::detection(seed));
}
