//! Regenerates the paper's fig7 experiment.

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    containerleaks_experiments::emit(&containerleaks::experiments::fig7(seed));
}
