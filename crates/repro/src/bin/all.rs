//! Runs every experiment and (re)writes EXPERIMENTS.md.
//!
//! Flags: `--seed <u64>` (default 1729), `--days <n>` for the Fig. 2 trace
//! length (default 7), `--out <path>` (default `EXPERIMENTS.md`).

use std::io::Write as _;

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    let args: Vec<String> = std::env::args().collect();
    let days = args
        .windows(2)
        .find(|w| w[0] == "--days")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(7);
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());

    let mut results = Vec::new();
    let all = containerleaks::experiments::all(seed, days);
    let total = all.len();
    for (i, r) in all.into_iter().enumerate() {
        eprintln!(
            "[{}/{total}] {} — {}",
            i + 1,
            r.id,
            if r.all_hold() { "ok" } else { "CLAIMS FAILED" }
        );
        containerleaks_experiments::emit(&r);
        println!();
        results.push(r);
    }
    let md = containerleaks::render_experiments_md(&results, seed);
    let mut f = std::fs::File::create(&out_path).expect("create report file");
    f.write_all(md.as_bytes()).expect("write report");
    eprintln!("wrote {out_path}");

    // Machine-readable companion artifact next to the markdown report.
    let json_path = format!("{}.json", out_path.trim_end_matches(".md"));
    let json = serde_json::to_string_pretty(&results).expect("serializable results");
    std::fs::write(&json_path, json).expect("write json artifact");
    eprintln!("wrote {json_path}");
    if results.iter().any(|r| !r.all_hold()) {
        std::process::exit(1);
    }
}
