//! Runs every experiment and (re)writes EXPERIMENTS.md.
//!
//! Flags: `--seed <u64>` (default 1729), `--days <n>` for the Fig. 2 trace
//! length (default 7), `--out <path>` (default `EXPERIMENTS.md`),
//! `--jobs <n>` worker threads for the experiment pool (default = available
//! cores; `--jobs 1` reproduces the serial order), `--coalesce <on|off>`
//! to toggle event-horizon tick coalescing (default on),
//! `--render-cache <on|off>` to toggle epoch-keyed pseudo-file render
//! caching (default on), `--detector <on|off>` to attach the online
//! leak detector to every cloud (default off — the historical
//! artifacts), `--only <id>[,<id>...]` to run a subset of the
//! registry (how panic-failure repro commands pin one experiment),
//! `--trace <path>` to write the deterministic
//! JSONL trace artifact, and `--counters` to print the per-subsystem
//! counter and sim-time profile summary. Every experiment driver is a
//! pure function of the seed, so the written artifacts — the trace
//! included, modulo its mode-exempt group and the cache-occupancy
//! counters — are byte-identical for any `--jobs` value and any
//! `--coalesce`/`--render-cache` setting.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    let jobs = containerleaks_experiments::jobs_arg();
    containerleaks_experiments::apply_coalesce_arg();
    containerleaks_experiments::apply_render_cache_arg();
    containerleaks_experiments::apply_shards_arg();
    containerleaks_experiments::apply_detector_arg();
    containerleaks_experiments::init_tracing();
    let args: Vec<String> = std::env::args().collect();
    let days = args
        .windows(2)
        .find(|w| w[0] == "--days")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(7);
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());

    let entries: Vec<(&str, containerleaks::experiments::ExperimentFn)> =
        match args.windows(2).find(|w| w[0] == "--only").map(|w| &w[1]) {
            Some(only) => {
                let wanted: Vec<&str> = only.split(',').collect();
                let picked: Vec<_> = containerleaks::experiments::EXPERIMENTS
                    .iter()
                    .filter(|(name, _)| wanted.contains(name))
                    .copied()
                    .collect();
                if picked.len() != wanted.len() {
                    let known: Vec<&str> = containerleaks::experiments::EXPERIMENTS
                        .iter()
                        .map(|(n, _)| *n)
                        .collect();
                    eprintln!("unknown experiment in --only {only}; known: {known:?}");
                    std::process::exit(2);
                }
                picked
            }
            None => containerleaks::experiments::EXPERIMENTS.to_vec(),
        };
    let total = entries.len();
    let done = AtomicUsize::new(0);
    let results =
        containerleaks::experiments::run_entries_with(&entries, seed, days, jobs, |_, r| {
            // Progress in completion order; the result vector (and therefore
            // everything printed or written below) stays in paper order.
            eprintln!(
                "[{}/{total}] {} — {}",
                done.fetch_add(1, Ordering::Relaxed) + 1,
                r.id,
                if r.all_hold() { "ok" } else { "CLAIMS FAILED" }
            );
        });
    for r in &results {
        containerleaks_experiments::emit(r);
        println!();
    }
    let md = containerleaks::render_experiments_md(&results, seed);
    let mut f = std::fs::File::create(&out_path).expect("create report file");
    f.write_all(md.as_bytes()).expect("write report");
    eprintln!("wrote {out_path}");

    // Machine-readable companion artifact next to the markdown report.
    let json_path = format!("{}.json", out_path.trim_end_matches(".md"));
    let json = serde_json::to_string_pretty(&results).expect("serializable results");
    std::fs::write(&json_path, json).expect("write json artifact");
    eprintln!("wrote {json_path}");
    containerleaks_experiments::finish_tracing(seed);
    if results.iter().any(|r| !r.all_hold()) {
        std::process::exit(1);
    }
}
