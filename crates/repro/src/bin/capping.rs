//! Regenerates the capping extension experiment (§II-C). Default seed 77 —
//! the crest-aligned run also used by Fig. 3; see EXPERIMENTS.md.

fn main() {
    let seed = containerleaks_experiments::seed_arg(77);
    containerleaks_experiments::emit(&containerleaks::experiments::capping(seed));
}
