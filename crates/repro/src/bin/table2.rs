//! Regenerates the paper's table2 experiment.

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    containerleaks_experiments::emit(&containerleaks::experiments::table2(seed));
}
