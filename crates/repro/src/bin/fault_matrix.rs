//! Runs the fault-injection matrix and writes its report artifacts.
//!
//! Flags: `--seed <u64>` (default 1729), `--out <path>` (default
//! `FAULTS.md`; the JSON companion lands next to it), `--jobs <n>` worker
//! threads (default = available cores), `--coalesce <on|off>` to toggle
//! event-horizon tick coalescing (default on), `--render-cache <on|off>`
//! to toggle epoch-keyed pseudo-file render caching (default on),
//! `--trace <path>` to write the deterministic JSONL trace artifact, and
//! `--counters` to print the per-subsystem counter and sim-time profile
//! summary. Every scenario is a pure function of the seed — fault
//! schedules included — so the artifacts (the trace included, modulo its
//! mode-exempt group and the cache-occupancy counters) are byte-identical
//! for any `--jobs` value and any `--coalesce`/`--render-cache` setting;
//! CI compares `--jobs 1` against `--jobs 4`, coalescing on against off,
//! and render caching on against off to prove it.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    let jobs = containerleaks_experiments::jobs_arg();
    containerleaks_experiments::apply_coalesce_arg();
    containerleaks_experiments::apply_render_cache_arg();
    containerleaks_experiments::apply_shards_arg();
    containerleaks_experiments::init_tracing();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "FAULTS.md".to_string());

    let total = containerleaks::FAULT_MATRIX.len();
    let done = AtomicUsize::new(0);
    let results = containerleaks::run_fault_matrix_with(seed, jobs, |_, r| {
        eprintln!(
            "[{}/{total}] {} — {}",
            done.fetch_add(1, Ordering::Relaxed) + 1,
            r.id,
            if r.all_hold() { "ok" } else { "CLAIMS FAILED" }
        );
    });
    for r in &results {
        containerleaks_experiments::emit(r);
        println!();
    }
    let md = containerleaks::render_experiments_md(&results, seed);
    let mut f = std::fs::File::create(&out_path).expect("create report file");
    f.write_all(md.as_bytes()).expect("write report");
    eprintln!("wrote {out_path}");

    let json_path = format!("{}.json", out_path.trim_end_matches(".md"));
    let json = serde_json::to_string_pretty(&results).expect("serializable results");
    std::fs::write(&json_path, json).expect("write json artifact");
    eprintln!("wrote {json_path}");
    containerleaks_experiments::finish_tracing(seed);
    if results.iter().any(|r| !r.all_hold()) {
        std::process::exit(1);
    }
}
