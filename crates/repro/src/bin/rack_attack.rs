//! Regenerates the rack-targeted attack extension experiment. Default
//! seed 77 (the crest-aligned run; see EXPERIMENTS.md).

fn main() {
    let seed = containerleaks_experiments::seed_arg(77);
    containerleaks_experiments::apply_shards_arg();
    containerleaks_experiments::emit(&containerleaks::experiments::rack_attack(seed));
}
