//! Regenerates the stealth extension experiment (§IV-B). Default seed 77.

fn main() {
    let seed = containerleaks_experiments::seed_arg(77);
    containerleaks_experiments::emit(&containerleaks::experiments::stealth(seed));
}
