//! Regenerates Fig. 2 (one-week power of 8 servers). `--days <n>` bounds
//! the trace length (default 7, the paper's full week).

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    containerleaks_experiments::apply_shards_arg();
    let args: Vec<String> = std::env::args().collect();
    let days = args
        .windows(2)
        .find(|w| w[0] == "--days")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(7);
    containerleaks_experiments::emit(&containerleaks::experiments::fig2(seed, days));
}
