//! Regenerates Table III (UnixBench overhead of the power namespace).

fn main() {
    containerleaks_experiments::emit(&containerleaks::experiments::table3());
}
