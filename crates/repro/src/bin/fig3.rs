//! Regenerates Fig. 3 (synergistic vs periodic attack). Default seed 77 —
//! like the paper's single-run figure, the peak gap depends on where the
//! benign crests fall relative to the periodic schedule.

fn main() {
    let seed = containerleaks_experiments::seed_arg(77);
    containerleaks_experiments::emit(&containerleaks::experiments::fig3(seed));
}
