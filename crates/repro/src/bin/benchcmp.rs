//! Gates a fresh Criterion run against the committed bench baseline.
//!
//! Flags: `--baseline <path>` (default `BENCH_pipelines.json`),
//! `--fresh <path>` (default `target/bench-artifacts/BENCH_pipelines.json`),
//! `--threshold-pct <p>` (default 25), `--floor-ns <n>` (default 20000).
//!
//! A benchmark regresses when its fresh median exceeds the baseline
//! median by more than the threshold *and* by more than the absolute
//! floor — sub-floor deltas are scheduler noise, not code. On shared
//! boxes the whole suite sometimes runs uniformly slower (co-tenant
//! load), which says nothing about the code, so each ratio is first
//! discounted by the suite-wide *noise factor* — the median of all
//! fresh/baseline ratios, clamped to at least 1 so a fast run never
//! manufactures regressions. A code change shifts specific benches
//! against that backdrop; box load shifts all of them together. The
//! escape valve is bounded: past `HARD_CAP`× undiscounted, a bench
//! fails regardless (a uniform *real* regression cannot hide forever).
//! Benchmarks present in the baseline but missing from the fresh run
//! fail the gate (a silently dropped bench would otherwise pass
//! forever); benchmarks only in the fresh run are reported as new and
//! pass.

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde::Deserialize;

/// The slice of each benchmark's statistics the gate compares. The
/// report also carries `mean_ns`/`min_ns`/`samples`; the derive ignores
/// fields it is not asked for.
#[derive(Debug, Clone, Deserialize)]
struct BenchStats {
    median_ns: f64,
}

/// The `BENCH_<file>.json` report shape.
#[derive(Debug, Deserialize)]
struct BenchReport {
    bench_file: String,
    groups: BTreeMap<String, BTreeMap<String, BenchStats>>,
}

impl BenchReport {
    fn load(path: &str) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    }

    /// Flattens `group/bench -> median_ns`; names are unique per file.
    fn medians(&self) -> BTreeMap<String, f64> {
        self.groups
            .values()
            .flat_map(|benches| benches.iter().map(|(name, s)| (name.clone(), s.median_ns)))
            .collect()
    }
}

fn arg(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn main() -> ExitCode {
    let baseline_path = arg("--baseline", "BENCH_pipelines.json");
    let fresh_path = arg("--fresh", "target/bench-artifacts/BENCH_pipelines.json");
    let threshold_pct: f64 = arg("--threshold-pct", "25").parse().unwrap_or(25.0);
    let floor_ns: f64 = arg("--floor-ns", "20000").parse().unwrap_or(20_000.0);

    let (baseline, fresh) = match (
        BenchReport::load(&baseline_path),
        BenchReport::load(&fresh_path),
    ) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("benchcmp: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if baseline.bench_file != fresh.bench_file {
        eprintln!(
            "benchcmp: baseline is `{}`, fresh is `{}` — different bench files",
            baseline.bench_file, fresh.bench_file
        );
        return ExitCode::FAILURE;
    }

    let base = baseline.medians();
    let new = fresh.medians();
    let limit = 1.0 + threshold_pct / 100.0;

    // Suite-wide noise factor: the median fresh/baseline ratio across
    // every bench present in both reports, never below 1.
    let mut ratios: Vec<f64> = base
        .iter()
        .filter_map(|(name, &b)| new.get(name).map(|&n| n / b))
        .collect();
    ratios.sort_by(f64::total_cmp);
    let noise = if ratios.is_empty() {
        1.0
    } else {
        ratios[ratios.len() / 2].max(1.0)
    };
    // Past this many times the baseline — undiscounted — a bench fails
    // even if the whole suite slowed with it.
    const HARD_CAP: f64 = 4.0;
    let mut failed = false;

    println!("suite noise factor: {noise:.2}x (discounted before gating)");
    println!(
        "{:<34} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "fresh", "ratio"
    );
    for (name, &b) in &base {
        match new.get(name) {
            None => {
                failed = true;
                println!(
                    "{name:<34} {:>12} {:>12} {:>8}  MISSING",
                    fmt_ns(b),
                    "-",
                    "-"
                );
            }
            Some(&n) => {
                let ratio = n / b;
                let discounted = ratio / noise;
                let regressed = (discounted > limit && n - b * noise > floor_ns)
                    || (ratio > HARD_CAP && n - b > floor_ns);
                if regressed {
                    failed = true;
                }
                println!(
                    "{name:<34} {:>12} {:>12} {:>7.2}x  {}",
                    fmt_ns(b),
                    fmt_ns(n),
                    ratio,
                    if regressed { "REGRESSED" } else { "ok" }
                );
            }
        }
    }
    for (name, &n) in &new {
        if !base.contains_key(name) {
            println!(
                "{name:<34} {:>12} {:>12} {:>8}  new (no baseline)",
                "-",
                fmt_ns(n),
                "-"
            );
        }
    }

    if failed {
        eprintln!(
            "benchcmp: FAIL — median regression beyond {threshold_pct}% \
             (+{} floor) or a benchmark went missing",
            fmt_ns(floor_ns)
        );
        ExitCode::FAILURE
    } else {
        println!("benchcmp: ok — all medians within {threshold_pct}% of baseline");
        ExitCode::SUCCESS
    }
}
