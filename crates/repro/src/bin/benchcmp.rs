//! Gates a fresh Criterion run against the committed bench baseline.
//!
//! Flags: `--baseline <path>` (default `BENCH_pipelines.json`),
//! `--fresh <path>` (default `target/bench-artifacts/BENCH_pipelines.json`),
//! `--threshold-pct <p>` (default 25), `--floor-ns <n>` (default 20000),
//! and repeatable `--require-speedup <fast>:<slow>:<factor>` demands —
//! each asserts the fresh median of `slow` is at least `factor`× the
//! fresh median of `fast` (e.g. the render-cache win on the headline
//! pipelines), failing the gate otherwise.
//!
//! The comparison math — noise-discounted medians, the absolute floor,
//! the hard cap, and the missing/new rules — lives in
//! [`containerleaks_experiments::benchgate`], where it is unit-tested
//! against fixture reports; this binary only parses flags and renders
//! the verdict table.

use std::process::ExitCode;

use containerleaks_experiments::benchgate::{
    check_speedups, gate, BenchReport, SpeedupReq, Verdict, HARD_CAP,
};

fn arg(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

/// Every value of a repeatable flag, in argv order.
fn args_all(flag: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].clone())
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_opt(ns: Option<f64>) -> String {
    ns.map_or_else(|| "-".to_string(), fmt_ns)
}

fn main() -> ExitCode {
    let baseline_path = arg("--baseline", "BENCH_pipelines.json");
    let fresh_path = arg("--fresh", "target/bench-artifacts/BENCH_pipelines.json");
    let threshold_pct: f64 = arg("--threshold-pct", "25").parse().unwrap_or(25.0);
    let floor_ns: f64 = arg("--floor-ns", "20000").parse().unwrap_or(20_000.0);
    let mut speedups = Vec::new();
    for spec in args_all("--require-speedup") {
        match SpeedupReq::parse(&spec) {
            Ok(req) => speedups.push(req),
            Err(e) => {
                eprintln!("benchcmp: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (baseline, fresh) = match (
        BenchReport::load(&baseline_path),
        BenchReport::load(&fresh_path),
    ) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("benchcmp: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    if baseline.bench_file != fresh.bench_file {
        eprintln!(
            "benchcmp: baseline is `{}`, fresh is `{}` — different bench files",
            baseline.bench_file, fresh.bench_file
        );
        return ExitCode::FAILURE;
    }

    let out = gate(&baseline, &fresh, threshold_pct, floor_ns);
    println!(
        "suite noise factor: {:.2}x (discounted before gating; hard cap {HARD_CAP}x)",
        out.noise
    );
    println!(
        "{:<34} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "fresh", "ratio"
    );
    for row in &out.rows {
        let ratio = match (row.baseline_ns, row.fresh_ns) {
            (Some(b), Some(n)) => format!("{:.2}x", n / b),
            _ => "-".to_string(),
        };
        println!(
            "{:<34} {:>12} {:>12} {:>8}  {}",
            row.name,
            fmt_opt(row.baseline_ns),
            fmt_opt(row.fresh_ns),
            ratio,
            match row.verdict {
                Verdict::Ok => "ok",
                Verdict::OkMinRescued => "ok (min held)",
                Verdict::Regressed => "REGRESSED",
                Verdict::Missing => "MISSING",
                Verdict::New => "new (no baseline)",
            }
        );
    }

    let mut speedup_failed = false;
    if !speedups.is_empty() {
        println!();
        println!(
            "{:<34} {:>12} {:>12} {:>9}  required",
            "speedup (fresh medians)", "slow", "fast", "achieved"
        );
        for row in check_speedups(&fresh, &speedups) {
            speedup_failed |= !row.ok;
            println!(
                "{:<34} {:>12} {:>12} {:>9}  >= {:.1}x  {}",
                row.req.fast,
                fmt_opt(row.slow_ns),
                fmt_opt(row.fast_ns),
                row.achieved
                    .map_or_else(|| "-".to_string(), |r| format!("{r:.2}x")),
                row.req.factor,
                if row.ok { "ok" } else { "SHORTFALL" }
            );
        }
    }

    if out.failed || speedup_failed {
        if out.failed {
            eprintln!(
                "benchcmp: FAIL — median regression beyond {threshold_pct}% \
                 (+{} floor) or a benchmark went missing",
                fmt_ns(floor_ns)
            );
        }
        if speedup_failed {
            eprintln!("benchcmp: FAIL — a required speedup was not achieved");
        }
        ExitCode::FAILURE
    } else {
        println!("benchcmp: ok — all medians within {threshold_pct}% of baseline");
        ExitCode::SUCCESS
    }
}
