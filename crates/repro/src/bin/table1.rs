//! Regenerates the paper's table1 experiment.

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    containerleaks_experiments::emit(&containerleaks::experiments::table1(seed));
}
