//! Regenerates the defense-oracle extension experiment.

fn main() {
    let seed = containerleaks_experiments::seed_arg(containerleaks::DEFAULT_SEED);
    containerleaks_experiments::emit(&containerleaks::experiments::defense(seed));
}
