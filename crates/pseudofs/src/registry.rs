//! The channel registry: a machine-readable export of every dispatch arm.
//!
//! [`PseudoFs::read`](crate::PseudoFs::read) routes paths to handler
//! functions through a `match`; that control flow is opaque to tooling.
//! This module mirrors it as data: one [`Route`] per dispatch arm, naming
//! the glob it serves, a concrete probe path, the handler function
//! (plus the buffer-writing fast path, when one exists) as a
//! `module::function` string relative to [`crate::render`], and the
//! subsystem dependency mask the render cache keys freshness on.
//!
//! Consumers:
//!
//! * the `leakcheck` static auditor resolves each route to its handler's
//!   source and classifies the channel's namespace behavior, then
//!   cross-checks this table against the parsed `fs.rs` dispatch arms so
//!   the two can never drift silently — and lints that each route's
//!   declared `deps` cover every kernel accessor its handler reads;
//! * the pseudofs render cache tags each cached buffer with its route's
//!   `deps` so a read is served from cache only while those subsystem
//!   epochs are unchanged;
//! * tests walk [`ROUTES`] to assert every probe renders and every listed
//!   path is routable.

use simkernel::dep;

use crate::view::glob_match;

/// One path-dispatch arm of [`PseudoFs`](crate::PseudoFs), as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Glob over absolute paths served by this arm, in
    /// [`glob_match`] syntax.
    pub pattern: &'static str,
    /// A concrete path matching `pattern` that renders on the default
    /// testbed machine (pid routes assume a container whose init is
    /// visible as pid 1).
    pub probe: &'static str,
    /// Handler function as `module::function`, relative to
    /// [`crate::render`].
    pub handler: &'static str,
    /// The hand-written buffer-writing fast-path renderer used by
    /// [`PseudoFs::read_into`](crate::PseudoFs::read_into), if one exists.
    pub fast_into: Option<&'static str>,
    /// OR of [`simkernel::dep`] bits naming every kernel subsystem the
    /// handler reads. Over-declaring is sound (costs a re-render);
    /// under-declaring would serve stale bytes and is what the leakcheck
    /// cache-coherence lint guards against.
    pub deps: u32,
}

const fn route(
    pattern: &'static str,
    probe: &'static str,
    handler: &'static str,
    deps: u32,
) -> Route {
    Route {
        pattern,
        probe,
        handler,
        fast_into: None,
        deps,
    }
}

const fn fast(
    pattern: &'static str,
    probe: &'static str,
    handler: &'static str,
    into: &'static str,
    deps: u32,
) -> Route {
    Route {
        pattern,
        probe,
        handler,
        fast_into: Some(into),
        deps,
    }
}

/// Every dispatch arm of the modeled tree, exact patterns before globs
/// (lookup is first-match-wins, mirroring the `match` order in `fs.rs`).
pub const ROUTES: &[Route] = &[
    // ---- exact /proc arms ----
    route(
        "/proc/cpuinfo",
        "/proc/cpuinfo",
        "proc_basic::cpuinfo",
        dep::HW,
    ),
    fast(
        "/proc/meminfo",
        "/proc/meminfo",
        "proc_basic::meminfo",
        "proc_basic::meminfo_into",
        dep::MEM | dep::PROCESS | dep::CGROUP,
    ),
    fast(
        "/proc/stat",
        "/proc/stat",
        "proc_basic::stat",
        "proc_basic::stat_into",
        dep::CLOCK | dep::SCHED | dep::IRQ | dep::PROCESS,
    ),
    fast(
        "/proc/uptime",
        "/proc/uptime",
        "proc_basic::uptime",
        "proc_basic::uptime_into",
        dep::CLOCK | dep::SCHED,
    ),
    route("/proc/version", "/proc/version", "proc_basic::version", 0),
    fast(
        "/proc/loadavg",
        "/proc/loadavg",
        "proc_basic::loadavg",
        "proc_basic::loadavg_into",
        dep::SCHED | dep::PROCESS,
    ),
    fast(
        "/proc/interrupts",
        "/proc/interrupts",
        "proc_irq::interrupts",
        "proc_irq::interrupts_into",
        dep::IRQ,
    ),
    fast(
        "/proc/softirqs",
        "/proc/softirqs",
        "proc_irq::softirqs",
        "proc_irq::softirqs_into",
        dep::IRQ,
    ),
    fast(
        "/proc/schedstat",
        "/proc/schedstat",
        "proc_sched::schedstat",
        "proc_sched::schedstat_into",
        dep::SCHED,
    ),
    fast(
        "/proc/sched_debug",
        "/proc/sched_debug",
        "proc_sched::sched_debug",
        "proc_sched::sched_debug_into",
        dep::CLOCK | dep::SCHED | dep::PROCESS,
    ),
    fast(
        "/proc/timer_list",
        "/proc/timer_list",
        "proc_sched::timer_list",
        "proc_sched::timer_list_into",
        dep::CLOCK | dep::TIMERS,
    ),
    route("/proc/locks", "/proc/locks", "proc_sched::locks", dep::FS),
    route("/proc/modules", "/proc/modules", "proc_misc::modules", 0),
    route(
        "/proc/zoneinfo",
        "/proc/zoneinfo",
        "proc_misc::zoneinfo",
        dep::MEM,
    ),
    route(
        "/proc/diskstats",
        "/proc/diskstats",
        "proc_misc::diskstats",
        dep::STATS,
    ),
    route(
        "/proc/sys/fs/dentry-state",
        "/proc/sys/fs/dentry-state",
        "proc_kernel::dentry_state",
        dep::FS,
    ),
    route(
        "/proc/sys/fs/inode-nr",
        "/proc/sys/fs/inode-nr",
        "proc_kernel::inode_nr",
        dep::FS,
    ),
    route(
        "/proc/sys/fs/file-nr",
        "/proc/sys/fs/file-nr",
        "proc_kernel::file_nr",
        dep::FS,
    ),
    route(
        "/proc/sys/kernel/random/boot_id",
        "/proc/sys/kernel/random/boot_id",
        "proc_kernel::boot_id",
        dep::FS,
    ),
    route(
        "/proc/sys/kernel/random/entropy_avail",
        "/proc/sys/kernel/random/entropy_avail",
        "proc_kernel::entropy_avail",
        dep::FS,
    ),
    route(
        "/proc/sys/kernel/random/uuid",
        "/proc/sys/kernel/random/uuid",
        "proc_kernel::uuid",
        dep::CLOCK | dep::FS,
    ),
    route(
        "/proc/sys/kernel/hostname",
        "/proc/sys/kernel/hostname",
        "proc_kernel::hostname",
        dep::NS,
    ),
    route(
        "/proc/sys/kernel/osrelease",
        "/proc/sys/kernel/osrelease",
        "proc_kernel::osrelease",
        0,
    ),
    route(
        "/proc/self/status",
        "/proc/self/status",
        "proc_pid::self_status",
        dep::NS,
    ),
    route(
        "/proc/self/cgroup",
        "/proc/self/cgroup",
        "proc_pid::self_cgroup",
        dep::NS | dep::CGROUP,
    ),
    route(
        "/proc/net/dev",
        "/proc/net/dev",
        "proc_pid::net_dev",
        dep::CLOCK | dep::NET | dep::NS,
    ),
    route("/proc/mounts", "/proc/mounts", "proc_pid::mounts", dep::NS),
    route(
        "/proc/net/snmp",
        "/proc/net/snmp",
        "proc_pid::net_snmp",
        // Synthetic counters: scale with uptime and salt on the net
        // namespace *id* — no `k.net()` device state reaches the bytes.
        dep::CLOCK | dep::NS,
    ),
    route(
        "/proc/net/tcp",
        "/proc/net/tcp",
        "proc_pid::net_tcp",
        // Rows are derived from the visible process table (ports hash
        // the pid); no `k.net()` device state reaches the bytes.
        dep::NS | dep::PROCESS,
    ),
    route(
        "/proc/sys/kernel/pid_max",
        "/proc/sys/kernel/pid_max",
        "proc_kernel::pid_max",
        0,
    ),
    route(
        "/proc/sys/kernel/threads-max",
        "/proc/sys/kernel/threads-max",
        "proc_kernel::threads_max",
        dep::MEM,
    ),
    route(
        "/proc/sys/vm/overcommit_memory",
        "/proc/sys/vm/overcommit_memory",
        "proc_kernel::overcommit_memory",
        0,
    ),
    route(
        "/proc/sys/vm/swappiness",
        "/proc/sys/vm/swappiness",
        "proc_kernel::swappiness",
        0,
    ),
    route("/proc/vmstat", "/proc/vmstat", "proc_vm::vmstat", dep::MEM),
    route(
        "/proc/slabinfo",
        "/proc/slabinfo",
        "proc_vm::slabinfo",
        dep::MEM | dep::FS | dep::PROCESS,
    ),
    route(
        "/proc/buddyinfo",
        "/proc/buddyinfo",
        "proc_vm::buddyinfo",
        dep::MEM,
    ),
    route("/proc/swaps", "/proc/swaps", "proc_vm::swaps", dep::MEM),
    route(
        "/proc/partitions",
        "/proc/partitions",
        "proc_vm::partitions",
        0,
    ),
    route(
        "/proc/filesystems",
        "/proc/filesystems",
        "proc_vm::filesystems",
        0,
    ),
    route(
        "/proc/cgroups",
        "/proc/cgroups",
        "proc_vm::cgroups",
        dep::CGROUP,
    ),
    // ---- exact /sys arms ----
    route(
        "/sys/devices/system/cpu/online",
        "/sys/devices/system/cpu/online",
        "sys_power::cpu_online",
        0,
    ),
    route(
        "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
        "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
        "sys_cgroup::ifpriomap",
        dep::NET | dep::CGROUP,
    ),
    route(
        "/sys/fs/cgroup/net_prio/net_prio.prioidx",
        "/sys/fs/cgroup/net_prio/net_prio.prioidx",
        "sys_cgroup::prioidx",
        dep::CGROUP,
    ),
    route(
        "/sys/fs/cgroup/cpuacct/cpuacct.usage",
        "/sys/fs/cgroup/cpuacct/cpuacct.usage",
        "sys_cgroup::cpuacct_usage",
        dep::CGROUP,
    ),
    route(
        "/sys/fs/cgroup/cpuacct/cpuacct.usage_percpu",
        "/sys/fs/cgroup/cpuacct/cpuacct.usage_percpu",
        "sys_cgroup::cpuacct_usage_percpu",
        dep::CGROUP,
    ),
    route(
        "/sys/fs/cgroup/memory/memory.usage_in_bytes",
        "/sys/fs/cgroup/memory/memory.usage_in_bytes",
        "sys_cgroup::memory_usage",
        dep::CGROUP,
    ),
    route(
        "/sys/fs/cgroup/memory/memory.max_usage_in_bytes",
        "/sys/fs/cgroup/memory/memory.max_usage_in_bytes",
        "sys_cgroup::memory_max_usage",
        dep::CGROUP,
    ),
    // ---- parameterized arms (segment globs) ----
    route(
        "/proc/sys/kernel/sched_domain/cpu*/domain0/max_newidle_lb_cost",
        "/proc/sys/kernel/sched_domain/cpu0/domain0/max_newidle_lb_cost",
        "proc_kernel::max_newidle_lb_cost",
        dep::SCHED,
    ),
    route(
        "/proc/fs/ext4/*/mb_groups",
        "/proc/fs/ext4/sda1/mb_groups",
        "proc_misc::mb_groups",
        dep::FS,
    ),
    route(
        "/proc/*/status",
        "/proc/1/status",
        "proc_pid::pid_status",
        dep::NS | dep::PROCESS,
    ),
    route(
        "/proc/*/stat",
        "/proc/1/stat",
        "proc_pid::pid_stat",
        dep::NS | dep::PROCESS,
    ),
    route(
        "/proc/*/cmdline",
        "/proc/1/cmdline",
        "proc_pid::pid_cmdline",
        dep::NS | dep::PROCESS,
    ),
    route(
        "/proc/*/io",
        "/proc/1/io",
        "proc_pid::pid_io",
        dep::NS | dep::PROCESS,
    ),
    route(
        "/proc/*/sched",
        "/proc/1/sched",
        "proc_pid::pid_sched",
        // cpu_time/vruntime only move under mutations that bump
        // PROCESS; an idle clock advance leaves the bytes unchanged.
        dep::NS | dep::PROCESS,
    ),
    route(
        "/sys/block/*/stat",
        "/sys/block/sda/stat",
        "sys_power::block_stat",
        dep::STATS,
    ),
    route(
        "/sys/class/thermal/thermal_zone*/temp",
        "/sys/class/thermal/thermal_zone0/temp",
        "sys_power::thermal_zone_temp",
        dep::HW,
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpufreq/scaling_cur_freq",
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq",
        "sys_power::cpufreq_cur",
        dep::HW,
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpufreq/cpuinfo_max_freq",
        "/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq",
        "sys_power::cpufreq_max",
        dep::HW,
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/name",
        "/sys/devices/system/cpu/cpu0/cpuidle/state0/name",
        "sys_power::cpuidle_name",
        dep::HW,
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/usage",
        "/sys/devices/system/cpu/cpu0/cpuidle/state0/usage",
        "sys_power::cpuidle_usage",
        dep::HW,
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/time",
        "/sys/devices/system/cpu/cpu0/cpuidle/state0/time",
        "sys_power::cpuidle_time",
        dep::HW,
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/name",
        "/sys/class/powercap/intel-rapl:0/name",
        "sys_power::rapl_name",
        dep::HW,
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/energy_uj",
        "/sys/class/powercap/intel-rapl:0/energy_uj",
        "sys_power::rapl_package_energy",
        dep::HW,
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/max_energy_range_uj",
        "/sys/class/powercap/intel-rapl:0/max_energy_range_uj",
        "sys_power::rapl_max_range",
        dep::HW,
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/intel-rapl:*/name",
        "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/name",
        "sys_power::rapl_subdomain_name",
        dep::HW,
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/intel-rapl:*/energy_uj",
        "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/energy_uj",
        "sys_power::rapl_subdomain_energy",
        dep::HW,
    ),
    route(
        "/sys/devices/platform/coretemp.*/hwmon/hwmon*/temp*_input",
        "/sys/devices/platform/coretemp.0/hwmon/hwmon0/temp1_input",
        "sys_power::coretemp",
        dep::HW,
    ),
    route(
        "/sys/devices/system/node/node*/numastat",
        "/sys/devices/system/node/node0/numastat",
        "sys_node::numastat",
        dep::MEM,
    ),
    route(
        "/sys/devices/system/node/node*/vmstat",
        "/sys/devices/system/node/node0/vmstat",
        "sys_node::vmstat",
        dep::MEM,
    ),
    route(
        "/sys/devices/system/node/node*/meminfo",
        "/sys/devices/system/node/node0/meminfo",
        "sys_node::node_meminfo",
        dep::MEM,
    ),
];

/// The route serving `path`, if any (first match wins, mirroring
/// dispatch order: exact arms shadow the pid globs for `/proc/self/*`).
pub fn route_for(path: &str) -> Option<&'static Route> {
    ROUTES.iter().find(|r| glob_match(r.pattern, path))
}

/// The OR of the dependency masks of every route whose mask treatment
/// differs between `old` and `new` — the subsystem epochs a *live*
/// policy swap must dirty so the render cache revalidates everything the
/// swap can have changed. Each route is probed through its concrete
/// representative path, matching how the masking layer evaluates rules.
pub fn changed_mask_deps(old: &crate::MaskPolicy, new: &crate::MaskPolicy) -> u32 {
    let mut deps = 0u32;
    for r in ROUTES {
        if old.action_for(r.probe) != new.action_for(r.probe) {
            deps |= r.deps;
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;
    use crate::PseudoFs;
    use simkernel::kernel::ProcessSpec;
    use simkernel::{Kernel, MachineConfig};
    use workloads::models;

    fn kernel() -> (Kernel, View) {
        let mut k = Kernel::new(MachineConfig::testbed_i7_6700(), 11);
        let env = k.create_container_env("c1").unwrap();
        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(2);
        let view = View::container(env.ns, env.cgroups);
        (k, view)
    }

    #[test]
    fn every_probe_matches_its_own_pattern_and_renders() {
        let (k, container) = kernel();
        let fs = PseudoFs::new();
        let host = View::host();
        for r in ROUTES {
            assert!(
                glob_match(r.pattern, r.probe),
                "probe {} does not match pattern {}",
                r.probe,
                r.pattern
            );
            assert_eq!(
                route_for(r.probe).map(|m| m.handler),
                Some(r.handler),
                "probe {} resolves to a different route",
                r.probe
            );
            // Numeric pid probes use ns pids, which only resolve inside the
            // container's pid namespace (host pids start at 300).
            let view = if r.pattern.starts_with("/proc/*/") {
                &container
            } else {
                &host
            };
            fs.read(&k, view, r.probe)
                .unwrap_or_else(|e| panic!("probe {} unreadable: {e}", r.probe));
        }
    }

    #[test]
    fn every_listed_path_is_routed() {
        let (k, container) = kernel();
        let fs = PseudoFs::new();
        for view in [View::host(), container] {
            for path in fs.list(&k, &view) {
                assert!(route_for(&path).is_some(), "unrouted path {path}");
            }
        }
    }

    #[test]
    fn handlers_are_unique_and_patterns_do_not_duplicate() {
        let mut handlers: Vec<&str> = ROUTES.iter().map(|r| r.handler).collect();
        handlers.sort_unstable();
        let n = handlers.len();
        handlers.dedup();
        assert_eq!(n, handlers.len(), "duplicate handler entries");
        let mut patterns: Vec<&str> = ROUTES.iter().map(|r| r.pattern).collect();
        patterns.sort_unstable();
        let n = patterns.len();
        patterns.dedup();
        assert_eq!(n, patterns.len(), "duplicate patterns");
    }

    #[test]
    fn fast_paths_cover_exactly_the_hand_written_into_renderers() {
        let fast: Vec<&str> = ROUTES.iter().filter_map(|r| r.fast_into).collect();
        assert_eq!(fast.len(), 9, "nine hand-written _into fast paths");
        for f in &fast {
            assert!(f.ends_with("_into"), "{f}");
        }
    }

    #[test]
    fn self_paths_resolve_to_self_handlers_not_pid_globs() {
        assert_eq!(
            route_for("/proc/self/status").unwrap().handler,
            "proc_pid::self_status"
        );
        assert_eq!(
            route_for("/proc/7/status").unwrap().handler,
            "proc_pid::pid_status"
        );
        assert!(route_for("/proc/does_not_exist").is_none());
    }

    #[test]
    fn deps_are_within_the_subsystem_bit_range() {
        for r in ROUTES {
            assert_eq!(
                r.deps & !dep::ALL,
                0,
                "{} declares unknown dependency bits",
                r.pattern
            );
        }
    }
}
