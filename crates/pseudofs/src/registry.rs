//! The channel registry: a machine-readable export of every dispatch arm.
//!
//! [`PseudoFs::read`](crate::PseudoFs::read) routes paths to handler
//! functions through a `match`; that control flow is opaque to tooling.
//! This module mirrors it as data: one [`Route`] per dispatch arm, naming
//! the glob it serves, a concrete probe path, and the handler function
//! (plus the buffer-writing fast path, when one exists) as a
//! `module::function` string relative to [`crate::render`].
//!
//! Consumers:
//!
//! * the `leakcheck` static auditor resolves each route to its handler's
//!   source and classifies the channel's namespace behavior, then
//!   cross-checks this table against the parsed `fs.rs` dispatch arms so
//!   the two can never drift silently;
//! * tests walk [`ROUTES`] to assert every probe renders and every listed
//!   path is routable.

use crate::view::glob_match;

/// One path-dispatch arm of [`PseudoFs`](crate::PseudoFs), as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Glob over absolute paths served by this arm, in
    /// [`glob_match`] syntax.
    pub pattern: &'static str,
    /// A concrete path matching `pattern` that renders on the default
    /// testbed machine (pid routes assume a container whose init is
    /// visible as pid 1).
    pub probe: &'static str,
    /// Handler function as `module::function`, relative to
    /// [`crate::render`].
    pub handler: &'static str,
    /// The hand-written buffer-writing fast-path renderer used by
    /// [`PseudoFs::read_into`](crate::PseudoFs::read_into), if one exists.
    pub fast_into: Option<&'static str>,
}

const fn route(pattern: &'static str, probe: &'static str, handler: &'static str) -> Route {
    Route {
        pattern,
        probe,
        handler,
        fast_into: None,
    }
}

const fn fast(
    pattern: &'static str,
    probe: &'static str,
    handler: &'static str,
    into: &'static str,
) -> Route {
    Route {
        pattern,
        probe,
        handler,
        fast_into: Some(into),
    }
}

/// Every dispatch arm of the modeled tree, exact patterns before globs
/// (lookup is first-match-wins, mirroring the `match` order in `fs.rs`).
pub const ROUTES: &[Route] = &[
    // ---- exact /proc arms ----
    route("/proc/cpuinfo", "/proc/cpuinfo", "proc_basic::cpuinfo"),
    fast(
        "/proc/meminfo",
        "/proc/meminfo",
        "proc_basic::meminfo",
        "proc_basic::meminfo_into",
    ),
    fast(
        "/proc/stat",
        "/proc/stat",
        "proc_basic::stat",
        "proc_basic::stat_into",
    ),
    fast(
        "/proc/uptime",
        "/proc/uptime",
        "proc_basic::uptime",
        "proc_basic::uptime_into",
    ),
    route("/proc/version", "/proc/version", "proc_basic::version"),
    fast(
        "/proc/loadavg",
        "/proc/loadavg",
        "proc_basic::loadavg",
        "proc_basic::loadavg_into",
    ),
    fast(
        "/proc/interrupts",
        "/proc/interrupts",
        "proc_irq::interrupts",
        "proc_irq::interrupts_into",
    ),
    fast(
        "/proc/softirqs",
        "/proc/softirqs",
        "proc_irq::softirqs",
        "proc_irq::softirqs_into",
    ),
    fast(
        "/proc/schedstat",
        "/proc/schedstat",
        "proc_sched::schedstat",
        "proc_sched::schedstat_into",
    ),
    fast(
        "/proc/sched_debug",
        "/proc/sched_debug",
        "proc_sched::sched_debug",
        "proc_sched::sched_debug_into",
    ),
    fast(
        "/proc/timer_list",
        "/proc/timer_list",
        "proc_sched::timer_list",
        "proc_sched::timer_list_into",
    ),
    route("/proc/locks", "/proc/locks", "proc_sched::locks"),
    route("/proc/modules", "/proc/modules", "proc_misc::modules"),
    route("/proc/zoneinfo", "/proc/zoneinfo", "proc_misc::zoneinfo"),
    route("/proc/diskstats", "/proc/diskstats", "proc_misc::diskstats"),
    route(
        "/proc/sys/fs/dentry-state",
        "/proc/sys/fs/dentry-state",
        "proc_kernel::dentry_state",
    ),
    route(
        "/proc/sys/fs/inode-nr",
        "/proc/sys/fs/inode-nr",
        "proc_kernel::inode_nr",
    ),
    route(
        "/proc/sys/fs/file-nr",
        "/proc/sys/fs/file-nr",
        "proc_kernel::file_nr",
    ),
    route(
        "/proc/sys/kernel/random/boot_id",
        "/proc/sys/kernel/random/boot_id",
        "proc_kernel::boot_id",
    ),
    route(
        "/proc/sys/kernel/random/entropy_avail",
        "/proc/sys/kernel/random/entropy_avail",
        "proc_kernel::entropy_avail",
    ),
    route(
        "/proc/sys/kernel/random/uuid",
        "/proc/sys/kernel/random/uuid",
        "proc_kernel::uuid",
    ),
    route(
        "/proc/sys/kernel/hostname",
        "/proc/sys/kernel/hostname",
        "proc_kernel::hostname",
    ),
    route(
        "/proc/sys/kernel/osrelease",
        "/proc/sys/kernel/osrelease",
        "proc_kernel::osrelease",
    ),
    route(
        "/proc/self/status",
        "/proc/self/status",
        "proc_pid::self_status",
    ),
    route(
        "/proc/self/cgroup",
        "/proc/self/cgroup",
        "proc_pid::self_cgroup",
    ),
    route("/proc/net/dev", "/proc/net/dev", "proc_pid::net_dev"),
    route("/proc/mounts", "/proc/mounts", "proc_pid::mounts"),
    route("/proc/net/snmp", "/proc/net/snmp", "proc_pid::net_snmp"),
    route("/proc/net/tcp", "/proc/net/tcp", "proc_pid::net_tcp"),
    route(
        "/proc/sys/kernel/pid_max",
        "/proc/sys/kernel/pid_max",
        "proc_kernel::pid_max",
    ),
    route(
        "/proc/sys/kernel/threads-max",
        "/proc/sys/kernel/threads-max",
        "proc_kernel::threads_max",
    ),
    route(
        "/proc/sys/vm/overcommit_memory",
        "/proc/sys/vm/overcommit_memory",
        "proc_kernel::overcommit_memory",
    ),
    route(
        "/proc/sys/vm/swappiness",
        "/proc/sys/vm/swappiness",
        "proc_kernel::swappiness",
    ),
    route("/proc/vmstat", "/proc/vmstat", "proc_vm::vmstat"),
    route("/proc/slabinfo", "/proc/slabinfo", "proc_vm::slabinfo"),
    route("/proc/buddyinfo", "/proc/buddyinfo", "proc_vm::buddyinfo"),
    route("/proc/swaps", "/proc/swaps", "proc_vm::swaps"),
    route(
        "/proc/partitions",
        "/proc/partitions",
        "proc_vm::partitions",
    ),
    route(
        "/proc/filesystems",
        "/proc/filesystems",
        "proc_vm::filesystems",
    ),
    route("/proc/cgroups", "/proc/cgroups", "proc_vm::cgroups"),
    // ---- exact /sys arms ----
    route(
        "/sys/devices/system/cpu/online",
        "/sys/devices/system/cpu/online",
        "sys_power::cpu_online",
    ),
    route(
        "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
        "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
        "sys_cgroup::ifpriomap",
    ),
    route(
        "/sys/fs/cgroup/net_prio/net_prio.prioidx",
        "/sys/fs/cgroup/net_prio/net_prio.prioidx",
        "sys_cgroup::prioidx",
    ),
    route(
        "/sys/fs/cgroup/cpuacct/cpuacct.usage",
        "/sys/fs/cgroup/cpuacct/cpuacct.usage",
        "sys_cgroup::cpuacct_usage",
    ),
    route(
        "/sys/fs/cgroup/cpuacct/cpuacct.usage_percpu",
        "/sys/fs/cgroup/cpuacct/cpuacct.usage_percpu",
        "sys_cgroup::cpuacct_usage_percpu",
    ),
    route(
        "/sys/fs/cgroup/memory/memory.usage_in_bytes",
        "/sys/fs/cgroup/memory/memory.usage_in_bytes",
        "sys_cgroup::memory_usage",
    ),
    route(
        "/sys/fs/cgroup/memory/memory.max_usage_in_bytes",
        "/sys/fs/cgroup/memory/memory.max_usage_in_bytes",
        "sys_cgroup::memory_max_usage",
    ),
    // ---- parameterized arms (segment globs) ----
    route(
        "/proc/sys/kernel/sched_domain/cpu*/domain0/max_newidle_lb_cost",
        "/proc/sys/kernel/sched_domain/cpu0/domain0/max_newidle_lb_cost",
        "proc_kernel::max_newidle_lb_cost",
    ),
    route(
        "/proc/fs/ext4/*/mb_groups",
        "/proc/fs/ext4/sda1/mb_groups",
        "proc_misc::mb_groups",
    ),
    route("/proc/*/status", "/proc/1/status", "proc_pid::pid_status"),
    route("/proc/*/stat", "/proc/1/stat", "proc_pid::pid_stat"),
    route(
        "/proc/*/cmdline",
        "/proc/1/cmdline",
        "proc_pid::pid_cmdline",
    ),
    route("/proc/*/io", "/proc/1/io", "proc_pid::pid_io"),
    route("/proc/*/sched", "/proc/1/sched", "proc_pid::pid_sched"),
    route(
        "/sys/block/*/stat",
        "/sys/block/sda/stat",
        "sys_power::block_stat",
    ),
    route(
        "/sys/class/thermal/thermal_zone*/temp",
        "/sys/class/thermal/thermal_zone0/temp",
        "sys_power::thermal_zone_temp",
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpufreq/scaling_cur_freq",
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq",
        "sys_power::cpufreq_cur",
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpufreq/cpuinfo_max_freq",
        "/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq",
        "sys_power::cpufreq_max",
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/name",
        "/sys/devices/system/cpu/cpu0/cpuidle/state0/name",
        "sys_power::cpuidle_name",
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/usage",
        "/sys/devices/system/cpu/cpu0/cpuidle/state0/usage",
        "sys_power::cpuidle_usage",
    ),
    route(
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/time",
        "/sys/devices/system/cpu/cpu0/cpuidle/state0/time",
        "sys_power::cpuidle_time",
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/name",
        "/sys/class/powercap/intel-rapl:0/name",
        "sys_power::rapl_name",
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/energy_uj",
        "/sys/class/powercap/intel-rapl:0/energy_uj",
        "sys_power::rapl_package_energy",
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/max_energy_range_uj",
        "/sys/class/powercap/intel-rapl:0/max_energy_range_uj",
        "sys_power::rapl_max_range",
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/intel-rapl:*/name",
        "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/name",
        "sys_power::rapl_subdomain_name",
    ),
    route(
        "/sys/class/powercap/intel-rapl:*/intel-rapl:*/energy_uj",
        "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/energy_uj",
        "sys_power::rapl_subdomain_energy",
    ),
    route(
        "/sys/devices/platform/coretemp.*/hwmon/hwmon*/temp*_input",
        "/sys/devices/platform/coretemp.0/hwmon/hwmon0/temp1_input",
        "sys_power::coretemp",
    ),
    route(
        "/sys/devices/system/node/node*/numastat",
        "/sys/devices/system/node/node0/numastat",
        "sys_node::numastat",
    ),
    route(
        "/sys/devices/system/node/node*/vmstat",
        "/sys/devices/system/node/node0/vmstat",
        "sys_node::vmstat",
    ),
    route(
        "/sys/devices/system/node/node*/meminfo",
        "/sys/devices/system/node/node0/meminfo",
        "sys_node::node_meminfo",
    ),
];

/// The route serving `path`, if any (first match wins, mirroring
/// dispatch order: exact arms shadow the pid globs for `/proc/self/*`).
pub fn route_for(path: &str) -> Option<&'static Route> {
    ROUTES.iter().find(|r| glob_match(r.pattern, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;
    use crate::PseudoFs;
    use simkernel::kernel::ProcessSpec;
    use simkernel::{Kernel, MachineConfig};
    use workloads::models;

    fn kernel() -> (Kernel, View) {
        let mut k = Kernel::new(MachineConfig::testbed_i7_6700(), 11);
        let env = k.create_container_env("c1").unwrap();
        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(2);
        let view = View::container(env.ns, env.cgroups);
        (k, view)
    }

    #[test]
    fn every_probe_matches_its_own_pattern_and_renders() {
        let (k, container) = kernel();
        let fs = PseudoFs::new();
        let host = View::host();
        for r in ROUTES {
            assert!(
                glob_match(r.pattern, r.probe),
                "probe {} does not match pattern {}",
                r.probe,
                r.pattern
            );
            assert_eq!(
                route_for(r.probe).map(|m| m.handler),
                Some(r.handler),
                "probe {} resolves to a different route",
                r.probe
            );
            // Numeric pid probes use ns pids, which only resolve inside the
            // container's pid namespace (host pids start at 300).
            let view = if r.pattern.starts_with("/proc/*/") {
                &container
            } else {
                &host
            };
            fs.read(&k, view, r.probe)
                .unwrap_or_else(|e| panic!("probe {} unreadable: {e}", r.probe));
        }
    }

    #[test]
    fn every_listed_path_is_routed() {
        let (k, container) = kernel();
        let fs = PseudoFs::new();
        for view in [View::host(), container] {
            for path in fs.list(&k, &view) {
                assert!(route_for(&path).is_some(), "unrouted path {path}");
            }
        }
    }

    #[test]
    fn handlers_are_unique_and_patterns_do_not_duplicate() {
        let mut handlers: Vec<&str> = ROUTES.iter().map(|r| r.handler).collect();
        handlers.sort_unstable();
        let n = handlers.len();
        handlers.dedup();
        assert_eq!(n, handlers.len(), "duplicate handler entries");
        let mut patterns: Vec<&str> = ROUTES.iter().map(|r| r.pattern).collect();
        patterns.sort_unstable();
        let n = patterns.len();
        patterns.dedup();
        assert_eq!(n, patterns.len(), "duplicate patterns");
    }

    #[test]
    fn fast_paths_cover_exactly_the_hand_written_into_renderers() {
        let fast: Vec<&str> = ROUTES.iter().filter_map(|r| r.fast_into).collect();
        assert_eq!(fast.len(), 9, "nine hand-written _into fast paths");
        for f in &fast {
            assert!(f.ends_with("_into"), "{f}");
        }
    }

    #[test]
    fn self_paths_resolve_to_self_handlers_not_pid_globs() {
        assert_eq!(
            route_for("/proc/self/status").unwrap().handler,
            "proc_pid::self_status"
        );
        assert_eq!(
            route_for("/proc/7/status").unwrap().handler,
            "proc_pid::pid_status"
        );
        assert!(route_for("/proc/does_not_exist").is_none());
    }
}
