//! Read-path fault effects: translating the kernel's active fault windows
//! into observable pseudo-file behavior.
//!
//! Two rules keep injection honest:
//!
//! 1. **Errors, not fabrication.** A transient fault makes the read *fail*
//!    ([`FsError::Io`] / [`FsError::Truncated`]); it never returns made-up
//!    bytes a detector could mistake for real state.
//! 2. **Observations, not ground truth.** Sensor distortion (thermal
//!    saturation, energy quantization, uptime skew) rewrites the rendered
//!    string only; the kernel's underlying counters are untouched, so
//!    un-faulted readers and later reads see consistent state.

use simkernel::{is_sensor_path, FsFaultKind, Kernel, SensorFaultKind};
use simtrace::TraceEvent;

use crate::error::FsError;

/// coretemp's saturation ceiling (TjMax), milli-degrees Celsius.
const DTS_SATURATION_MC: u64 = 100_000;

/// Quantization step applied to energy counters under jitter: the RAPL
/// energy-status LSB coarsened to 2^16 µJ, the firmware-truncation case.
const ENERGY_QUANTUM_UJ: u64 = 65_536;

/// The injected error for `path` at this instant, if a fault window is
/// active and selects it.
pub(crate) fn injected_error(k: &Kernel, path: &str) -> Option<FsError> {
    let kind = k.read_fault(path)?;
    if simtrace::enabled() {
        // An EIO on a sensor channel is sensor dropout by construction
        // (the plan surfaces dropout windows through the read-fault
        // query); on any other path it is a plain transient fs fault.
        let (class, counter) = match kind {
            FsFaultKind::Eio if is_sensor_path(path) => {
                ("sensor.dropout", "faults.injected.sensor.dropout")
            }
            FsFaultKind::Eio => ("fs.eio", "faults.injected.fs.eio"),
            FsFaultKind::ShortRead => ("fs.short_read", "faults.injected.fs.short_read"),
        };
        simtrace::counters::add(counter, 1);
        if let Some(tr) = k.tracer() {
            tr.emit(
                k.lifetime_ns(),
                TraceEvent::FaultInjected {
                    class,
                    path: path.to_string(),
                },
            );
        }
    }
    Some(match kind {
        FsFaultKind::Eio => FsError::Io(path.to_string()),
        FsFaultKind::ShortRead => FsError::Truncated(path.to_string()),
    })
}

/// Records a value-level sensor distortion for the trace.
fn note_distortion(k: &Kernel, class: &'static str, counter: &'static str, path: &str) {
    if !simtrace::enabled() {
        return;
    }
    simtrace::counters::add(counter, 1);
    if let Some(tr) = k.tracer() {
        tr.emit(
            k.lifetime_ns(),
            TraceEvent::SensorDistorted {
                class,
                path: path.to_string(),
            },
        );
    }
}

/// Applies value-level sensor distortion and clock skew to a successfully
/// rendered `buf`. No-op outside fault windows and on unaffected paths.
pub(crate) fn distort(k: &Kernel, path: &str, buf: &mut String) {
    match k.sensor_fault(path) {
        Some(SensorFaultKind::Saturation) => {
            buf.clear();
            buf.push_str("100000\n");
            debug_assert_eq!(buf.trim().parse::<u64>(), Ok(DTS_SATURATION_MC));
            note_distortion(
                k,
                "sensor.saturation",
                "faults.injected.sensor.saturation",
                path,
            );
        }
        Some(SensorFaultKind::QuantizationJitter) => {
            if let Ok(v) = buf.trim().parse::<u64>() {
                buf.clear();
                buf.push_str(&(v - v % ENERGY_QUANTUM_UJ).to_string());
                buf.push('\n');
                note_distortion(
                    k,
                    "sensor.quantization",
                    "faults.injected.sensor.quantization",
                    path,
                );
            }
        }
        Some(SensorFaultKind::Dropout) | None => {}
    }
    if path == "/proc/uptime" {
        let skew_ns = k.uptime_skew_ns();
        if skew_ns != 0 {
            if simtrace::enabled() {
                simtrace::counters::add("faults.injected.clock.skew", 1);
                if let Some(tr) = k.tracer() {
                    tr.emit(k.lifetime_ns(), TraceEvent::ClockSkewObserved { skew_ns });
                }
            }
            skew_uptime(buf, skew_ns);
        }
    }
}

/// Shifts the uptime field (first column) of a rendered `/proc/uptime` by
/// `skew_ns`, clamping at zero; the idle column is left alone.
fn skew_uptime(buf: &mut String, skew_ns: i64) {
    let mut parts = buf.split_whitespace();
    let (Some(up), Some(idle)) = (parts.next(), parts.next()) else {
        return;
    };
    let Ok(up) = up.parse::<f64>() else { return };
    let skewed = (up + skew_ns as f64 / 1e9).max(0.0);
    *buf = format!("{skewed:.2} {idle}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_shifts_only_the_uptime_field() {
        let mut s = String::from("100.00 350.25\n");
        skew_uptime(&mut s, 1_500_000_000);
        assert_eq!(s, "101.50 350.25\n");
        skew_uptime(&mut s, -200 * 1_000_000_000);
        assert_eq!(s, "0.00 350.25\n", "uptime clamps at zero");
    }

    #[test]
    fn skew_leaves_malformed_content_alone() {
        let mut s = String::from("not-a-number\n");
        skew_uptime(&mut s, 1_000_000_000);
        assert_eq!(s, "not-a-number\n");
    }
}
