//! Simulated `procfs`/`sysfs`: the pseudo-file layer containers read.
//!
//! Linux exposes kernel state to user space through memory-based pseudo
//! file systems; container runtimes mount `/proc` and `/sys` (read-only)
//! into every container. The ContainerLeaks paper's observation is that
//! each pseudo-file's *handler* decides whether to consult the caller's
//! namespaces — and many don't, leaking host-global state.
//!
//! This crate reproduces that architecture faithfully:
//!
//! * A [`View`] captures *who is reading*: the host, or a container with a
//!   namespace set, cgroup membership, and a cloud provider's
//!   [`MaskPolicy`].
//! * [`PseudoFs::read`] dispatches a path to its handler. Handlers for the
//!   channels in the paper's Table I deliberately ignore the view's
//!   namespaces (reading global kernel state), while control files like
//!   `/proc/self/status`, `/proc/net/dev`, or `/proc/sys/kernel/hostname`
//!   are properly namespaced — giving the cross-validation detector both
//!   classes to discriminate.
//! * [`PseudoFs::list`] enumerates every readable path for a view, which
//!   is what the paper's recursive-exploration tool walks.
//!
//! # Example
//!
//! ```
//! use pseudofs::{PseudoFs, View};
//! use simkernel::{Kernel, MachineConfig};
//!
//! let mut k = Kernel::new(MachineConfig::small_server(), 1);
//! k.advance_secs(2);
//! let fs = PseudoFs::new();
//! let host = View::host();
//! let uptime = fs.read(&k, &host, "/proc/uptime")?;
//! assert!(uptime.starts_with("2."));
//! # Ok::<(), pseudofs::FsError>(())
//! ```

pub mod error;
mod faultfx;
pub mod fs;
pub mod registry;
pub mod render;
pub mod view;

pub use error::FsError;
pub use fs::{PseudoFs, ReadStatus, LIST_DEPS};
pub use registry::{changed_mask_deps, route_for, Route, ROUTES};
pub use view::{glob_match, Context, MaskAction, MaskPolicy, MaskRule, View};
