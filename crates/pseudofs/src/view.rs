//! Read contexts and masking policies.

use serde::{Deserialize, Serialize};
use simkernel::process::CgroupMembership;
use simkernel::NamespaceSet;

/// Who is performing the read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Context {
    /// A process in the initial namespaces (the host).
    Host,
    /// A containerized process.
    Container {
        /// The container's namespace set.
        ns: NamespaceSet,
        /// The container's cgroup membership.
        cgroups: CgroupMembership,
    },
}

/// What a matching mask rule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaskAction {
    /// Read fails with permission denied; the path also disappears from
    /// directory listings (bind-mounted unreadable / AppArmor denial).
    Deny,
    /// The handler restricts output to the container's allotment
    /// (the `◐` cells of Table I: CC5 shows only the tenant's cores and
    /// memory). Which fields are restricted is handler-specific.
    Partial,
}

/// One masking rule: a glob pattern over absolute paths plus an action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaskRule {
    /// Glob pattern (`*` matches within a segment, `**` as the final
    /// segment matches any suffix).
    pub pattern: String,
    /// What to do on match.
    pub action: MaskAction,
}

/// A cloud provider's channel-masking policy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaskPolicy {
    rules: Vec<MaskRule>,
}

impl MaskPolicy {
    /// The empty policy (local Docker/LXC default: nothing masked).
    pub fn none() -> Self {
        MaskPolicy::default()
    }

    /// Builds a policy from rules.
    pub fn from_rules(rules: Vec<MaskRule>) -> Self {
        MaskPolicy { rules }
    }

    /// Adds a deny rule.
    pub fn deny(mut self, pattern: impl Into<String>) -> Self {
        self.rules.push(MaskRule {
            pattern: pattern.into(),
            action: MaskAction::Deny,
        });
        self
    }

    /// Adds a partial-filter rule.
    pub fn partial(mut self, pattern: impl Into<String>) -> Self {
        self.rules.push(MaskRule {
            pattern: pattern.into(),
            action: MaskAction::Partial,
        });
        self
    }

    /// The rules.
    pub fn rules(&self) -> &[MaskRule] {
        &self.rules
    }

    /// The action applying to `path`, if any rule matches (first match
    /// wins).
    pub fn action_for(&self, path: &str) -> Option<MaskAction> {
        self.rules
            .iter()
            .find(|r| glob_match(&r.pattern, path))
            .map(|r| r.action)
    }
}

/// Matches a glob `pattern` against an absolute `path`.
///
/// Semantics: both are split on `/`; a `**` segment (only meaningful as the
/// final segment) matches any remaining suffix including none; a `*` within
/// a segment matches any run of characters in that segment.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.trim_start_matches('/').split('/').collect();
    let segs: Vec<&str> = path.trim_start_matches('/').split('/').collect();
    let mut i = 0;
    for (pi, p) in pat.iter().enumerate() {
        if *p == "**" {
            // `**` must be last; matches everything remaining.
            return pi == pat.len() - 1;
        }
        match segs.get(i) {
            Some(s) if segment_match(p, s) => i += 1,
            _ => return false,
        }
    }
    i == segs.len()
}

fn segment_match(pat: &str, seg: &str) -> bool {
    // Simple star matcher within one segment.
    let mut parts = pat.split('*').peekable();
    let mut rest = seg;
    let mut first = true;
    let ends_with_star = pat.ends_with('*');
    while let Some(part) = parts.next() {
        if part.is_empty() {
            first = false;
            continue;
        }
        match rest.find(part) {
            Some(idx) => {
                if first && idx != 0 {
                    return false;
                }
                rest = &rest[idx + part.len()..];
            }
            None => return false,
        }
        if parts.peek().is_none() && !ends_with_star && !rest.is_empty() {
            return false;
        }
        first = false;
    }
    true
}

/// A complete read context: who reads, under what policy, with what
/// resource allotment (used by `Partial` filters).
#[derive(Debug, Clone)]
pub struct View {
    /// The reading context.
    pub context: Context,
    /// The masking policy in force (empty for local testbeds).
    pub policy: MaskPolicy,
    /// CPUs allotted to the container (Partial `cpuinfo` shows only these).
    pub allotted_cpus: Option<Vec<u16>>,
    /// Memory limit of the container (Partial `meminfo` reports this).
    pub mem_limit_bytes: Option<u64>,
}

impl View {
    /// The host view: no masking, full visibility.
    pub fn host() -> Self {
        View {
            context: Context::Host,
            policy: MaskPolicy::none(),
            allotted_cpus: None,
            mem_limit_bytes: None,
        }
    }

    /// A container view with no cloud masking (local Docker default).
    pub fn container(ns: NamespaceSet, cgroups: CgroupMembership) -> Self {
        View {
            context: Context::Container { ns, cgroups },
            policy: MaskPolicy::none(),
            allotted_cpus: None,
            mem_limit_bytes: None,
        }
    }

    /// Applies a masking policy.
    #[must_use]
    pub fn with_policy(mut self, policy: MaskPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the CPU allotment consulted by Partial filters.
    #[must_use]
    pub fn with_allotted_cpus(mut self, cpus: Vec<u16>) -> Self {
        self.allotted_cpus = Some(cpus);
        self
    }

    /// Sets the memory limit consulted by Partial filters.
    #[must_use]
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.mem_limit_bytes = Some(bytes);
        self
    }

    /// Whether this is the host context.
    pub fn is_host(&self) -> bool {
        matches!(self.context, Context::Host)
    }

    /// The action the policy prescribes for `path` (host views are never
    /// masked).
    pub fn mask_action(&self, path: &str) -> Option<MaskAction> {
        if self.is_host() {
            None
        } else {
            self.policy.action_for(path)
        }
    }

    /// A fingerprint over everything that can change what this view
    /// reads: context (with the full namespace and cgroup identity),
    /// policy rules, and resource allotments. The render cache keys
    /// entries on this, so two views alias only when every read through
    /// them is guaranteed byte-identical. Computed per call — the fields
    /// are public and mutable, so memoizing would be unsound.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over strings; whole-word rounds for integer fields.
        // This runs on every cached read, so the word mix folds a full
        // u64 per multiply instead of FNV's byte-at-a-time loop — the
        // xor-then-odd-multiply round is bijective on u64, so views
        // differing in any single field can never collide.
        fn mix(h: &mut u64, bytes: &[u8]) {
            for b in bytes {
                *h ^= u64::from(*b);
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        fn mix_u64(h: &mut u64, v: u64) {
            *h ^= v;
            *h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        match &self.context {
            Context::Host => mix(&mut h, &[0]),
            Context::Container { ns, cgroups } => {
                mix(&mut h, &[1]);
                for id in [ns.mnt, ns.uts, ns.pid, ns.net, ns.ipc, ns.user, ns.cgroup] {
                    mix_u64(&mut h, u64::from(id.0));
                }
                for id in [
                    cgroups.cpuacct,
                    cgroups.perf_event,
                    cgroups.net_prio,
                    cgroups.memory,
                ] {
                    mix_u64(&mut h, u64::from(id.0));
                }
            }
        }
        match &self.allotted_cpus {
            None => mix_u64(&mut h, u64::MAX),
            Some(cpus) => {
                mix_u64(&mut h, cpus.len() as u64);
                for c in cpus {
                    mix_u64(&mut h, u64::from(*c));
                }
            }
        }
        mix_u64(&mut h, self.mem_limit_bytes.map_or(u64::MAX, |b| b ^ 1));
        mix_u64(&mut h, self.policy.rules.len() as u64);
        for rule in &self.policy.rules {
            mix(&mut h, rule.pattern.as_bytes());
            mix(
                &mut h,
                &[match rule.action {
                    MaskAction::Deny => 2,
                    MaskAction::Partial => 3,
                }],
            );
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_exact_and_star() {
        assert!(glob_match("/proc/stat", "/proc/stat"));
        assert!(!glob_match("/proc/stat", "/proc/statm"));
        assert!(glob_match("/proc/*", "/proc/stat"));
        assert!(!glob_match("/proc/*", "/proc/sys/kernel"));
        assert!(glob_match(
            "/proc/sys/**",
            "/proc/sys/kernel/random/boot_id"
        ));
        assert!(glob_match(
            "/sys/class/powercap/**",
            "/sys/class/powercap/intel-rapl:0/energy_uj"
        ));
        assert!(!glob_match("/sys/class/powercap/**", "/sys/class/net/eth0"));
    }

    #[test]
    fn glob_within_segment() {
        assert!(glob_match("/proc/timer*", "/proc/timer_list"));
        assert!(glob_match(
            "/sys/devices/system/cpu/cpu*/cpuidle/state*/usage",
            "/sys/devices/system/cpu/cpu3/cpuidle/state2/usage"
        ));
        assert!(!glob_match("/proc/timer*", "/proc/uptime"));
        assert!(glob_match("veth*", "veth1a2b3c"));
        assert!(!glob_match("veth*x", "veth1a2b3c"));
        assert!(glob_match("*rapl*", "intel-rapl:0"));
    }

    #[test]
    fn policy_first_match_wins() {
        let p = MaskPolicy::none().partial("/proc/cpuinfo").deny("/proc/*");
        assert_eq!(p.action_for("/proc/cpuinfo"), Some(MaskAction::Partial));
        assert_eq!(p.action_for("/proc/stat"), Some(MaskAction::Deny));
        assert_eq!(p.action_for("/sys/foo"), None);
    }

    #[test]
    fn host_views_bypass_masking() {
        let mut v = View::host();
        v.policy = MaskPolicy::none().deny("/proc/**");
        assert_eq!(v.mask_action("/proc/stat"), None);
    }

    #[test]
    fn fingerprint_distinguishes_policy_and_allotment() {
        let a = View::host();
        assert_eq!(a.fingerprint(), View::host().fingerprint());
        let b = View::host().with_policy(MaskPolicy::none().deny("/proc/**"));
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = View::host().with_mem_limit(1 << 30);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = View::host().with_allotted_cpus(vec![0, 1]);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn builders_compose() {
        let v = View::host()
            .with_allotted_cpus(vec![0, 1])
            .with_mem_limit(1 << 30);
        assert_eq!(v.allotted_cpus.as_deref(), Some(&[0u16, 1][..]));
        assert_eq!(v.mem_limit_bytes, Some(1 << 30));
    }
}
