//! `/sys/devices/system/node/node{N}/{numastat,vmstat,meminfo}`.
//!
//! All three are host-global NUMA views — Table II channels (numastat is
//! in the uniqueness group; vmstat/meminfo in the variation group).

use simkernel::mem::PAGE_SIZE;
use simkernel::Kernel;

use crate::view::View;

/// `/sys/devices/system/node/node{n}/numastat`. LEAK (Table II).
pub fn numastat(k: &Kernel, _view: &View, node: usize) -> Option<String> {
    let s = k.mem().numa_stats().get(node)?;
    Some(format!(
        "numa_hit {}\nnuma_miss {}\nnuma_foreign {}\ninterleave_hit {}\nlocal_node {}\nother_node {}\n",
        s.numa_hit, s.numa_miss, s.numa_foreign, s.interleave_hit, s.local_node, s.other_node,
    ))
}

/// `/sys/devices/system/node/node{n}/vmstat`. LEAK (Table II).
pub fn vmstat(k: &Kernel, _view: &View, node: usize) -> Option<String> {
    if node >= k.mem().numa_nodes() as usize {
        return None;
    }
    let (total, free) = k.mem().node_mem(node as u16);
    Some(format!(
        "nr_free_pages {}\nnr_alloc_batch {}\nnr_inactive_anon {}\nnr_active_anon {}\nnr_file_pages {}\n",
        free / PAGE_SIZE,
        32,
        (total - free) / PAGE_SIZE / 4,
        (total - free) / PAGE_SIZE / 3,
        k.mem().cached_bytes() / PAGE_SIZE / u64::from(k.mem().numa_nodes()),
    ))
}

/// `/sys/devices/system/node/node{n}/meminfo`. LEAK (Table II).
pub fn node_meminfo(k: &Kernel, _view: &View, node: usize) -> Option<String> {
    if node >= k.mem().numa_nodes() as usize {
        return None;
    }
    let (total, free) = k.mem().node_mem(node as u16);
    Some(format!(
        "Node {node} MemTotal:       {:>8} kB\n\
         Node {node} MemFree:        {:>8} kB\n\
         Node {node} MemUsed:        {:>8} kB\n\
         Node {node} Active:         {:>8} kB\n\
         Node {node} Inactive:       {:>8} kB\n",
        total / 1024,
        free / 1024,
        (total - free) / 1024,
        (total - free) / 1024 / 2,
        (total - free) / 1024 / 3,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::MachineConfig;

    #[test]
    fn two_node_server_renders_both() {
        let mut k = Kernel::new(MachineConfig::cloud_server(), 7);
        k.advance_secs(2);
        for n in 0..2 {
            assert!(numastat(&k, &View::host(), n).unwrap().contains("numa_hit"));
            assert!(vmstat(&k, &View::host(), n)
                .unwrap()
                .contains("nr_free_pages"));
            assert!(node_meminfo(&k, &View::host(), n)
                .unwrap()
                .contains(&format!("Node {n} MemTotal")));
        }
        assert!(numastat(&k, &View::host(), 2).is_none());
        assert!(vmstat(&k, &View::host(), 2).is_none());
        assert!(node_meminfo(&k, &View::host(), 2).is_none());
    }

    #[test]
    fn node_free_consistent_with_global() {
        let mut k = Kernel::new(MachineConfig::cloud_server(), 7);
        k.advance_secs(1);
        let parse_free = |s: String| -> u64 {
            s.lines()
                .find(|l| l.contains("MemFree"))
                .unwrap()
                .split_whitespace()
                .nth(3)
                .unwrap()
                .parse()
                .unwrap()
        };
        let f0 = parse_free(node_meminfo(&k, &View::host(), 0).unwrap());
        let f1 = parse_free(node_meminfo(&k, &View::host(), 1).unwrap());
        let global_kb = k.mem().free_bytes() / 1024;
        let sum = f0 + f1;
        let diff = (sum as i64 - global_kb as i64).unsigned_abs();
        assert!(
            diff < global_kb / 10,
            "node sum {sum} vs global {global_kb}"
        );
    }
}
