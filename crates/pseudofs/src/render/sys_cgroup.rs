//! cgroupfs files under `/sys/fs/cgroup/`.
//!
//! `net_prio.ifpriomap` is the paper's Case Study I: the kernel handler
//! (`read_priomap`) iterates `for_each_netdev_rcu(&init_net, ...)` — the
//! *host's* device list — regardless of the reader's NET namespace, so a
//! container reads every host interface name (including other containers'
//! unique veth devices). The cpuacct/memory files, by contrast, resolve
//! the reader's own cgroup and are properly contained.

use std::fmt::Write as _;

use simkernel::cgroup::{CgroupData, CgroupId, CgroupKind};
use simkernel::Kernel;

use crate::view::{Context, View};

fn viewer_cgroup(k: &Kernel, view: &View, kind: CgroupKind) -> CgroupId {
    match view.context {
        Context::Host => k.cgroups().root(kind),
        Context::Container { cgroups, .. } => match kind {
            CgroupKind::Cpuacct => cgroups.cpuacct,
            CgroupKind::PerfEvent => cgroups.perf_event,
            CgroupKind::NetPrio => cgroups.net_prio,
            CgroupKind::Memory => cgroups.memory,
        },
    }
}

/// `/sys/fs/cgroup/net_prio/net_prio.ifpriomap`. LEAK (Table II rank 2,
/// uniqueness group): renders priorities for *all host interfaces* — the
/// handler walks `init_net`'s device list, ignoring the reader's NET
/// namespace. Because every container adds a randomized `veth*` device to
/// the host, the full list uniquely fingerprints the host.
pub fn ifpriomap(k: &Kernel, view: &View) -> String {
    let cg = viewer_cgroup(k, view, CgroupKind::NetPrio);
    let mut out = String::new();
    // The bug reproduced: iterate the HOST device list (init_net), looking
    // up each device's priority in the reader's cgroup map.
    for dev in k.net().devices() {
        let prio = match k.cgroups().node(cg).map(|n| n.data()) {
            Some(CgroupData::NetPrio { ifpriomap }) => {
                ifpriomap.get(&dev.name).copied().unwrap_or(0)
            }
            _ => 0,
        };
        let _ = writeln!(out, "{} {prio}", dev.name);
    }
    out
}

/// `/sys/fs/cgroup/net_prio/net_prio.prioidx`.
pub fn prioidx(k: &Kernel, view: &View) -> String {
    format!("{}\n", viewer_cgroup(k, view, CgroupKind::NetPrio).0)
}

/// `/sys/fs/cgroup/cpuacct/cpuacct.usage`: properly scoped — the reader
/// sees its own cgroup's accumulated CPU time (control file).
pub fn cpuacct_usage(k: &Kernel, view: &View) -> String {
    let cg = viewer_cgroup(k, view, CgroupKind::Cpuacct);
    format!("{}\n", k.cgroups().cpuacct_usage_ns(cg).unwrap_or(0))
}

/// `/sys/fs/cgroup/cpuacct/cpuacct.usage_percpu`: per-CPU breakdown of the
/// reader's own cgroup (control file; also the defense's data source).
pub fn cpuacct_usage_percpu(k: &Kernel, view: &View) -> String {
    let cg = viewer_cgroup(k, view, CgroupKind::Cpuacct);
    let vals = k.cgroups().cpuacct_usage_percpu(cg).unwrap_or(&[]);
    let mut out = String::new();
    for v in vals {
        let _ = write!(out, "{v} ");
    }
    out.push('\n');
    out
}

/// `/sys/fs/cgroup/memory/memory.usage_in_bytes` (control file).
pub fn memory_usage(k: &Kernel, view: &View) -> String {
    let cg = viewer_cgroup(k, view, CgroupKind::Memory);
    let (usage, _) = k.cgroups().memory_usage(cg).unwrap_or((0, 0));
    format!("{usage}\n")
}

/// `/sys/fs/cgroup/memory/memory.max_usage_in_bytes` (control file).
pub fn memory_max_usage(k: &Kernel, view: &View) -> String {
    let cg = viewer_cgroup(k, view, CgroupKind::Memory);
    let (_, max) = k.cgroups().memory_usage(cg).unwrap_or((0, 0));
    format!("{max}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::kernel::ProcessSpec;
    use simkernel::MachineConfig;
    use workloads::models;

    fn setup() -> (Kernel, View, View) {
        let mut k = Kernel::new(MachineConfig::small_server(), 8);
        let env1 = k.create_container_env("c1").unwrap();
        let _env2 = k.create_container_env("c2").unwrap();
        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env1))
            .unwrap();
        k.advance_secs(2);
        let cont = View::container(env1.ns, env1.cgroups);
        (k, View::host(), cont)
    }

    #[test]
    fn ifpriomap_leaks_all_host_interfaces_to_containers() {
        let (k, host, cont) = setup();
        let h = ifpriomap(&k, &host);
        let c = ifpriomap(&k, &cont);
        // The container, despite its own NET namespace holding only
        // lo/eth0, reads the full host list — including both veths.
        assert_eq!(h, c, "handler ignores the NET namespace");
        assert!(c.contains("docker0"));
        assert_eq!(c.matches("veth").count(), 2);
    }

    #[test]
    fn cpuacct_usage_is_scoped_to_reader() {
        let (k, host, cont) = setup();
        let host_ns: u64 = cpuacct_usage(&k, &host).trim().parse().unwrap();
        let cont_ns: u64 = cpuacct_usage(&k, &cont).trim().parse().unwrap();
        assert!(host_ns >= cont_ns, "root aggregates all work");
        assert!(cont_ns > 1_000_000_000, "container did ~2s of work");
    }

    #[test]
    fn usage_percpu_has_ncpu_fields() {
        let (k, _, cont) = setup();
        let s = cpuacct_usage_percpu(&k, &cont);
        assert_eq!(s.split_whitespace().count(), 4);
    }

    #[test]
    fn memory_usage_scoped() {
        let (k, host, cont) = setup();
        let h: u64 = memory_usage(&k, &host).trim().parse().unwrap();
        let c: u64 = memory_usage(&k, &cont).trim().parse().unwrap();
        assert!(c > 0);
        assert!(h >= c);
        let max: u64 = memory_max_usage(&k, &cont).trim().parse().unwrap();
        assert!(max >= c);
    }
}
