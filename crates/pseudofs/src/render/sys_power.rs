//! Power and thermal sysfs trees: RAPL powercap, coretemp hwmon, cpuidle.
//!
//! The RAPL `energy_uj` files are the paper's Case Study II — the Intel
//! RAPL driver's `get_energy_counter` reads the host MSR with no namespace
//! awareness, handing every container the whole machine's energy counters.
//! This is the channel the synergistic power attack monitors and the one
//! the power-based namespace re-implements.

use simkernel::hw::{IDLE_STATE_NAMES, RAPL_WRAP_UJ};
use simkernel::Kernel;

use crate::view::View;

/// `/sys/class/powercap/intel-rapl:{pkg}/name` → `package-{pkg}`.
pub fn rapl_name(k: &Kernel, _view: &View, pkg: usize) -> Option<String> {
    if !k.rapl().is_present() || pkg >= k.rapl().package_count() {
        return None;
    }
    Some(format!("package-{pkg}\n"))
}

/// `/sys/class/powercap/intel-rapl:{pkg}/energy_uj`. LEAK (Table II):
/// host package energy counter in microjoules.
pub fn rapl_package_energy(k: &Kernel, _view: &View, pkg: usize) -> Option<String> {
    if !k.rapl().is_present() || pkg >= k.rapl().package_count() {
        return None;
    }
    Some(format!("{}\n", k.rapl().package_energy_uj(pkg)))
}

/// `/sys/class/powercap/intel-rapl:{pkg}/max_energy_range_uj`.
pub fn rapl_max_range(k: &Kernel, _view: &View, pkg: usize) -> Option<String> {
    if !k.rapl().is_present() || pkg >= k.rapl().package_count() {
        return None;
    }
    Some(format!("{RAPL_WRAP_UJ}\n"))
}

/// `/sys/class/powercap/intel-rapl:{pkg}:{dom}/name` → `core` / `dram`.
pub fn rapl_subdomain_name(k: &Kernel, _view: &View, pkg: usize, dom: usize) -> Option<String> {
    if !k.rapl().is_present() || pkg >= k.rapl().package_count() {
        return None;
    }
    match dom {
        0 => Some("core\n".into()),
        1 => Some("dram\n".into()),
        _ => None,
    }
}

/// `/sys/class/powercap/intel-rapl:{pkg}:{dom}/energy_uj`. LEAK: core and
/// DRAM domain counters.
pub fn rapl_subdomain_energy(k: &Kernel, _view: &View, pkg: usize, dom: usize) -> Option<String> {
    if !k.rapl().is_present() || pkg >= k.rapl().package_count() {
        return None;
    }
    match dom {
        0 => Some(format!("{}\n", k.rapl().core_energy_uj(pkg))),
        1 => Some(format!("{}\n", k.rapl().dram_energy_uj(pkg))),
        _ => None,
    }
}

/// `/sys/devices/platform/coretemp.{pkg}/hwmon/hwmon{pkg}/temp{n}_input`.
/// LEAK (Table II): per-core DTS temperature in millidegrees.
pub fn coretemp(k: &Kernel, _view: &View, pkg: usize, sensor: usize) -> Option<String> {
    if !k.hw().has_coretemp() {
        return None;
    }
    // temp1 is the package sensor; temp{2+} are cores of that package.
    let per_pkg = k.config().cpus_per_package() as usize;
    let base = pkg * per_pkg;
    if pkg >= k.rapl().package_count().max(1) || sensor == 0 || sensor > per_pkg + 1 {
        return None;
    }
    let t = if sensor == 1 {
        // Package sensor: max of its cores.
        (0..per_pkg)
            .filter_map(|c| k.hw().cpus().get(base + c))
            .map(|c| c.temp_mc)
            .fold(0.0f64, f64::max)
    } else {
        k.hw().cpus().get(base + sensor - 2)?.temp_mc
    };
    Some(format!("{}\n", (t / 1000.0).round() as i64 * 1000))
}

/// `/sys/devices/system/cpu/cpu{c}/cpuidle/state{s}/name`.
pub fn cpuidle_name(k: &Kernel, _view: &View, cpu: usize, state: usize) -> Option<String> {
    if cpu >= k.hw().cpus().len() || state >= IDLE_STATE_NAMES.len() {
        return None;
    }
    Some(format!("{}\n", IDLE_STATE_NAMES[state]))
}

/// `/sys/devices/system/cpu/cpu{c}/cpuidle/state{s}/usage`. LEAK
/// (Table II): per-CPU idle-state entry counts for the host.
pub fn cpuidle_usage(k: &Kernel, _view: &View, cpu: usize, state: usize) -> Option<String> {
    let s = k.hw().cpus().get(cpu)?.idle_states.get(state)?;
    Some(format!("{}\n", s.usage))
}

/// `/sys/devices/system/cpu/cpu{c}/cpuidle/state{s}/time`. LEAK
/// (Table II): microseconds the host CPU spent in the state.
pub fn cpuidle_time(k: &Kernel, _view: &View, cpu: usize, state: usize) -> Option<String> {
    let s = k.hw().cpus().get(cpu)?.idle_states.get(state)?;
    Some(format!("{}\n", s.time_us))
}

/// `/sys/devices/system/cpu/cpu{c}/cpufreq/scaling_cur_freq`. LEAK:
/// the core's current frequency in kHz races to turbo with host load —
/// yet another per-core activity channel.
pub fn cpufreq_cur(k: &Kernel, _view: &View, cpu: usize) -> Option<String> {
    k.hw()
        .cpus()
        .get(cpu)
        .map(|c| format!("{}\n", c.cur_freq_khz))
}

/// `/sys/devices/system/cpu/cpu{c}/cpufreq/cpuinfo_max_freq` (static).
pub fn cpufreq_max(k: &Kernel, _view: &View, cpu: usize) -> Option<String> {
    if cpu >= k.hw().cpus().len() {
        return None;
    }
    Some(format!("{}\n", k.config().freq_hz / 1_000 * 115 / 100))
}

/// `/sys/class/thermal/thermal_zone0/temp`. LEAK: package temperature in
/// millidegrees (the x86_pkg_temp zone).
pub fn thermal_zone_temp(k: &Kernel, _view: &View, zone: usize) -> Option<String> {
    if zone != 0 || !k.hw().has_coretemp() {
        return None;
    }
    let max = k
        .hw()
        .cpus()
        .iter()
        .map(|c| c.temp_mc)
        .fold(0.0f64, f64::max);
    Some(format!("{}\n", max as i64))
}

/// `/sys/block/{disk}/stat`. LEAK: host block-device IO counters.
pub fn block_stat(k: &Kernel, _view: &View, disk: &str) -> Option<String> {
    if !k.config().disks.iter().any(|(name, _)| name == disk) {
        return None;
    }
    let io = k.stats().total_io_bytes;
    let reads = io / 4096 / 3 + 11_000;
    let writes = io / 4096 * 2 / 3 + 7_000;
    Some(format!(
        "{reads:>8} {:>8} {:>8} {:>8} {writes:>8} {:>8} {:>8} {:>8} 0 {:>8} {:>8}\n",
        reads / 20,
        reads * 8,
        reads / 3,
        writes / 10,
        writes * 8,
        writes / 2,
        (reads + writes) / 4,
        (reads + writes) / 3,
    ))
}

/// `/sys/devices/system/cpu/online` → `0-{n-1}`.
pub fn cpu_online(k: &Kernel, _view: &View) -> String {
    format!("0-{}\n", k.config().cpus - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::MachineConfig;
    use workloads::models;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(MachineConfig::cloud_server(), 6);
        k.spawn_host_process("w", models::prime()).unwrap();
        k.advance_secs(3);
        k
    }

    #[test]
    fn rapl_counters_visible_and_monotone() {
        let mut k = kernel();
        let e1: u64 = rapl_package_energy(&k, &View::host(), 0)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        k.advance_secs(1);
        let e2: u64 = rapl_package_energy(&k, &View::host(), 0)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(e2 > e1);
        assert_eq!(rapl_name(&k, &View::host(), 1).unwrap(), "package-1\n");
        assert!(rapl_package_energy(&k, &View::host(), 2).is_none());
    }

    #[test]
    fn rapl_subdomains_are_core_and_dram() {
        let k = kernel();
        assert_eq!(
            rapl_subdomain_name(&k, &View::host(), 0, 0).unwrap(),
            "core\n"
        );
        assert_eq!(
            rapl_subdomain_name(&k, &View::host(), 0, 1).unwrap(),
            "dram\n"
        );
        assert!(rapl_subdomain_name(&k, &View::host(), 0, 2).is_none());
        let core: u64 = rapl_subdomain_energy(&k, &View::host(), 0, 0)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(core > 0);
    }

    #[test]
    fn rapl_absent_without_hardware() {
        let mut k = Kernel::new(MachineConfig::legacy_server_no_rapl(), 6);
        k.advance_secs(1);
        assert!(rapl_package_energy(&k, &View::host(), 0).is_none());
        assert!(coretemp(&k, &View::host(), 0, 1).is_none());
    }

    #[test]
    fn coretemp_package_sensor_is_max_of_cores() {
        let k = kernel();
        let pkg: i64 = coretemp(&k, &View::host(), 0, 1)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        for s in 2..=8 {
            let core: i64 = coretemp(&k, &View::host(), 0, s)
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            assert!(pkg >= core);
        }
        assert!(pkg > 35_000, "load should heat the package: {pkg}");
        assert!(coretemp(&k, &View::host(), 0, 15).is_none());
    }

    #[test]
    fn cpuidle_states_render() {
        let k = kernel();
        assert_eq!(cpuidle_name(&k, &View::host(), 0, 4).unwrap(), "C6\n");
        let t: u64 = cpuidle_time(&k, &View::host(), 15, 4)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let u: u64 = cpuidle_usage(&k, &View::host(), 15, 4)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(t > 0 && u > 0, "idle cpu15 should have C6 residency");
        assert!(cpuidle_name(&k, &View::host(), 99, 0).is_none());
    }

    #[test]
    fn cpufreq_tracks_load() {
        let k = kernel();
        // Workload spreads over cores; some core runs hot.
        let freqs: Vec<u64> = (0..16)
            .map(|c| {
                cpufreq_cur(&k, &View::host(), c)
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap()
            })
            .collect();
        let max = *freqs.iter().max().unwrap();
        let min = *freqs.iter().min().unwrap();
        assert!(max > min * 2, "freq spread {min}..{max}");
        let cap: u64 = cpufreq_max(&k, &View::host(), 0)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(max <= cap);
        assert!(cpufreq_cur(&k, &View::host(), 99).is_none());
    }

    #[test]
    fn thermal_zone_is_package_max() {
        let k = kernel();
        let t: i64 = thermal_zone_temp(&k, &View::host(), 0)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(t > 35_000, "loaded package should be warm: {t}");
        assert!(thermal_zone_temp(&k, &View::host(), 1).is_none());
    }

    #[test]
    fn block_stat_renders_for_known_disks() {
        let k = kernel();
        assert!(block_stat(&k, &View::host(), "sda").is_some());
        assert!(block_stat(&k, &View::host(), "nvme9").is_none());
    }

    #[test]
    fn online_range() {
        let k = kernel();
        assert_eq!(cpu_online(&k, &View::host()), "0-15\n");
    }
}
