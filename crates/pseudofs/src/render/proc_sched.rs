//! `/proc/{schedstat,sched_debug,timer_list,locks}`.

use std::fmt::Write as _;

use simkernel::Kernel;

use crate::view::View;

/// `/proc/schedstat`. LEAK (Table I/II): per-CPU run/wait time for the
/// whole host (variation + indirect manipulation via pinned load).
pub fn schedstat(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    schedstat_into(k, view, &mut out);
    out
}

/// [`schedstat`] writing into a caller-provided buffer.
pub fn schedstat_into(k: &Kernel, _view: &View, out: &mut String) {
    out.push_str("version 15\ntimestamp 4295000000\n");
    for (i, c) in k.sched().cpu_stats().iter().enumerate() {
        let _ = writeln!(
            out,
            "cpu{i} 0 0 0 0 0 0 {} {} {}",
            c.run_time_ns, c.wait_time_ns, c.timeslices
        );
        let _ = writeln!(
            out,
            "domain0 f 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0"
        );
    }
}

/// `/proc/sched_debug`. LEAK (Table II, top group): dumps *every* task on
/// the host — names, host pids, vruntime — regardless of the reader's PID
/// namespace. Directly manipulable: a tenant launches a process with a
/// crafted name; co-resident containers find it here (§III-C group 2).
pub fn sched_debug(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    sched_debug_into(k, view, &mut out);
    out
}

/// [`sched_debug`] writing into a caller-provided buffer.
pub fn sched_debug_into(k: &Kernel, _view: &View, out: &mut String) {
    let _ = writeln!(
        out,
        "Sched Debug Version: v0.11, {} {}",
        k.config().hostname,
        k.config().kernel_release,
    );
    let _ = writeln!(out, "ktime : {}", k.clock().since_boot_ns() / 1_000);
    for (i, c) in k.sched().cpu_stats().iter().enumerate() {
        let on_cpu = k.processes().filter(|p| p.last_cpu() as usize == i).count();
        let _ = writeln!(out, "\ncpu#{i}, {} MHz", k.config().freq_hz / 1_000_000);
        let _ = writeln!(out, "  .nr_running                    : {on_cpu}");
        let _ = writeln!(out, "  .nr_switches                   : {}", c.switches);
        let _ = writeln!(
            out,
            "  .max_newidle_lb_cost           : {}",
            c.max_newidle_lb_cost_ns
        );
    }
    out.push_str("\nrunnable tasks:\n            task   PID         tree-key\n");
    out.push_str("----------------------------------------------------\n");
    for p in k.processes() {
        let _ = writeln!(
            out,
            "{:>16} {:>5} {:>16}",
            p.name(),
            p.host_pid().0,
            p.vruntime_ns() / 1_000,
        );
    }
}

/// `/proc/timer_list`. LEAK (Table II, top group): every armed hrtimer on
/// the host with owner comm and host pid. The §IV-C orchestration uses
/// this channel for co-residence verification.
pub fn timer_list(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    timer_list_into(k, view, &mut out);
    out
}

/// [`timer_list`] writing into a caller-provided buffer.
pub fn timer_list_into(k: &Kernel, _view: &View, out: &mut String) {
    out.push_str("Timer List Version: v0.8\nHRTIMER_MAX_CLOCK_BASES: 4\n");
    let _ = writeln!(out, "now at {} nsecs", k.clock().since_boot_ns());
    for (i, t) in k.timers().timers().iter().enumerate() {
        let _ = writeln!(
            out,
            " #{i}: <0000000000000000>, {}, S:01, {}, {}/{}",
            t.function,
            if t.period_ns > 0 {
                "periodic"
            } else {
                "oneshot"
            },
            t.comm,
            t.pid.0,
        );
        let _ = writeln!(
            out,
            " # expires at {}-{} nsecs [in {} nsecs]",
            t.expires_ns,
            t.expires_ns + 50_000,
            t.expires_ns.saturating_sub(k.clock().since_boot_ns()),
        );
    }
}

/// `/proc/locks`. LEAK (Table II, top group): all kernel file locks with
/// *host* pids; directly manipulable via crafted `flock()` ranges.
pub fn locks(k: &Kernel, _view: &View) -> String {
    let mut out = String::new();
    for (i, l) in k.fs().locks().iter().enumerate() {
        let end = if l.range.1 == u64::MAX {
            "EOF".to_string()
        } else {
            l.range.1.to_string()
        };
        let _ = writeln!(
            out,
            "{}: {} {} {} {} {}",
            i + 1,
            l.kind.columns(),
            l.pid.0,
            l.dev_inode,
            l.range.0,
            end,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::fsstate::LockKind;
    use simkernel::MachineConfig;
    use workloads::models;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(MachineConfig::small_server(), 5);
        k.spawn_host_process("host-daemon", models::web_service(0.2))
            .unwrap();
        k.advance_secs(2);
        k
    }

    #[test]
    fn sched_debug_exposes_all_tasks_to_containers() {
        let mut k = kernel();
        let env = k.create_container_env("c1").unwrap();
        // Container process with a crafted name.
        k.spawn(
            simkernel::kernel::ProcessSpec::new("sig-42aa", models::prime()).in_container(&env),
        )
        .unwrap();
        k.advance_secs(1);
        let view = View::container(env.ns, env.cgroups);
        let s = sched_debug(&k, &view);
        assert!(s.contains("host-daemon"), "host tasks leak");
        assert!(s.contains("sig-42aa"), "implanted signature visible");
    }

    #[test]
    fn timer_list_contains_comms_and_host_pids() {
        let mut k = kernel();
        let pid = k
            .spawn_host_process("timer-owner", models::prime())
            .unwrap();
        k.add_user_timer(pid, "craft-77", 1_000_000_000).unwrap();
        let s = timer_list(&k, &View::host());
        assert!(s.contains("craft-77"));
        assert!(s.contains(&format!("/{}", pid.0)));
        assert!(s.contains("tick_sched_timer"));
    }

    #[test]
    fn locks_render_eof_and_ranges() {
        let mut k = kernel();
        let pid = k.spawn_host_process("locker", models::prime()).unwrap();
        k.flock(pid, LockKind::FlockWrite, (0, u64::MAX)).unwrap();
        k.flock(pid, LockKind::PosixRead, (100, 4096)).unwrap();
        let s = locks(&k, &View::host());
        assert!(s.contains("EOF"));
        assert!(s.contains("FLOCK  ADVISORY  WRITE"));
        assert!(s.contains("POSIX  ADVISORY  READ"));
        assert!(s.contains("4096"));
    }

    #[test]
    fn schedstat_per_cpu_lines() {
        let k = kernel();
        let s = schedstat(&k, &View::host());
        assert!(s.contains("cpu0 "));
        assert!(s.contains("cpu3 "));
        assert!(s.contains("domain0 "));
    }
}
