//! `/proc/sys/kernel/*` and `/proc/sys/fs/*`.

use simkernel::Kernel;

use crate::view::{Context, View};

/// `/proc/sys/kernel/random/boot_id`. LEAK (Table II rank 1): a random
/// string generated at boot, unique per running kernel — matching boot ids
/// from two containers is conclusive co-residence evidence.
pub fn boot_id(k: &Kernel, _view: &View) -> String {
    format!("{}\n", k.boot_id())
}

/// `/proc/sys/kernel/random/entropy_avail`. LEAK (Table I): host entropy
/// pool estimate (variation channel).
pub fn entropy_avail(k: &Kernel, _view: &View) -> String {
    format!("{}\n", k.fs().entropy_avail())
}

/// `/proc/sys/kernel/random/uuid`: fresh pseudo-random UUID per tick.
/// Derived statelessly from (boot id, clock, reader's UTS namespace) so
/// reads don't need `&mut`. Salting with the reader's namespace mimics
/// the real file's per-read randomness: the paper's cross-validation tool
/// sees different values in the two contexts and (correctly) does not
/// flag it, even though the underlying pool is global.
pub fn uuid(k: &Kernel, view: &View) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in k.boot_id().bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^= k.clock().since_boot_ns();
    let salt = match view.context {
        Context::Host => 0u64,
        Context::Container { ns, .. } => u64::from(ns.uts.0) + 1,
    };
    h = h.wrapping_add(salt.wrapping_mul(0xdead_beef_cafe_f00d));
    h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let h2 = h.wrapping_mul(0xff51_afd7_ed55_8ccd).rotate_left(31);
    format!(
        "{:08x}-{:04x}-4{:03x}-{:04x}-{:012x}\n",
        (h >> 32) as u32,
        (h >> 16) as u16,
        (h & 0xfff) as u16,
        ((h2 >> 48) as u16 & 0x3fff) | 0x8000,
        h2 & 0xffff_ffff_ffff,
    )
}

/// `/proc/sys/kernel/hostname`: properly namespaced via the UTS namespace —
/// containers see their own name (a *control* file for the detector).
pub fn hostname(k: &Kernel, view: &View) -> String {
    let name = match view.context {
        Context::Host => k
            .namespaces()
            .hostname(k.namespaces().host_set().uts)
            .unwrap_or("(none)"),
        Context::Container { ns, .. } => k.namespaces().hostname(ns.uts).unwrap_or("(none)"),
    };
    format!("{name}\n")
}

/// `/proc/sys/kernel/osrelease`: global but identical across a fleet
/// (not useful for co-residence — the paper's "hard to exploit" class).
pub fn osrelease(k: &Kernel, _view: &View) -> String {
    format!("{}\n", k.config().kernel_release)
}

/// `/proc/sys/kernel/sched_domain/cpu{cpu}/domain0/max_newidle_lb_cost`.
/// LEAK (Table II): fluctuates with host load-balancer activity; variation
/// only (not manipulable in a targeted way, per the paper's ranking).
pub fn max_newidle_lb_cost(k: &Kernel, _view: &View, cpu: usize) -> Option<String> {
    k.sched()
        .cpu_stats()
        .get(cpu)
        .map(|c| format!("{}\n", c.max_newidle_lb_cost_ns))
}

/// `/proc/sys/kernel/pid_max` (static, fleet-identical).
pub fn pid_max(_k: &Kernel, _view: &View) -> String {
    "32768\n".to_string()
}

/// `/proc/sys/kernel/threads-max`: scales with host RAM — a mild hardware
/// disclosure like `cpuinfo`.
pub fn threads_max(k: &Kernel, _view: &View) -> String {
    format!("{}\n", k.mem().total_bytes() / (8 * 8192))
}

/// `/proc/sys/vm/overcommit_memory` (static).
pub fn overcommit_memory(_k: &Kernel, _view: &View) -> String {
    "0\n".to_string()
}

/// `/proc/sys/vm/swappiness` (static).
pub fn swappiness(_k: &Kernel, _view: &View) -> String {
    "60\n".to_string()
}

/// `/proc/sys/fs/dentry-state`. LEAK (Table II): host dentry cache counters.
pub fn dentry_state(k: &Kernel, _view: &View) -> String {
    let (nr, unused, age, want) = k.fs().dentry_state();
    format!("{nr}\t{unused}\t{age}\t{want}\t0\t0\n")
}

/// `/proc/sys/fs/inode-nr`. LEAK (Table II): host inode counters.
pub fn inode_nr(k: &Kernel, _view: &View) -> String {
    let (nr, free) = k.fs().inode_nr();
    format!("{nr}\t{free}\n")
}

/// `/proc/sys/fs/file-nr`. LEAK (Table II): host open-file-handle counters.
pub fn file_nr(k: &Kernel, _view: &View) -> String {
    let (alloc, free, max) = k.fs().file_nr();
    format!("{alloc}\t{free}\t{max}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::MachineConfig;

    fn kernel(seed: u64) -> Kernel {
        let mut k = Kernel::new(MachineConfig::small_server(), seed);
        k.advance_secs(1);
        k
    }

    #[test]
    fn boot_id_identical_for_host_and_container_views() {
        // This is the leak: the file is NOT namespaced.
        let mut k = kernel(1);
        let env = k.create_container_env("c1").unwrap();
        let host = boot_id(&k, &View::host());
        let cont = boot_id(&k, &View::container(env.ns, env.cgroups));
        assert_eq!(host, cont);
    }

    #[test]
    fn hostname_is_namespaced() {
        let mut k = kernel(1);
        let env = k.create_container_env("webapp-1").unwrap();
        let host = hostname(&k, &View::host());
        let cont = hostname(&k, &View::container(env.ns, env.cgroups));
        assert_eq!(host.trim(), "small");
        assert_eq!(cont.trim(), "webapp-1");
    }

    #[test]
    fn uuid_changes_with_time_but_is_deterministic() {
        let mut k = kernel(1);
        let u1 = uuid(&k, &View::host());
        let u1_again = uuid(&k, &View::host());
        assert_eq!(u1, u1_again, "stateless read");
        k.advance_secs(1);
        assert_ne!(u1, uuid(&k, &View::host()));
    }

    #[test]
    fn vfs_counter_files_parse() {
        let k = kernel(1);
        let ds = dentry_state(&k, &View::host());
        assert_eq!(ds.split_whitespace().count(), 6);
        let fnr = file_nr(&k, &View::host());
        let fields: Vec<u64> = fnr.split_whitespace().map(|f| f.parse().unwrap()).collect();
        assert_eq!(fields.len(), 3);
        assert!(fields[0] > 0);
    }

    #[test]
    fn sched_domain_cost_exists_per_cpu() {
        let k = kernel(1);
        assert!(max_newidle_lb_cost(&k, &View::host(), 0).is_some());
        assert!(max_newidle_lb_cost(&k, &View::host(), 99).is_none());
    }

    #[test]
    fn sysctls_render_plausible_values() {
        let k = kernel(1);
        assert_eq!(pid_max(&k, &View::host()), "32768\n");
        assert_eq!(overcommit_memory(&k, &View::host()), "0\n");
        assert_eq!(swappiness(&k, &View::host()), "60\n");
        let tm: u64 = threads_max(&k, &View::host()).trim().parse().unwrap();
        assert_eq!(tm, (8u64 << 30) / (8 * 8192));
    }

    #[test]
    fn entropy_within_kernel_bounds() {
        let k = kernel(1);
        let v: u64 = entropy_avail(&k, &View::host()).trim().parse().unwrap();
        assert!((160..=4096).contains(&v));
    }
}
