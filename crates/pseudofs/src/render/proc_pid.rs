//! Properly-namespaced `/proc` files: `/proc/self/*`, per-pid directories,
//! and `/proc/net/dev`.
//!
//! These are the *control group* for the cross-validation detector: their
//! handlers consult the reader's namespaces, so host and container views
//! differ — exactly what a correctly containerized channel looks like
//! (case ① of the paper's Fig. 1).

use std::fmt::Write as _;

use simkernel::{Kernel, NamespaceSet};

use crate::view::{Context, View};

fn viewer_ns(k: &Kernel, view: &View) -> NamespaceSet {
    match view.context {
        Context::Host => k.namespaces().host_set(),
        Context::Container { ns, .. } => ns,
    }
}

/// The synthetic pid of the process performing the read (the detector's
/// `cat`): one past the highest pid visible in the reader's namespace.
fn reader_pid(k: &Kernel, view: &View) -> u32 {
    let ns = viewer_ns(k, view);
    k.namespaces()
        .pids_visible_from(ns.pid)
        .iter()
        .map(|(_, p)| *p)
        .max()
        .unwrap_or(0)
        + 1
}

/// `/proc/self/status`: namespaced — pid is the reader's pid *within its
/// PID namespace*, uid mapping comes from the USER namespace.
pub fn self_status(k: &Kernel, view: &View) -> String {
    let pid = reader_pid(k, view);
    let uid = 0; // root inside the namespace (mapped outside).
    format!(
        "Name:\tcat\nState:\tR (running)\nPid:\t{pid}\nPPid:\t{}\n\
         Uid:\t{uid}\t{uid}\t{uid}\t{uid}\nVmRSS:\t     720 kB\nThreads:\t1\n",
        pid.saturating_sub(1),
    )
}

/// `/proc/self/cgroup`: namespaced via the CGROUP namespace — inside a
/// container the paths render relative to the namespace root (`/`).
pub fn self_cgroup(k: &Kernel, view: &View) -> String {
    let (paths, root): ([(u32, &str, String); 4], String) = match view.context {
        // Host processes run under systemd's user slice, as on a real
        // distro — which also keeps this file's host view distinct from a
        // cgroup-namespaced container's "/" view.
        Context::Host => (
            [
                (4, "cpuacct", "/user.slice".into()),
                (3, "perf_event", "/user.slice".into()),
                (2, "net_prio", "/user.slice".into()),
                (1, "memory", "/user.slice".into()),
            ],
            "/".into(),
        ),
        Context::Container { ns, cgroups } => {
            let path = |id| {
                k.cgroups()
                    .node(id)
                    .map(|n| n.path().to_string())
                    .unwrap_or_else(|| "/".into())
            };
            let root = k
                .namespaces()
                .cgroup_root(ns.cgroup)
                .unwrap_or("/")
                .to_string();
            (
                [
                    (4, "cpuacct", path(cgroups.cpuacct)),
                    (3, "perf_event", path(cgroups.perf_event)),
                    (2, "net_prio", path(cgroups.net_prio)),
                    (1, "memory", path(cgroups.memory)),
                ],
                root,
            )
        }
    };
    let mut out = String::new();
    for (id, name, path) in paths {
        // Inside a cgroup namespace, the container's own subtree renders
        // as "/" (the namespace root is stripped).
        let shown = if path == root {
            "/"
        } else {
            path.strip_prefix(root.trim_end_matches('/'))
                .unwrap_or(&path)
        };
        let _ = writeln!(out, "{id}:{name}:{shown}");
    }
    out
}

/// `/proc/net/dev`: namespaced — renders the devices of the reader's NET
/// namespace. Containers see `lo`/`eth0` with their own (synthetic)
/// counters, not the host's device list.
pub fn net_dev(k: &Kernel, view: &View) -> String {
    let ns = viewer_ns(k, view);
    let mut out = String::from(
        "Inter-|   Receive                |  Transmit\n face |bytes    packets|bytes    packets\n",
    );
    match view.context {
        Context::Host => {
            for d in k.net().devices() {
                let _ = writeln!(
                    out,
                    "{:>6}: {:>8} {:>8} {:>8} {:>8}",
                    d.name, d.rx_bytes, d.rx_packets, d.tx_bytes, d.tx_packets
                );
            }
        }
        Context::Container { .. } => {
            let devices = k.namespaces().net_devices(ns.net).unwrap_or(&[]);
            let t = k.clock().since_boot_ns() / 1_000_000_000;
            for (i, name) in devices.iter().enumerate() {
                let rx = t * (900 + 400 * i as u64);
                let tx = t * (700 + 300 * i as u64);
                let _ = writeln!(
                    out,
                    "{:>6}: {:>8} {:>8} {:>8} {:>8}",
                    name,
                    rx,
                    rx / 800 + 1,
                    tx,
                    tx / 800 + 1
                );
            }
        }
    }
    out
}

/// `/proc/net/snmp`: namespaced — per-NET-namespace protocol counters.
pub fn net_snmp(k: &Kernel, view: &View) -> String {
    let ns = viewer_ns(k, view);
    // Synthetic but namespace-distinct counters: scale with uptime and
    // differ per namespace id.
    let t = k.clock().since_boot_ns() / 1_000_000_000;
    let salt = u64::from(ns.net.0) + 1;
    format!(
        "Ip: InReceives InDelivers OutRequests
Ip: {} {} {}
         Tcp: ActiveOpens PassiveOpens InSegs OutSegs
Tcp: {} {} {} {}
         Udp: InDatagrams OutDatagrams
Udp: {} {}
",
        t * (90 + salt % 7),
        t * (88 + salt % 7),
        t * (70 + salt % 5),
        t / 30 + salt,
        t / 60 + salt / 2,
        t * (60 + salt % 11),
        t * (55 + salt % 11),
        t * (9 + salt % 3),
        t * (8 + salt % 3),
    )
}

/// `/proc/net/tcp`: namespaced — sockets of the reader's NET namespace
/// only (one listener per service process in the namespace).
pub fn net_tcp(k: &Kernel, view: &View) -> String {
    let ns = viewer_ns(k, view);
    let mut out = String::from(
        "  sl  local_address rem_address   st tx_queue rx_queue uid
",
    );
    let mut sl = 0;
    for p in k.processes() {
        if p.namespaces().net != ns.net {
            continue;
        }
        let port = 8000 + p.host_pid().0 % 1000;
        let _ = writeln!(
            out,
            "{sl:>4}: 00000000:{port:04X} 00000000:0000 0A 00000000:00000000 0",
        );
        sl += 1;
    }
    out
}

/// Host pids visible from the view, with their in-namespace pids.
pub fn visible_pids(k: &Kernel, view: &View) -> Vec<(simkernel::HostPid, u32)> {
    let ns = viewer_ns(k, view);
    let mut v = k.namespaces().pids_visible_from(ns.pid);
    v.sort_by_key(|(_, nspid)| *nspid);
    v
}

/// `/proc/<pid>/status` for a pid *as numbered in the reader's namespace*.
/// Returns `None` when the pid is not visible from this namespace — the
/// PID-namespace isolation working as intended.
pub fn pid_status(k: &Kernel, view: &View, ns_pid: u32) -> Option<String> {
    let (host_pid, _) = visible_pids(k, view)
        .into_iter()
        .find(|(_, p)| *p == ns_pid)?;
    let proc = k.process(host_pid)?;
    Some(format!(
        "Name:\t{}\nState:\t{}\nPid:\t{ns_pid}\nVmRSS:\t{:>8} kB\nThreads:\t1\n",
        proc.name(),
        match proc.state() {
            simkernel::ProcState::Runnable => "R (running)",
            simkernel::ProcState::Sleeping => "S (sleeping)",
            simkernel::ProcState::Exited => "Z (zombie)",
        },
        proc.rss_bytes() / 1024,
    ))
}

/// `/proc/<pid>/stat` (abridged to the fields consumers use).
pub fn pid_stat(k: &Kernel, view: &View, ns_pid: u32) -> Option<String> {
    let (host_pid, _) = visible_pids(k, view)
        .into_iter()
        .find(|(_, p)| *p == ns_pid)?;
    let proc = k.process(host_pid)?;
    Some(format!(
        "{ns_pid} ({}) R 0 {ns_pid} {ns_pid} 0 -1 4194304 {} {} {} {}\n",
        proc.name(),
        proc.utime_ns() / 10_000_000,
        proc.stime_ns() / 10_000_000,
        proc.start_ns() / 10_000_000,
        proc.rss_bytes() / 4096,
    ))
}

/// `/proc/<pid>/io`: per-process IO accounting (pid-namespaced).
pub fn pid_io(k: &Kernel, view: &View, ns_pid: u32) -> Option<String> {
    let (host_pid, _) = visible_pids(k, view)
        .into_iter()
        .find(|(_, p)| *p == ns_pid)?;
    let proc = k.process(host_pid)?;
    let (r, w) = proc.io_bytes();
    Some(format!(
        "rchar: {}\nwchar: {}\nsyscr: {}\nsyscw: {}\nread_bytes: {r}\nwrite_bytes: {w}\n",
        r + proc.syscall_count() * 64,
        w + proc.syscall_count() * 32,
        proc.syscall_count() / 2,
        proc.syscall_count() / 2,
    ))
}

/// `/proc/<pid>/sched`: per-task scheduler statistics (pid-namespaced).
pub fn pid_sched(k: &Kernel, view: &View, ns_pid: u32) -> Option<String> {
    let (host_pid, _) = visible_pids(k, view)
        .into_iter()
        .find(|(_, p)| *p == ns_pid)?;
    let proc = k.process(host_pid)?;
    Some(format!(
        "{} ({ns_pid}, #threads: 1)\n-------------------------------\n         se.sum_exec_runtime : {:.6}\nse.vruntime : {:.6}\nnr_switches : {}\n         prio : 120\n",
        proc.name(),
        proc.cpu_time_ns() as f64 / 1e6,
        proc.vruntime_ns() as f64 / 1e6,
        proc.cpu_time_ns() / 10_000_000 + 1,
    ))
}

/// `/proc/mounts`: properly namespaced via the MNT namespace — containers
/// see their own (shorter) mount table (a control file).
pub fn mounts(k: &Kernel, view: &View) -> String {
    let ns = viewer_ns(k, view);
    let mut out = String::new();
    if let Some(simkernel::ns::NamespaceData::Mnt { mounts }) = k.namespaces().get(ns.mnt) {
        for m in mounts {
            let (dev, fstype) = match m.as_str() {
                "/" => ("/dev/sda1", "ext4"),
                "/proc" => ("proc", "proc"),
                "/sys" => ("sysfs", "sysfs"),
                "/dev" => ("udev", "devtmpfs"),
                _ => ("none", "tmpfs"),
            };
            let _ = writeln!(out, "{dev} {m} {fstype} rw,relatime 0 0");
        }
    }
    out
}

/// `/proc/<pid>/cmdline`.
pub fn pid_cmdline(k: &Kernel, view: &View, ns_pid: u32) -> Option<String> {
    let (host_pid, _) = visible_pids(k, view)
        .into_iter()
        .find(|(_, p)| *p == ns_pid)?;
    Some(format!("{}\0", k.process(host_pid)?.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::kernel::ProcessSpec;
    use simkernel::MachineConfig;
    use workloads::models;

    fn setup() -> (Kernel, View, View) {
        let mut k = Kernel::new(MachineConfig::small_server(), 4);
        k.spawn_host_process("host-daemon", models::web_service(0.1))
            .unwrap();
        let env = k.create_container_env("c1").unwrap();
        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(1);
        let cv = View::container(env.ns, env.cgroups);
        (k, View::host(), cv)
    }

    #[test]
    fn pid_namespace_hides_host_processes() {
        let (k, host, cont) = setup();
        let host_pids = visible_pids(&k, &host);
        let cont_pids = visible_pids(&k, &cont);
        assert_eq!(host_pids.len(), 2);
        assert_eq!(cont_pids.len(), 1);
        assert_eq!(cont_pids[0].1, 1, "container init is pid 1");
        assert!(pid_status(&k, &cont, 1).unwrap().contains("Name:\tapp"));
        // The host daemon's pid is not resolvable inside the container.
        let daemon_host_pid = host_pids[0].1;
        assert!(pid_status(&k, &cont, daemon_host_pid).is_none());
    }

    #[test]
    fn self_status_differs_between_views() {
        let (k, host, cont) = setup();
        assert_ne!(self_status(&k, &host), self_status(&k, &cont));
        assert!(self_status(&k, &cont).contains("Pid:\t2"));
    }

    #[test]
    fn self_cgroup_is_rooted_inside_container() {
        let (k, host, cont) = setup();
        let h = self_cgroup(&k, &host);
        let c = self_cgroup(&k, &cont);
        assert!(h.contains("4:cpuacct:/user.slice\n"), "got: {h}");
        // cgroup namespace strips the /docker/c1 prefix.
        assert!(c.contains("4:cpuacct:/\n"), "got: {c}");
    }

    #[test]
    fn net_dev_is_namespaced() {
        let (k, host, cont) = setup();
        let h = net_dev(&k, &host);
        let c = net_dev(&k, &cont);
        assert!(h.contains("docker0"));
        assert!(h.contains("veth"));
        assert!(!c.contains("docker0"));
        assert!(c.contains("eth0"));
    }

    #[test]
    fn pid_io_and_sched_render_for_visible_pids_only() {
        let (k, host, cont) = setup();
        let io = pid_io(&k, &cont, 1).unwrap();
        assert!(io.contains("read_bytes:"));
        assert!(io.contains("syscr:"));
        let sched = pid_sched(&k, &cont, 1).unwrap();
        assert!(sched.contains("se.sum_exec_runtime"));
        assert!(sched.starts_with("app (1,"));
        // Host pids are invisible through the container's lens.
        let (_, host_daemon_pid) = visible_pids(&k, &host)[0];
        assert!(pid_io(&k, &cont, host_daemon_pid).is_none());
        assert!(pid_sched(&k, &cont, 999).is_none());
    }

    #[test]
    fn mounts_is_namespaced() {
        let (k, host, cont) = setup();
        let h = mounts(&k, &host);
        let c = mounts(&k, &cont);
        assert!(h.contains("devtmpfs"), "host sees /dev: {h}");
        assert!(!c.contains("devtmpfs"), "container mnt ns has no /dev");
        assert!(c.contains("proc /proc proc"));
        assert_ne!(h, c);
    }

    #[test]
    fn net_tcp_and_snmp_are_namespaced() {
        let (k, host, cont) = setup();
        assert_ne!(net_snmp(&k, &host), net_snmp(&k, &cont));
        let host_tcp = net_tcp(&k, &host);
        let cont_tcp = net_tcp(&k, &cont);
        // One socket row per process in the namespace (+ header).
        assert_eq!(host_tcp.lines().count(), 2, "{host_tcp}");
        assert_eq!(cont_tcp.lines().count(), 2, "{cont_tcp}");
        assert_ne!(host_tcp, cont_tcp);
    }

    #[test]
    fn pid_stat_and_cmdline_render() {
        let (k, _, cont) = setup();
        let stat = pid_stat(&k, &cont, 1).unwrap();
        assert!(stat.starts_with("1 (app) R"));
        assert_eq!(pid_cmdline(&k, &cont, 1).unwrap(), "app\0");
        assert!(pid_stat(&k, &cont, 999).is_none());
    }
}
