//! `/proc/{cpuinfo,meminfo,stat,uptime,version,loadavg}`.

use std::fmt::Write as _;

use simkernel::{Kernel, NANOS_PER_SEC};

use super::{jiffies, kb};
use crate::view::{MaskAction, View};

/// `/proc/cpuinfo`. LEAK (Table I): CPU specification of the *host*.
/// Under a `Partial` mask (CC5), only the container's allotted CPUs are
/// rendered, renumbered from zero.
pub fn cpuinfo(k: &Kernel, view: &View) -> String {
    let partial = view.mask_action("/proc/cpuinfo") == Some(MaskAction::Partial);
    let cpus: Vec<u16> = match (&view.allotted_cpus, partial) {
        (Some(a), true) => a.clone(),
        // Partial masking with no recorded allotment: fail safe to the
        // minimum share (one CPU) rather than exposing the host topology.
        (None, true) => vec![0],
        _ => (0..k.config().cpus).collect(),
    };
    let mhz = k.config().freq_hz as f64 / 1e6;
    let mut out = String::new();
    for (idx, cpu) in cpus.iter().enumerate() {
        let shown = if partial { idx as u16 } else { *cpu };
        let _ = write!(
            out,
            "processor\t: {shown}\n\
             vendor_id\t: GenuineIntel\n\
             model name\t: {}\n\
             cpu MHz\t\t: {mhz:.3}\n\
             cache size\t: 8192 KB\n\
             physical id\t: {}\n\
             siblings\t: {}\n\
             core id\t\t: {}\n\
             cpu cores\t: {}\n\
             bogomips\t: {:.2}\n\n",
            k.config().cpu_model,
            k.hw().package_of(*cpu as usize),
            k.config().cpus_per_package(),
            cpu % k.config().cpus_per_package(),
            k.config().cpus_per_package(),
            mhz * 2.0,
        );
    }
    out
}

/// `/proc/meminfo`. LEAK (Table I): host memory totals and the MemFree
/// trace used by the variation metric. `Partial` restricts to the
/// container's limit and its own usage.
pub fn meminfo(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    meminfo_into(k, view, &mut out);
    out
}

/// [`meminfo`] writing into a caller-provided buffer.
pub fn meminfo_into(k: &Kernel, view: &View, out: &mut String) {
    let partial = view.mask_action("/proc/meminfo") == Some(MaskAction::Partial);
    let m = k.mem();
    let (total, free, available, cached) = if partial {
        let limit = view.mem_limit_bytes.unwrap_or(m.total_bytes());
        let used = container_usage(k, view).min(limit);
        let free = limit - used;
        (limit, free, free, 0)
    } else {
        (
            m.total_bytes(),
            m.free_bytes(),
            m.available_bytes(),
            m.cached_bytes(),
        )
    };
    let (swap_total, swap_free) = m.swap();
    let active = m.rss_bytes() * 3 / 5 + cached / 2;
    let inactive = m.rss_bytes() * 2 / 5 + cached / 2;
    let _ = write!(
        out,
        "MemTotal:       {:>8} kB\n\
         MemFree:        {:>8} kB\n\
         MemAvailable:   {:>8} kB\n\
         Buffers:        {:>8} kB\n\
         Cached:         {:>8} kB\n\
         SwapCached:     {:>8} kB\n\
         Active:         {:>8} kB\n\
         Inactive:       {:>8} kB\n\
         SwapTotal:      {:>8} kB\n\
         SwapFree:       {:>8} kB\n\
         Dirty:          {:>8} kB\n\
         Writeback:      {:>8} kB\n\
         AnonPages:      {:>8} kB\n\
         Mapped:         {:>8} kB\n\
         Shmem:          {:>8} kB\n\
         Slab:           {:>8} kB\n\
         SReclaimable:   {:>8} kB\n\
         SUnreclaim:     {:>8} kB\n\
         KernelStack:    {:>8} kB\n\
         PageTables:     {:>8} kB\n\
         CommitLimit:    {:>8} kB\n\
         Committed_AS:   {:>8} kB\n\
         VmallocTotal:   34359738367 kB\n",
        kb(total),
        kb(free),
        kb(available),
        kb(m.buffers_bytes()),
        kb(cached),
        0,
        kb(active),
        kb(inactive),
        kb(swap_total),
        kb(swap_free),
        kb(m.dirty_bytes()),
        0,
        kb(m.rss_bytes()),
        kb(m.rss_bytes() / 3),
        kb(cached / 8),
        kb(m.total_bytes() / 64),
        kb(m.total_bytes() / 96),
        kb(m.total_bytes() / 192),
        kb((k.process_count() as u64 + 40) * 16 * 1024),
        kb(m.rss_bytes() / 50),
        kb(swap_total + total / 2),
        kb(m.rss_bytes() + (1 << 30)),
    );
}

fn container_usage(k: &Kernel, view: &View) -> u64 {
    match view.context {
        crate::view::Context::Container { cgroups, .. } => k
            .cgroups()
            .memory_usage(cgroups.memory)
            .map(|(u, _)| u)
            .unwrap_or(0),
        crate::view::Context::Host => k.mem().rss_bytes(),
    }
}

/// `/proc/stat`. LEAK (Table I): host-wide kernel activity — per-CPU time
/// breakdown, total interrupts, context switches, forks.
pub fn stat(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    stat_into(k, view, &mut out);
    out
}

/// [`stat`] writing into a caller-provided buffer.
pub fn stat_into(k: &Kernel, _view: &View, out: &mut String) {
    let stats = k.sched().cpu_stats();
    let sum = |f: fn(&simkernel::sched::CpuSchedStats) -> u64| -> u64 { stats.iter().map(f).sum() };
    let _ = writeln!(
        out,
        "cpu  {} 0 {} {} {} 0 {} 0 0 0",
        jiffies(sum(|c| c.user_ns)),
        jiffies(sum(|c| c.system_ns)),
        jiffies(sum(|c| c.idle_ns)),
        jiffies(sum(|c| c.iowait_ns)),
        jiffies(sum(|c| c.system_ns) / 20),
    );
    for (i, c) in stats.iter().enumerate() {
        let _ = writeln!(
            out,
            "cpu{i} {} 0 {} {} {} 0 {} 0 0 0",
            jiffies(c.user_ns),
            jiffies(c.system_ns),
            jiffies(c.idle_ns),
            jiffies(c.iowait_ns),
            jiffies(c.system_ns / 20),
        );
    }
    let _ = writeln!(out, "intr {} 0 0 0", k.irq().total_interrupts());
    let _ = writeln!(out, "ctxt {}", k.sched().total_switches());
    let _ = writeln!(out, "btime {}", k.clock().boot_wall_secs());
    let _ = writeln!(out, "processes {}", k.total_forks());
    let _ = writeln!(
        out,
        "procs_running {}",
        k.processes()
            .filter(|p| p.state() == simkernel::ProcState::Runnable)
            .count()
    );
    let _ = writeln!(out, "procs_blocked 0");
    let softirq_total: u64 = k.irq().softirqs().iter().flatten().sum();
    let _ = writeln!(out, "softirq {softirq_total} 0 0 0 0 0 0 0 0 0 0");
}

/// `/proc/uptime`. LEAK (Table I): host up time and accumulated idle time —
/// a unique dynamic identifier (§III-C group 3) also used in §IV-C to group
/// servers installed at the same time.
pub fn uptime(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    uptime_into(k, view, &mut out);
    out
}

/// [`uptime`] writing into a caller-provided buffer.
pub fn uptime_into(k: &Kernel, _view: &View, out: &mut String) {
    let up = k.clock().uptime_secs();
    let idle = k.total_idle_ns() as f64 / NANOS_PER_SEC as f64;
    let _ = writeln!(out, "{up:.2} {idle:.2}");
}

/// `/proc/version`. LEAK (Table I): kernel, gcc and distribution versions.
pub fn version(k: &Kernel, _view: &View) -> String {
    format!(
        "Linux version {} (buildd@host) (gcc version {} ({})) #1 SMP\n",
        k.config().kernel_release,
        k.config().gcc_version,
        k.config().distro,
    )
}

/// `/proc/loadavg`. LEAK (Table I): host CPU/IO utilization over time.
pub fn loadavg(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    loadavg_into(k, view, &mut out);
    out
}

/// [`loadavg`] writing into a caller-provided buffer.
pub fn loadavg_into(k: &Kernel, _view: &View, out: &mut String) {
    let [l1, l5, l15] = k.sched().loadavg();
    let running = k
        .processes()
        .filter(|p| p.state() == simkernel::ProcState::Runnable)
        .count();
    let _ = writeln!(
        out,
        "{l1:.2} {l5:.2} {l15:.2} {running}/{} {}",
        k.process_count().max(1),
        k.last_pid(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::MaskPolicy;
    use simkernel::MachineConfig;
    use workloads::models;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(MachineConfig::small_server(), 3);
        k.spawn_host_process("w", models::prime()).unwrap();
        k.advance_secs(3);
        k
    }

    #[test]
    fn cpuinfo_lists_all_host_cpus() {
        let k = kernel();
        let s = cpuinfo(&k, &View::host());
        assert_eq!(s.matches("processor").count(), 4);
        assert!(s.contains(&k.config().cpu_model));
    }

    #[test]
    fn cpuinfo_partial_restricts_and_renumbers() {
        let k = kernel();
        let env = {
            let mut k2 = Kernel::new(MachineConfig::small_server(), 3);
            k2.create_container_env("c").unwrap()
        };
        let v = View::container(env.ns, env.cgroups)
            .with_policy(MaskPolicy::none().partial("/proc/cpuinfo"))
            .with_allotted_cpus(vec![2, 3]);
        let s = cpuinfo(&k, &v);
        assert_eq!(s.matches("processor").count(), 2);
        assert!(s.contains("processor\t: 0"));
        assert!(!s.contains("processor\t: 2"));
    }

    #[test]
    fn meminfo_has_core_fields_in_kb() {
        let k = kernel();
        let s = meminfo(&k, &View::host());
        assert!(s.contains("MemTotal:"));
        assert!(s.contains("MemFree:"));
        let total_line = s.lines().next().unwrap();
        let total: u64 = total_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(total, (8u64 << 30) / 1024);
    }

    #[test]
    fn stat_has_percpu_and_counters() {
        let k = kernel();
        let s = stat(&k, &View::host());
        assert!(s.lines().next().unwrap().starts_with("cpu "));
        assert!(s.contains("cpu3 "));
        assert!(s.contains("ctxt "));
        assert!(s.contains("btime "));
        assert!(s.contains("processes "));
    }

    #[test]
    fn uptime_tracks_clock() {
        let k = kernel();
        let s = uptime(&k, &View::host());
        let up: f64 = s.split_whitespace().next().unwrap().parse().unwrap();
        assert!((up - 3.0).abs() < 0.01);
        let idle: f64 = s.split_whitespace().nth(1).unwrap().parse().unwrap();
        // 4 cpus, 1 busy → ~9 idle cpu-seconds.
        assert!(idle > 8.0 && idle < 12.5, "idle {idle}");
    }

    #[test]
    fn version_and_loadavg_format() {
        let k = kernel();
        assert!(version(&k, &View::host()).starts_with("Linux version 4.7.0"));
        let la = loadavg(&k, &View::host());
        assert_eq!(la.split_whitespace().count(), 5);
        assert!(la.contains('/'));
    }
}
