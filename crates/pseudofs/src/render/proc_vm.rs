//! Additional global `/proc` channels surfaced by the systematic walk:
//! `vmstat`, `slabinfo`, `buddyinfo`, `swaps`, `partitions`,
//! `filesystems`, and `cgroups`.
//!
//! All of these are host-global (the VM subsystem, the slab allocator, the
//! buddy allocator and the cgroup registry have no namespace awareness in
//! Linux 4.7). `/proc/cgroups` is particularly interesting for a tenant:
//! its `num_cgroups` column counts every container on the host.

use std::fmt::Write as _;

use simkernel::Kernel;

use crate::view::View;

/// `/proc/vmstat`. LEAK: host-wide VM event counters (accumulators).
pub fn vmstat(k: &Kernel, _view: &View) -> String {
    let vm = k.mem().vm_counters();
    let free_pages = k.mem().free_bytes() / simkernel::mem::PAGE_SIZE;
    format!(
        "nr_free_pages {}\nnr_anon_pages {}\nnr_file_pages {}\nnr_dirty {}\n\
         pgalloc_normal {}\npgfree {}\npgfault {}\npgmajfault {}\npgscan_kswapd {}\n",
        free_pages,
        k.mem().rss_bytes() / simkernel::mem::PAGE_SIZE,
        k.mem().cached_bytes() / simkernel::mem::PAGE_SIZE,
        k.mem().dirty_bytes() / simkernel::mem::PAGE_SIZE,
        vm.pgalloc,
        vm.pgfree,
        vm.pgfault,
        vm.pgmajfault,
        vm.pgscan,
    )
}

/// `/proc/slabinfo`. LEAK: slab-cache object counts — dominated by the
/// dentry and inode caches, so it moves with host filesystem activity.
pub fn slabinfo(k: &Kernel, _view: &View) -> String {
    let (dentries, unused, _, _) = k.fs().dentry_state();
    let (inodes, _) = k.fs().inode_nr();
    let mut out = String::from(
        "slabinfo - version: 2.1\n# name            <active_objs> <num_objs> <objsize>\n",
    );
    let nprocs = k.process_count() as u64;
    for (name, active, num, size) in [
        ("dentry", dentries - unused / 2, dentries, 192u64),
        ("inode_cache", inodes, inodes + 512, 608),
        (
            "ext4_inode_cache",
            inodes * 3 / 5,
            inodes * 3 / 5 + 256,
            1096,
        ),
        ("task_struct", nprocs + 120, nprocs + 160, 5952),
        ("kmalloc-256", 4_096 + nprocs * 12, 4_608 + nprocs * 12, 256),
        (
            "buffer_head",
            k.mem().buffers_bytes() / 4096,
            k.mem().buffers_bytes() / 4096 + 64,
            104,
        ),
    ] {
        let _ = writeln!(out, "{name:<18} {active:>12} {num:>10} {size:>9}");
    }
    out
}

/// `/proc/buddyinfo`. LEAK: per-zone free pages by order — host memory
/// fragmentation state.
pub fn buddyinfo(k: &Kernel, _view: &View) -> String {
    let mut out = String::new();
    for z in k.mem().zones() {
        let _ = write!(out, "Node {}, zone {:>8}", z.node, z.name);
        // Geometric split of the free pages over orders 0..=10.
        let mut remaining = z.free_pages;
        for order in 0..11u32 {
            let blocks = if order == 10 {
                remaining >> 10
            } else {
                (remaining / 2) >> order
            };
            remaining -= blocks << order;
            let _ = write!(out, " {blocks:>6}");
        }
        out.push('\n');
    }
    out
}

/// `/proc/swaps`. LEAK: host swap devices and usage.
pub fn swaps(k: &Kernel, _view: &View) -> String {
    let (total, free) = k.mem().swap();
    let mut out = String::from("Filename\t\t\t\tType\t\tSize\tUsed\tPriority\n");
    if total > 0 {
        let _ = writeln!(
            out,
            "/dev/sda2                               partition\t{}\t{}\t-2",
            total / 1024,
            (total - free) / 1024,
        );
    }
    out
}

/// `/proc/partitions`. LEAK: the host's block devices and sizes.
pub fn partitions(k: &Kernel, _view: &View) -> String {
    let mut out = String::from("major minor  #blocks  name\n\n");
    for (i, (name, size)) in k.config().disks.iter().enumerate() {
        let blocks = size / 1024;
        let _ = writeln!(out, "   8  {:>5} {blocks:>10} {name}", i * 16);
        let _ = writeln!(
            out,
            "   8  {:>5} {:>10} {name}1",
            i * 16 + 1,
            blocks * 9 / 10
        );
        let _ = writeln!(out, "   8  {:>5} {:>10} {name}2", i * 16 + 2, blocks / 10);
    }
    out
}

/// `/proc/filesystems`: static list, identical fleet-wide (info leak but
/// useless for co-residence, like `/proc/modules`).
pub fn filesystems(_k: &Kernel, _view: &View) -> String {
    "nodev\tsysfs\nnodev\ttmpfs\nnodev\tproc\nnodev\tcgroup\nnodev\toverlay\n\text4\n\tvfat\n"
        .to_string()
}

/// `/proc/cgroups`. LEAK: per-hierarchy cgroup counts — `num_cgroups`
/// exposes how many containers the host runs, and watching it over time
/// reveals the host's container churn.
pub fn cgroups(k: &Kernel, _view: &View) -> String {
    let mut out = String::from("#subsys_name\thierarchy\tnum_cgroups\tenabled\n");
    for (name, kind, hierarchy) in [
        ("cpuacct", simkernel::CgroupKind::Cpuacct, 4),
        ("memory", simkernel::CgroupKind::Memory, 1),
        ("net_prio", simkernel::CgroupKind::NetPrio, 2),
        ("perf_event", simkernel::CgroupKind::PerfEvent, 3),
    ] {
        let _ = writeln!(
            out,
            "{name}\t{hierarchy}\t{}\t1",
            k.cgroups().count_of_kind(kind)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::MachineConfig;
    use workloads::models;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(MachineConfig::testbed_i7_6700(), 31);
        k.spawn_host_process("w", models::web_service(0.3)).unwrap();
        k.advance_secs(3);
        k
    }

    #[test]
    fn vmstat_counters_accumulate() {
        let mut k = kernel();
        let a = vmstat(&k, &View::host());
        k.advance_secs(2);
        let b = vmstat(&k, &View::host());
        assert_ne!(a, b);
        let get = |s: &str, key: &str| -> u64 {
            s.lines()
                .find(|l| l.starts_with(key))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        assert!(get(&b, "pgfault") > get(&a, "pgfault"));
        assert!(get(&b, "pgalloc_normal") > get(&a, "pgalloc_normal"));
    }

    #[test]
    fn slabinfo_tracks_dentry_cache() {
        let k = kernel();
        let s = slabinfo(&k, &View::host());
        assert!(s.contains("dentry"));
        assert!(s.contains("task_struct"));
        assert!(s.lines().count() >= 8);
    }

    #[test]
    fn buddyinfo_orders_account_for_free_pages() {
        let k = kernel();
        let s = buddyinfo(&k, &View::host());
        for z in k.mem().zones() {
            assert!(s.contains(z.name), "missing zone {}", z.name);
        }
        // Each row: 4 header tokens + 11 orders.
        let row = s.lines().last().unwrap();
        assert_eq!(row.split_whitespace().count(), 4 + 11);
    }

    #[test]
    fn swaps_and_partitions_render() {
        let k = kernel();
        let sw = swaps(&k, &View::host());
        assert!(sw.contains("partition"), "testbed has swap: {sw}");
        let p = partitions(&k, &View::host());
        assert!(p.contains(" sda\n"));
        assert!(p.contains(" sda1\n"));
    }

    #[test]
    fn cgroups_counts_containers() {
        let mut k = kernel();
        let before = cgroups(&k, &View::host());
        let n_before: u64 = before
            .lines()
            .find(|l| l.starts_with("cpuacct"))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|v| v.parse().ok())
            .unwrap();
        k.create_container_env("c1").unwrap();
        k.create_container_env("c2").unwrap();
        let after = cgroups(&k, &View::host());
        let n_after: u64 = after
            .lines()
            .find(|l| l.starts_with("cpuacct"))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(n_after, n_before + 2 + 1, "docker parent + 2 containers");
    }

    #[test]
    fn filesystems_is_static() {
        let mut k = kernel();
        let a = filesystems(&k, &View::host());
        k.advance_secs(5);
        assert_eq!(a, filesystems(&k, &View::host()));
    }
}
