//! Per-file render handlers.
//!
//! Each submodule groups handlers for one part of the tree. Handlers that
//! implement the paper's leakage channels read *global* kernel state and
//! ignore the view's namespaces — with a `LEAK` note in their docs citing
//! the corresponding Table I row. Properly namespaced files consult the
//! view's namespace set.

pub mod proc_basic;
pub mod proc_irq;
pub mod proc_kernel;
pub mod proc_misc;
pub mod proc_pid;
pub mod proc_sched;
pub mod proc_vm;
pub mod sys_cgroup;
pub mod sys_node;
pub mod sys_power;

/// Formats bytes as the `kB` unit used throughout procfs.
pub(crate) fn kb(bytes: u64) -> u64 {
    bytes / 1024
}

/// Converts nanoseconds to USER_HZ jiffies (100 Hz) for `/proc/stat`.
pub(crate) fn jiffies(ns: u64) -> u64 {
    ns / 10_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert_eq!(kb(4096), 4);
        assert_eq!(jiffies(1_000_000_000), 100);
    }
}
