//! `/proc/interrupts` and `/proc/softirqs`.

use std::fmt::Write as _;

use simkernel::irq::SOFTIRQ_NAMES;
use simkernel::Kernel;

use crate::view::View;

/// `/proc/interrupts`. LEAK (Table I): per-IRQ per-CPU counts for the
/// whole host; the handler has no notion of namespaces.
pub fn interrupts(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    interrupts_into(k, view, &mut out);
    out
}

/// [`interrupts`] writing into a caller-provided buffer.
pub fn interrupts_into(k: &Kernel, _view: &View, out: &mut String) {
    let ncpus = k.config().cpus as usize;
    out.push_str("     ");
    for c in 0..ncpus {
        let _ = write!(out, "{:>11}", format!("CPU{c}"));
    }
    out.push('\n');
    for line in k.irq().lines() {
        let _ = write!(out, "{:>4}:", line.label);
        for c in 0..ncpus {
            let _ = write!(out, "{:>11}", line.per_cpu.get(c).copied().unwrap_or(0));
        }
        let _ = writeln!(out, "   {}", line.description);
    }
}

/// `/proc/softirqs`. LEAK (Table I): per-kind per-CPU softirq counts;
/// flagged for both co-residence and DoS potential in the paper.
pub fn softirqs(k: &Kernel, view: &View) -> String {
    let mut out = String::new();
    softirqs_into(k, view, &mut out);
    out
}

/// [`softirqs`] writing into a caller-provided buffer.
pub fn softirqs_into(k: &Kernel, _view: &View, out: &mut String) {
    let ncpus = k.config().cpus as usize;
    out.push_str("                ");
    for c in 0..ncpus {
        let _ = write!(out, "{:>11}", format!("CPU{c}"));
    }
    out.push('\n');
    for (name, counts) in SOFTIRQ_NAMES.iter().zip(k.irq().softirqs()) {
        let _ = write!(out, "{:>12}:   ", name);
        for c in 0..ncpus {
            let _ = write!(out, "{:>11}", counts.get(c).copied().unwrap_or(0));
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::MachineConfig;
    use workloads::models;

    #[test]
    fn interrupts_table_shape() {
        let mut k = Kernel::new(MachineConfig::small_server(), 1);
        k.spawn_host_process("w", models::prime()).unwrap();
        k.advance_secs(2);
        let s = interrupts(&k, &View::host());
        assert!(s.lines().next().unwrap().contains("CPU3"));
        assert!(s.contains("LOC:"));
        assert!(s.contains("Local timer interrupts"));
    }

    #[test]
    fn softirqs_has_all_kinds() {
        let mut k = Kernel::new(MachineConfig::small_server(), 1);
        k.advance_secs(1);
        let s = softirqs(&k, &View::host());
        for name in SOFTIRQ_NAMES {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
