//! `/proc/{modules,zoneinfo,diskstats}` and `/proc/fs/ext4/*/mb_groups`.

use std::fmt::Write as _;

use simkernel::Kernel;

use crate::view::View;

/// `/proc/modules`. LEAK (Table I): the host's loaded-module list. Ranked
/// low for co-residence (fleet-wide images share module lists) but a real
/// information disclosure.
pub fn modules(k: &Kernel, _view: &View) -> String {
    let mut out = String::new();
    for (name, size, refs) in &k.config().modules {
        let _ = writeln!(out, "{name} {size} {refs} - Live 0xffffffffc0000000");
    }
    out
}

/// `/proc/zoneinfo`. LEAK (Table I): physical RAM layout and per-zone free
/// pages of the host.
pub fn zoneinfo(k: &Kernel, _view: &View) -> String {
    let mut out = String::new();
    for z in k.mem().zones() {
        let _ = writeln!(out, "Node {}, zone {:>8}", z.node, z.name);
        let (min, low, high) = z.watermark;
        let _ = writeln!(out, "  pages free     {}", z.free_pages);
        let _ = writeln!(out, "        min      {min}");
        let _ = writeln!(out, "        low      {low}");
        let _ = writeln!(out, "        high     {high}");
        let _ = writeln!(out, "        spanned  {}", z.spanned_pages);
        let _ = writeln!(out, "        present  {}", z.present_pages);
        let _ = writeln!(out, "        managed  {}", z.managed_pages);
        let _ = writeln!(out, "      nr_free_pages {}", z.free_pages);
        let _ = writeln!(out, "      nr_zone_inactive_anon {}", z.managed_pages / 16);
        let _ = writeln!(out, "      nr_zone_active_anon {}", z.managed_pages / 12);
    }
    out
}

/// `/proc/fs/ext4/<part>/mb_groups`. LEAK (Table II): the multiblock
/// allocator's per-group free counts — host disk allocation activity.
pub fn mb_groups(k: &Kernel, _view: &View, part: &str) -> Option<String> {
    let (_, groups) = k
        .fs()
        .ext4_partitions()
        .iter()
        .find(|(name, _)| name == part)?;
    let mut out =
        String::from("#group: free  frags first [ 2^0   2^1   2^2   2^3   2^4   2^5   2^6 ]\n");
    for (i, g) in groups.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{i:<5}: {:<5} {:<5} {:<5} [ {:<5} {:<5} {:<5} {:<5} {:<5} {:<5} {:<5} ]",
            g.free_blocks,
            g.fragments,
            g.first_free,
            g.free_blocks / 2,
            g.free_blocks / 4,
            g.free_blocks / 8,
            g.free_blocks / 16,
            g.free_blocks / 32,
            g.free_blocks / 64,
            g.free_blocks / 128,
        );
    }
    Some(out)
}

/// `/proc/diskstats`: host block-device IO counters (global; included for
/// tree completeness).
pub fn diskstats(k: &Kernel, _view: &View) -> String {
    let io = k.stats().total_io_bytes;
    let mut out = String::new();
    for (i, (name, _)) in k.config().disks.iter().enumerate() {
        let reads = io / 4096 / 3 + 12_000;
        let writes = io / 4096 * 2 / 3 + 8_000;
        let _ = writeln!(
            out,
            "   8      {} {name} {reads} 0 {} 0 {writes} 0 {} 0 0 0 0",
            i * 16,
            reads * 8,
            writes * 8,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::MachineConfig;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(MachineConfig::small_server(), 2);
        k.advance_secs(1);
        k
    }

    #[test]
    fn modules_lists_config_modules() {
        let k = kernel();
        let s = modules(&k, &View::host());
        assert!(s.contains("veth"));
        assert!(s.contains("intel_rapl"));
        assert!(s.contains("Live"));
    }

    #[test]
    fn zoneinfo_covers_all_zones() {
        let k = kernel();
        let s = zoneinfo(&k, &View::host());
        assert!(s.contains("zone      DMA"));
        assert!(s.contains("zone   Normal"));
        assert!(s.contains("pages free"));
    }

    #[test]
    fn mb_groups_only_for_known_partitions() {
        let k = kernel();
        assert!(mb_groups(&k, &View::host(), "sda1").is_some());
        assert!(mb_groups(&k, &View::host(), "sdz9").is_none());
        let s = mb_groups(&k, &View::host(), "sda1").unwrap();
        assert!(s.lines().count() > 8);
        assert!(s.starts_with("#group:"));
    }

    #[test]
    fn diskstats_one_line_per_disk() {
        let k = kernel();
        let s = diskstats(&k, &View::host());
        assert_eq!(s.lines().count(), k.config().disks.len());
        assert!(s.contains(" sda "));
    }
}
