//! Pseudo-filesystem error type.

use std::error::Error;
use std::fmt;

/// Errors returned by pseudo-file reads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsError {
    /// The path does not exist in this view (absent hardware, unknown pid,
    /// or a path outside the modeled tree).
    NotFound(String),
    /// A cloud masking policy denied the read (the paper's first-stage
    /// defense: AppArmor rules / unreadable bind mounts).
    PermissionDenied(String),
}

impl FsError {
    /// The path the error refers to.
    pub fn path(&self) -> &str {
        match self {
            FsError::NotFound(p) | FsError::PermissionDenied(p) => p,
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
        }
    }
}

impl Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_path() {
        let e = FsError::NotFound("/proc/nope".into());
        assert!(e.to_string().contains("/proc/nope"));
        assert_eq!(e.path(), "/proc/nope");
        let d = FsError::PermissionDenied("/proc/stat".into());
        assert!(d.to_string().starts_with("permission denied"));
    }
}
