//! Pseudo-filesystem error type.

use std::error::Error;
use std::fmt;

/// Errors returned by pseudo-file reads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsError {
    /// The path does not exist in this view (absent hardware, unknown pid,
    /// or a path outside the modeled tree).
    NotFound(String),
    /// A cloud masking policy denied the read (the paper's first-stage
    /// defense: AppArmor rules / unreadable bind mounts).
    PermissionDenied(String),
    /// A transient I/O error (`EIO`): the read failed this instant but may
    /// succeed on retry — injected by an active fault window, never
    /// fabricated data.
    Io(String),
    /// The read came back shorter than the file (torn read during an
    /// update, or an injected short-read fault). The partial bytes are
    /// withheld rather than passed off as the full file.
    Truncated(String),
}

impl FsError {
    /// The path the error refers to.
    pub fn path(&self) -> &str {
        match self {
            FsError::NotFound(p)
            | FsError::PermissionDenied(p)
            | FsError::Io(p)
            | FsError::Truncated(p) => p,
        }
    }

    /// Whether a bounded retry can reasonably succeed: true for the
    /// transient classes ([`FsError::Io`], [`FsError::Truncated`]), false
    /// for absence and policy denials.
    pub fn is_transient(&self) -> bool {
        matches!(self, FsError::Io(_) | FsError::Truncated(_))
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            FsError::Io(p) => write!(f, "input/output error: {p}"),
            FsError::Truncated(p) => write!(f, "short read: {p}"),
        }
    }
}

impl Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_path() {
        let e = FsError::NotFound("/proc/nope".into());
        assert!(e.to_string().contains("/proc/nope"));
        assert_eq!(e.path(), "/proc/nope");
        let d = FsError::PermissionDenied("/proc/stat".into());
        assert!(d.to_string().starts_with("permission denied"));
    }

    #[test]
    fn transience_classification() {
        assert!(FsError::Io("/proc/stat".into()).is_transient());
        assert!(FsError::Truncated("/proc/stat".into()).is_transient());
        assert!(!FsError::NotFound("/proc/stat".into()).is_transient());
        assert!(!FsError::PermissionDenied("/proc/stat".into()).is_transient());
        assert_eq!(FsError::Io("/proc/stat".into()).path(), "/proc/stat");
    }
}
