//! Path dispatch and tree enumeration.

use simkernel::{dep, Kernel, RenderHit};

use crate::error::FsError;
use crate::faultfx;
use crate::registry;
use crate::render::{
    proc_basic, proc_irq, proc_kernel, proc_misc, proc_pid, proc_sched, proc_vm, sys_cgroup,
    sys_node, sys_power,
};
use crate::view::{MaskAction, View};

/// Reserved cache key for directory listings — NUL-prefixed so it can
/// never collide with a real path.
const LIST_KEY: &str = "\u{0}list";

/// Subsystems [`PseudoFs::list`] consults: hardware presence and package
/// counts, ext4 partitions, visible pids, and NUMA topology. Pid
/// visibility is read through the namespace registry, and every spawn
/// or kill bumps NS, so the process-table bit is not needed here.
pub const LIST_DEPS: u32 = dep::HW | dep::FS | dep::NS | dep::MEM;

/// The dependency mask to tag a cached render of `path` with: the
/// registered route's declared deps, or every subsystem for paths
/// outside the registry (conservative, never stale).
fn deps_for(path: &str) -> u32 {
    registry::route_for(path).map_or(dep::ALL, |r| r.deps)
}

/// The pseudo filesystem: a stateless router over the kernel's state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PseudoFs;

/// Records a masked-path denial (namespace-filter hit) for the trace.
fn note_denied(k: &Kernel, path: &str) {
    if !simtrace::enabled() {
        return;
    }
    simtrace::counters::add("pseudofs.denied", 1);
    if let Some(tr) = k.tracer() {
        tr.emit(
            k.lifetime_ns(),
            simtrace::TraceEvent::MaskDenied {
                path: path.to_string(),
            },
        );
    }
}

/// Records a successful channel read (per-channel counter + probe-phase
/// profile + event). Probes are instantaneous in sim time, so the probe
/// phase accumulates event counts against zero virtual nanoseconds.
fn note_read(k: &Kernel, path: &str, bytes: usize) {
    if !simtrace::enabled() {
        return;
    }
    simtrace::counters::add_channel("pseudofs.read", path, 1);
    simtrace::profile::record("probe", 0, 1);
    if let Some(tr) = k.tracer() {
        tr.emit(
            k.lifetime_ns(),
            simtrace::TraceEvent::PseudofsRead {
                path: path.to_string(),
                bytes: bytes as u64,
            },
        );
    }
}

/// Outcome of a [`PseudoFs::read_capped`] read against a bounded buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// The whole file fit: `len` bytes were written.
    Complete {
        /// Bytes written (the full rendered length).
        len: usize,
    },
    /// The buffer cap was smaller than the file; `written` bytes of a
    /// `total`-byte file were kept. `written <= cap <= total`, with
    /// `written` possibly below the cap to respect a UTF-8 boundary.
    Short {
        /// Bytes actually kept in the buffer.
        written: usize,
        /// Full rendered length of the file.
        total: usize,
    },
}

impl ReadStatus {
    /// Whether the read was cut short by the cap.
    pub fn is_short(&self) -> bool {
        matches!(self, ReadStatus::Short { .. })
    }
}

impl PseudoFs {
    /// Creates the (stateless) filesystem.
    pub fn new() -> Self {
        PseudoFs
    }

    /// Reads `path` in the given view.
    ///
    /// # Errors
    ///
    /// * [`FsError::PermissionDenied`] when the view's masking policy
    ///   denies the path (first-stage defense / cloud hardening).
    /// * [`FsError::NotFound`] for paths outside the modeled tree, absent
    ///   hardware (no RAPL/DTS), or pids invisible to the reader.
    /// * [`FsError::Io`] / [`FsError::Truncated`] when the kernel's
    ///   installed fault plan has an active window covering this path —
    ///   transient: the same read can succeed once the window passes.
    pub fn read(&self, k: &Kernel, view: &View, path: &str) -> Result<String, FsError> {
        // Delegates to `read_into` so both entry points share one
        // cache-coherent path (the hand-written `_into` fast renderers
        // produce the same bytes as their `dispatch` counterparts).
        let mut out = String::new();
        self.read_into(k, view, path, &mut out)?;
        Ok(out)
    }

    /// Reads `path` into `buf`, clearing it first and reusing its
    /// allocation. Scan loops that read thousands of files (the
    /// cross-validator's two-context walk, the Table II metric windows)
    /// use this to avoid a fresh `String` per read; for the hottest
    /// channels the renderer writes straight into `buf`.
    ///
    /// # Errors
    ///
    /// Same as [`PseudoFs::read`]. On error `buf` is left empty.
    pub fn read_into(
        &self,
        k: &Kernel,
        view: &View,
        path: &str,
        buf: &mut String,
    ) -> Result<(), FsError> {
        buf.clear();
        if !k.render_caching() {
            if view.mask_action(path) == Some(MaskAction::Deny) {
                note_denied(k, path);
                return Err(FsError::PermissionDenied(path.to_string()));
            }
            if let Some(e) = faultfx::injected_error(k, path) {
                return Err(e);
            }
            if !self.render_into(k, view, path, buf) {
                return Err(FsError::NotFound(path.to_string()));
            }
            faultfx::distort(k, path, buf);
            note_read(k, path, buf.len());
            return Ok(());
        }

        // Cache consult. Fault effects are applied strictly *after* the
        // cache (errors abort before store; distortion happens on the
        // caller's copy, never the cached bytes), so injected EIO and
        // sensor noise can never poison an entry — the ordering the
        // cached-vs-uncached byte gates depend on.
        let view_fp = view.fingerprint();
        match k.render_cache_get(view_fp, path) {
            Some(RenderHit::Denied) => {
                note_denied(k, path);
                Err(FsError::PermissionDenied(path.to_string()))
            }
            Some(RenderHit::Fresh(bytes)) => {
                simtrace::counters::add("pseudofs.cache_hit", 1);
                if let Some(e) = faultfx::injected_error(k, path) {
                    return Err(e);
                }
                buf.push_str(&bytes);
                faultfx::distort(k, path, buf);
                note_read(k, path, buf.len());
                Ok(())
            }
            hit => {
                simtrace::counters::add("pseudofs.cache_miss", 1);
                // A stale entry still proves this view is not denied the
                // path (denials cache as `Denied` and never expire), so
                // the policy's glob walk is skipped on every revalidation.
                if hit.is_none() && view.mask_action(path) == Some(MaskAction::Deny) {
                    k.render_cache_store_denied(view_fp, path);
                    note_denied(k, path);
                    return Err(FsError::PermissionDenied(path.to_string()));
                }
                if let Some(e) = faultfx::injected_error(k, path) {
                    return Err(e);
                }
                if !self.render_into(k, view, path, buf) {
                    return Err(FsError::NotFound(path.to_string()));
                }
                let rendered = std::sync::Arc::new(buf.clone());
                k.render_cache_store_bytes(view_fp, path, deps_for(path), &rendered);
                faultfx::distort(k, path, buf);
                note_read(k, path, buf.len());
                Ok(())
            }
        }
    }

    /// Reads `path` as a shared handle: a cache hit costs one refcount
    /// bump and zero byte copies. The differential scanners read both
    /// contexts through this — their inner loop is then hash lookups and
    /// content compares, never body copies. Falls back to an owned
    /// render (wrapped once) when caching is off, the entry is stale, or
    /// an active fault plan distorts this path.
    ///
    /// # Errors
    ///
    /// Same as [`PseudoFs::read`].
    pub fn read_shared(
        &self,
        k: &Kernel,
        view: &View,
        path: &str,
    ) -> Result<std::sync::Arc<String>, FsError> {
        if !k.render_caching() {
            let mut buf = String::new();
            self.read_into(k, view, path, &mut buf)?;
            return Ok(std::sync::Arc::new(buf));
        }
        let view_fp = view.fingerprint();
        match k.render_cache_get(view_fp, path) {
            Some(RenderHit::Denied) => {
                note_denied(k, path);
                Err(FsError::PermissionDenied(path.to_string()))
            }
            Some(RenderHit::Fresh(bytes)) => {
                simtrace::counters::add("pseudofs.cache_hit", 1);
                if let Some(e) = faultfx::injected_error(k, path) {
                    return Err(e);
                }
                let out = if k.fault_plan().is_some() {
                    // Distortion mutates the caller's copy, never the
                    // cached bytes — fall back to an owned body.
                    let mut owned = (*bytes).clone();
                    faultfx::distort(k, path, &mut owned);
                    std::sync::Arc::new(owned)
                } else {
                    bytes
                };
                note_read(k, path, out.len());
                Ok(out)
            }
            hit => {
                simtrace::counters::add("pseudofs.cache_miss", 1);
                if hit.is_none() && view.mask_action(path) == Some(MaskAction::Deny) {
                    k.render_cache_store_denied(view_fp, path);
                    note_denied(k, path);
                    return Err(FsError::PermissionDenied(path.to_string()));
                }
                if let Some(e) = faultfx::injected_error(k, path) {
                    return Err(e);
                }
                let mut buf = String::new();
                if !self.render_into(k, view, path, &mut buf) {
                    return Err(FsError::NotFound(path.to_string()));
                }
                let mut rendered = std::sync::Arc::new(buf);
                k.render_cache_store_bytes(view_fp, path, deps_for(path), &rendered);
                if k.fault_plan().is_some() {
                    let mut owned = (*rendered).clone();
                    faultfx::distort(k, path, &mut owned);
                    rendered = std::sync::Arc::new(owned);
                }
                note_read(k, path, rendered.len());
                Ok(rendered)
            }
        }
    }

    /// Renders `path` into `buf` (fast `_into` arm when one exists,
    /// otherwise the dispatch table); `false` means the path does not
    /// resolve in this view.
    fn render_into(&self, k: &Kernel, view: &View, path: &str, buf: &mut String) -> bool {
        match path {
            "/proc/meminfo" => proc_basic::meminfo_into(k, view, buf),
            "/proc/stat" => proc_basic::stat_into(k, view, buf),
            "/proc/uptime" => proc_basic::uptime_into(k, view, buf),
            "/proc/loadavg" => proc_basic::loadavg_into(k, view, buf),
            "/proc/interrupts" => proc_irq::interrupts_into(k, view, buf),
            "/proc/softirqs" => proc_irq::softirqs_into(k, view, buf),
            "/proc/schedstat" => proc_sched::schedstat_into(k, view, buf),
            "/proc/sched_debug" => proc_sched::sched_debug_into(k, view, buf),
            "/proc/timer_list" => proc_sched::timer_list_into(k, view, buf),
            _ => match self.dispatch(k, view, path) {
                Some(s) => *buf = s,
                None => return false,
            },
        }
        true
    }

    /// [`PseudoFs::read_into`] against a bounded destination: at most
    /// `cap` bytes are kept in `buf` (cut back to a UTF-8 character
    /// boundary), and the returned [`ReadStatus`] says whether the caller
    /// got the whole file. Never panics, for any `cap` including zero.
    ///
    /// # Errors
    ///
    /// Same as [`PseudoFs::read_into`]. On error `buf` is left empty.
    pub fn read_capped(
        &self,
        k: &Kernel,
        view: &View,
        path: &str,
        buf: &mut String,
        cap: usize,
    ) -> Result<ReadStatus, FsError> {
        self.read_into(k, view, path, buf)?;
        let total = buf.len();
        if total <= cap {
            return Ok(ReadStatus::Complete { len: total });
        }
        let mut cut = cap;
        while cut > 0 && !buf.is_char_boundary(cut) {
            cut -= 1;
        }
        buf.truncate(cut);
        Ok(ReadStatus::Short {
            written: cut,
            total,
        })
    }

    /// Enumerates every readable file path in this view, sorted — the
    /// recursive exploration step of the paper's detection framework.
    /// Deny-masked paths are excluded (they are unreadable in the cloud).
    pub fn list(&self, k: &Kernel, view: &View) -> Vec<String> {
        self.list_shared(k, view).as_ref().clone()
    }

    /// [`PseudoFs::list`] as a shared handle: a cache hit costs one
    /// refcount bump instead of deep-cloning a few hundred path strings.
    /// Scan loops that re-list every pass (the cross-validator, the
    /// metric windows) read through this.
    pub fn list_shared(&self, k: &Kernel, view: &View) -> std::sync::Arc<Vec<String>> {
        if k.render_caching() {
            let view_fp = view.fingerprint();
            if let Some(paths) = k.render_cache_get_paths(view_fp, LIST_KEY) {
                simtrace::counters::add("pseudofs.cache_hit", 1);
                return paths;
            }
            simtrace::counters::add("pseudofs.cache_miss", 1);
            let paths = std::sync::Arc::new(self.list_uncached(k, view));
            k.render_cache_store_paths(view_fp, LIST_KEY, LIST_DEPS, &paths);
            return paths;
        }
        std::sync::Arc::new(self.list_uncached(k, view))
    }

    fn list_uncached(&self, k: &Kernel, view: &View) -> Vec<String> {
        let mut paths = Vec::with_capacity(256);
        let mut push = |p: String| {
            if view.mask_action(&p) != Some(MaskAction::Deny) {
                paths.push(p);
            }
        };

        for p in [
            "/proc/cpuinfo",
            "/proc/meminfo",
            "/proc/stat",
            "/proc/uptime",
            "/proc/version",
            "/proc/loadavg",
            "/proc/interrupts",
            "/proc/softirqs",
            "/proc/schedstat",
            "/proc/sched_debug",
            "/proc/timer_list",
            "/proc/locks",
            "/proc/modules",
            "/proc/zoneinfo",
            "/proc/diskstats",
            "/proc/sys/fs/dentry-state",
            "/proc/sys/fs/inode-nr",
            "/proc/sys/fs/file-nr",
            "/proc/sys/kernel/random/boot_id",
            "/proc/sys/kernel/random/entropy_avail",
            "/proc/sys/kernel/random/uuid",
            "/proc/sys/kernel/hostname",
            "/proc/sys/kernel/osrelease",
            "/proc/self/status",
            "/proc/self/cgroup",
            "/proc/net/dev",
            "/proc/mounts",
            "/proc/net/snmp",
            "/proc/net/tcp",
            "/proc/sys/kernel/pid_max",
            "/proc/sys/kernel/threads-max",
            "/proc/sys/vm/overcommit_memory",
            "/proc/sys/vm/swappiness",
            "/proc/vmstat",
            "/proc/slabinfo",
            "/proc/buddyinfo",
            "/proc/swaps",
            "/proc/partitions",
            "/proc/filesystems",
            "/proc/cgroups",
            "/sys/devices/system/cpu/online",
            "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
            "/sys/fs/cgroup/net_prio/net_prio.prioidx",
            "/sys/fs/cgroup/cpuacct/cpuacct.usage",
            "/sys/fs/cgroup/cpuacct/cpuacct.usage_percpu",
            "/sys/fs/cgroup/memory/memory.usage_in_bytes",
            "/sys/fs/cgroup/memory/memory.max_usage_in_bytes",
        ] {
            push(p.to_string());
        }

        let ncpus = k.config().cpus as usize;
        for c in 0..ncpus {
            push(format!(
                "/proc/sys/kernel/sched_domain/cpu{c}/domain0/max_newidle_lb_cost"
            ));
            for s in 0..simkernel::hw::IDLE_STATE_NAMES.len() {
                for f in ["name", "usage", "time"] {
                    push(format!(
                        "/sys/devices/system/cpu/cpu{c}/cpuidle/state{s}/{f}"
                    ));
                }
            }
            for f in ["scaling_cur_freq", "cpuinfo_max_freq"] {
                push(format!("/sys/devices/system/cpu/cpu{c}/cpufreq/{f}"));
            }
        }

        for (disk, _) in &k.config().disks {
            push(format!("/sys/block/{disk}/stat"));
        }
        if k.hw().has_coretemp() {
            push("/sys/class/thermal/thermal_zone0/temp".to_string());
        }

        for (part, _) in k.fs().ext4_partitions() {
            push(format!("/proc/fs/ext4/{part}/mb_groups"));
        }

        for (_, ns_pid) in proc_pid::visible_pids(k, view) {
            for f in ["status", "stat", "cmdline", "io", "sched"] {
                push(format!("/proc/{ns_pid}/{f}"));
            }
        }

        if k.rapl().is_present() {
            for p in 0..k.rapl().package_count() {
                for f in ["name", "energy_uj", "max_energy_range_uj"] {
                    push(format!("/sys/class/powercap/intel-rapl:{p}/{f}"));
                }
                for d in 0..2 {
                    for f in ["name", "energy_uj"] {
                        push(format!(
                            "/sys/class/powercap/intel-rapl:{p}/intel-rapl:{p}:{d}/{f}"
                        ));
                    }
                }
            }
        }

        if k.hw().has_coretemp() {
            let per_pkg = k.config().cpus_per_package() as usize;
            for pkg in 0..k.rapl().package_count().max(1) {
                for t in 1..=(per_pkg + 1) {
                    push(format!(
                        "/sys/devices/platform/coretemp.{pkg}/hwmon/hwmon{pkg}/temp{t}_input"
                    ));
                }
            }
        }

        for n in 0..k.mem().numa_nodes() as usize {
            for f in ["numastat", "vmstat", "meminfo"] {
                push(format!("/sys/devices/system/node/node{n}/{f}"));
            }
        }

        paths.sort();
        paths
    }

    /// Lists the immediate children of `dir` in this view — what `ls`
    /// inside the container would show. Directories appear with a
    /// trailing `/`.
    pub fn list_dir(&self, k: &Kernel, view: &View, dir: &str) -> Vec<String> {
        let prefix = format!("{}/", dir.trim_end_matches('/'));
        let mut out: Vec<String> = self
            .list(k, view)
            .into_iter()
            .filter_map(|p| {
                let rest = p.strip_prefix(&prefix)?;
                Some(match rest.split_once('/') {
                    Some((child, _)) => format!("{child}/"),
                    None => rest.to_string(),
                })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn dispatch(&self, k: &Kernel, view: &View, path: &str) -> Option<String> {
        match path {
            "/proc/cpuinfo" => return Some(proc_basic::cpuinfo(k, view)),
            "/proc/meminfo" => return Some(proc_basic::meminfo(k, view)),
            "/proc/stat" => return Some(proc_basic::stat(k, view)),
            "/proc/uptime" => return Some(proc_basic::uptime(k, view)),
            "/proc/version" => return Some(proc_basic::version(k, view)),
            "/proc/loadavg" => return Some(proc_basic::loadavg(k, view)),
            "/proc/interrupts" => return Some(proc_irq::interrupts(k, view)),
            "/proc/softirqs" => return Some(proc_irq::softirqs(k, view)),
            "/proc/schedstat" => return Some(proc_sched::schedstat(k, view)),
            "/proc/sched_debug" => return Some(proc_sched::sched_debug(k, view)),
            "/proc/timer_list" => return Some(proc_sched::timer_list(k, view)),
            "/proc/locks" => return Some(proc_sched::locks(k, view)),
            "/proc/modules" => return Some(proc_misc::modules(k, view)),
            "/proc/zoneinfo" => return Some(proc_misc::zoneinfo(k, view)),
            "/proc/diskstats" => return Some(proc_misc::diskstats(k, view)),
            "/proc/sys/fs/dentry-state" => return Some(proc_kernel::dentry_state(k, view)),
            "/proc/sys/fs/inode-nr" => return Some(proc_kernel::inode_nr(k, view)),
            "/proc/sys/fs/file-nr" => return Some(proc_kernel::file_nr(k, view)),
            "/proc/sys/kernel/random/boot_id" => return Some(proc_kernel::boot_id(k, view)),
            "/proc/sys/kernel/random/entropy_avail" => {
                return Some(proc_kernel::entropy_avail(k, view))
            }
            "/proc/sys/kernel/random/uuid" => return Some(proc_kernel::uuid(k, view)),
            "/proc/sys/kernel/hostname" => return Some(proc_kernel::hostname(k, view)),
            "/proc/sys/kernel/osrelease" => return Some(proc_kernel::osrelease(k, view)),
            "/proc/self/status" => return Some(proc_pid::self_status(k, view)),
            "/proc/self/cgroup" => return Some(proc_pid::self_cgroup(k, view)),
            "/proc/net/dev" => return Some(proc_pid::net_dev(k, view)),
            "/proc/mounts" => return Some(proc_pid::mounts(k, view)),
            "/proc/net/snmp" => return Some(proc_pid::net_snmp(k, view)),
            "/proc/net/tcp" => return Some(proc_pid::net_tcp(k, view)),
            "/proc/sys/kernel/pid_max" => return Some(proc_kernel::pid_max(k, view)),
            "/proc/sys/kernel/threads-max" => return Some(proc_kernel::threads_max(k, view)),
            "/proc/sys/vm/overcommit_memory" => {
                return Some(proc_kernel::overcommit_memory(k, view))
            }
            "/proc/sys/vm/swappiness" => return Some(proc_kernel::swappiness(k, view)),
            "/proc/vmstat" => return Some(proc_vm::vmstat(k, view)),
            "/proc/slabinfo" => return Some(proc_vm::slabinfo(k, view)),
            "/proc/buddyinfo" => return Some(proc_vm::buddyinfo(k, view)),
            "/proc/swaps" => return Some(proc_vm::swaps(k, view)),
            "/proc/partitions" => return Some(proc_vm::partitions(k, view)),
            "/proc/filesystems" => return Some(proc_vm::filesystems(k, view)),
            "/proc/cgroups" => return Some(proc_vm::cgroups(k, view)),
            "/sys/devices/system/cpu/online" => return Some(sys_power::cpu_online(k, view)),
            "/sys/fs/cgroup/net_prio/net_prio.ifpriomap" => {
                return Some(sys_cgroup::ifpriomap(k, view))
            }
            "/sys/fs/cgroup/net_prio/net_prio.prioidx" => {
                return Some(sys_cgroup::prioidx(k, view))
            }
            "/sys/fs/cgroup/cpuacct/cpuacct.usage" => {
                return Some(sys_cgroup::cpuacct_usage(k, view))
            }
            "/sys/fs/cgroup/cpuacct/cpuacct.usage_percpu" => {
                return Some(sys_cgroup::cpuacct_usage_percpu(k, view))
            }
            "/sys/fs/cgroup/memory/memory.usage_in_bytes" => {
                return Some(sys_cgroup::memory_usage(k, view))
            }
            "/sys/fs/cgroup/memory/memory.max_usage_in_bytes" => {
                return Some(sys_cgroup::memory_max_usage(k, view))
            }
            _ => {}
        }

        let segs: Vec<&str> = path.trim_start_matches('/').split('/').collect();
        match segs.as_slice() {
            // /proc/sys/kernel/sched_domain/cpu{c}/domain0/max_newidle_lb_cost
            ["proc", "sys", "kernel", "sched_domain", cpu, "domain0", "max_newidle_lb_cost"] => {
                let c: usize = cpu.strip_prefix("cpu")?.parse().ok()?;
                proc_kernel::max_newidle_lb_cost(k, view, c)
            }
            // /proc/fs/ext4/{part}/mb_groups
            ["proc", "fs", "ext4", part, "mb_groups"] => proc_misc::mb_groups(k, view, part),
            // /proc/{pid}/{status,stat,cmdline,io,sched}
            ["proc", pid, file] => {
                let p: u32 = pid.parse().ok()?;
                match *file {
                    "status" => proc_pid::pid_status(k, view, p),
                    "stat" => proc_pid::pid_stat(k, view, p),
                    "cmdline" => proc_pid::pid_cmdline(k, view, p),
                    "io" => proc_pid::pid_io(k, view, p),
                    "sched" => proc_pid::pid_sched(k, view, p),
                    _ => None,
                }
            }
            // /sys/block/{disk}/stat
            ["sys", "block", disk, "stat"] => sys_power::block_stat(k, view, disk),
            // /sys/class/thermal/thermal_zone{z}/temp
            ["sys", "class", "thermal", zone, "temp"] => {
                let z: usize = zone.strip_prefix("thermal_zone")?.parse().ok()?;
                sys_power::thermal_zone_temp(k, view, z)
            }
            // /sys/devices/system/cpu/cpu{c}/cpufreq/{file}
            ["sys", "devices", "system", "cpu", cpu, "cpufreq", file] => {
                let c: usize = cpu.strip_prefix("cpu")?.parse().ok()?;
                match *file {
                    "scaling_cur_freq" => sys_power::cpufreq_cur(k, view, c),
                    "cpuinfo_max_freq" => sys_power::cpufreq_max(k, view, c),
                    _ => None,
                }
            }
            // /sys/class/powercap/intel-rapl:{p}/{file}
            ["sys", "class", "powercap", dom, file] => {
                let p: usize = dom.strip_prefix("intel-rapl:")?.parse().ok()?;
                match *file {
                    "name" => sys_power::rapl_name(k, view, p),
                    "energy_uj" => sys_power::rapl_package_energy(k, view, p),
                    "max_energy_range_uj" => sys_power::rapl_max_range(k, view, p),
                    _ => None,
                }
            }
            // /sys/class/powercap/intel-rapl:{p}/intel-rapl:{p}:{d}/{file}
            ["sys", "class", "powercap", dom, sub, file] => {
                let p: usize = dom.strip_prefix("intel-rapl:")?.parse().ok()?;
                let rest = sub.strip_prefix("intel-rapl:")?;
                let (p2, d) = rest.split_once(':')?;
                if p2.parse::<usize>().ok()? != p {
                    return None;
                }
                let d: usize = d.parse().ok()?;
                match *file {
                    "name" => sys_power::rapl_subdomain_name(k, view, p, d),
                    "energy_uj" => sys_power::rapl_subdomain_energy(k, view, p, d),
                    _ => None,
                }
            }
            // /sys/devices/platform/coretemp.{pkg}/hwmon/hwmon{h}/temp{n}_input
            ["sys", "devices", "platform", ct, "hwmon", _h, temp] => {
                let pkg: usize = ct.strip_prefix("coretemp.")?.parse().ok()?;
                let n: usize = temp
                    .strip_prefix("temp")?
                    .strip_suffix("_input")?
                    .parse()
                    .ok()?;
                sys_power::coretemp(k, view, pkg, n)
            }
            // /sys/devices/system/cpu/cpu{c}/cpuidle/state{s}/{file}
            ["sys", "devices", "system", "cpu", cpu, "cpuidle", state, file] => {
                let c: usize = cpu.strip_prefix("cpu")?.parse().ok()?;
                let s: usize = state.strip_prefix("state")?.parse().ok()?;
                match *file {
                    "name" => sys_power::cpuidle_name(k, view, c, s),
                    "usage" => sys_power::cpuidle_usage(k, view, c, s),
                    "time" => sys_power::cpuidle_time(k, view, c, s),
                    _ => None,
                }
            }
            // /sys/devices/system/node/node{n}/{file}
            ["sys", "devices", "system", "node", node, file] => {
                let n: usize = node.strip_prefix("node")?.parse().ok()?;
                match *file {
                    "numastat" => sys_node::numastat(k, view, n),
                    "vmstat" => sys_node::vmstat(k, view, n),
                    "meminfo" => sys_node::node_meminfo(k, view, n),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::MaskPolicy;
    use simkernel::kernel::ProcessSpec;
    use simkernel::MachineConfig;
    use workloads::models;

    fn kernel() -> Kernel {
        let mut k = Kernel::new(MachineConfig::small_server(), 9);
        let env = k.create_container_env("c1").unwrap();
        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(2);
        k
    }

    #[test]
    fn every_listed_path_is_readable() {
        let k = kernel();
        let fs = PseudoFs::new();
        let view = View::host();
        let paths = fs.list(&k, &view);
        assert!(paths.len() > 100, "only {} paths", paths.len());
        for p in &paths {
            let content = fs
                .read(&k, &view, p)
                .unwrap_or_else(|e| panic!("listed path unreadable: {e}"));
            // /proc/locks is legitimately empty when nothing holds a lock.
            if p != "/proc/locks" {
                assert!(!content.is_empty(), "{p} rendered empty");
            }
        }
    }

    #[test]
    fn render_caching_is_invisible_to_reads() {
        // Same kernel evolution with caching on and off: every read —
        // repeated reads included, which hit the cache — and every
        // listing must be byte-identical.
        let snap = |caching: bool| {
            let mut k = kernel();
            k.set_render_caching(caching);
            let fs = PseudoFs::new();
            let v = View::host();
            let mut out = String::new();
            for _ in 0..2 {
                for p in fs.list(&k, &v) {
                    out.push_str(&p);
                    out.push('\n');
                    out.push_str(&fs.read(&k, &v, &p).unwrap());
                }
            }
            k.advance_secs(3);
            for p in fs.list(&k, &v) {
                out.push_str(&fs.read(&k, &v, &p).unwrap());
            }
            out
        };
        assert_eq!(snap(true), snap(false));
    }

    #[test]
    fn cached_deny_still_denies_and_other_views_are_unaffected() {
        let mut k = Kernel::new(MachineConfig::small_server(), 9);
        let env = k.create_container_env("c1").unwrap();
        k.advance_secs(1);
        let fs = PseudoFs::new();
        let denied =
            View::container(env.ns, env.cgroups).with_policy(MaskPolicy::none().deny("/proc/stat"));
        let open = View::container(env.ns, env.cgroups);
        for _ in 0..2 {
            assert!(matches!(
                fs.read(&k, &denied, "/proc/stat"),
                Err(FsError::PermissionDenied(_))
            ));
            // Same namespaces, different policy: distinct fingerprint,
            // so the cached deny cannot leak across views.
            assert!(fs.read(&k, &open, "/proc/stat").is_ok());
            assert!(fs.read(&k, &View::host(), "/proc/stat").is_ok());
        }
    }

    #[test]
    fn listing_is_sorted_and_unique() {
        let k = kernel();
        let fs = PseudoFs::new();
        let paths = fs.list(&k, &View::host());
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn unknown_paths_not_found() {
        let k = kernel();
        let fs = PseudoFs::new();
        let err = fs
            .read(&k, &View::host(), "/proc/does_not_exist")
            .unwrap_err();
        assert!(matches!(err, FsError::NotFound(_)));
        assert!(fs
            .read(
                &k,
                &View::host(),
                "/sys/class/powercap/intel-rapl:7/energy_uj"
            )
            .is_err());
    }

    #[test]
    fn deny_policy_blocks_read_and_hides_from_listing() {
        let mut k = Kernel::new(MachineConfig::small_server(), 9);
        let env = k.create_container_env("c1").unwrap();
        k.advance_secs(1);
        let fs = PseudoFs::new();
        let view = View::container(env.ns, env.cgroups)
            .with_policy(MaskPolicy::none().deny("/sys/class/powercap/**"));
        let err = fs
            .read(&k, &view, "/sys/class/powercap/intel-rapl:0/energy_uj")
            .unwrap_err();
        assert!(matches!(err, FsError::PermissionDenied(_)));
        assert!(!fs
            .list(&k, &view)
            .iter()
            .any(|p| p.starts_with("/sys/class/powercap")));
        // Host unaffected.
        assert!(fs
            .read(
                &k,
                &View::host(),
                "/sys/class/powercap/intel-rapl:0/energy_uj"
            )
            .is_ok());
    }

    #[test]
    fn rapl_paths_absent_without_hardware() {
        let mut k = Kernel::new(MachineConfig::legacy_server_no_rapl(), 9);
        k.advance_secs(1);
        let fs = PseudoFs::new();
        let paths = fs.list(&k, &View::host());
        assert!(!paths.iter().any(|p| p.contains("powercap")));
        assert!(!paths.iter().any(|p| p.contains("coretemp")));
    }

    #[test]
    fn container_listing_shows_only_its_pids() {
        let mut k = Kernel::new(MachineConfig::small_server(), 9);
        k.spawn_host_process("hostproc", models::web_service(0.1))
            .unwrap();
        let env = k.create_container_env("c1").unwrap();
        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(1);
        let fs = PseudoFs::new();
        let cont = View::container(env.ns, env.cgroups);
        let cont_paths = fs.list(&k, &cont);
        assert!(cont_paths.contains(&"/proc/1/status".to_string()));
        let host_paths = fs.list(&k, &View::host());
        let host_pid_dirs = host_paths
            .iter()
            .filter(|p| p.ends_with("/cmdline"))
            .count();
        assert_eq!(host_pid_dirs, 2, "host sees both processes");
        let cont_pid_dirs = cont_paths
            .iter()
            .filter(|p| p.ends_with("/cmdline"))
            .count();
        assert_eq!(cont_pid_dirs, 1, "container sees only its own");
    }

    #[test]
    fn list_dir_shows_children_with_directory_markers() {
        let k = kernel();
        let fs = PseudoFs::new();
        let v = View::host();
        let proc_root = fs.list_dir(&k, &v, "/proc");
        assert!(proc_root.contains(&"uptime".to_string()));
        assert!(proc_root.contains(&"sys/".to_string()));
        assert!(
            proc_root.contains(&"1/".to_string()) || proc_root.iter().any(|e| e.ends_with('/'))
        );
        let random = fs.list_dir(&k, &v, "/proc/sys/kernel/random");
        assert_eq!(random, vec!["boot_id", "entropy_avail", "uuid"]);
        assert!(fs.list_dir(&k, &v, "/nonexistent").is_empty());
        // Trailing slash tolerated.
        assert_eq!(
            fs.list_dir(&k, &v, "/proc/sys/fs/"),
            vec!["dentry-state", "file-nr", "inode-nr"]
        );
    }

    #[test]
    fn dynamic_paths_parse_correctly() {
        let k = kernel();
        let fs = PseudoFs::new();
        let v = View::host();
        assert!(fs
            .read(
                &k,
                &v,
                "/proc/sys/kernel/sched_domain/cpu2/domain0/max_newidle_lb_cost"
            )
            .is_ok());
        assert!(fs.read(&k, &v, "/proc/fs/ext4/sda1/mb_groups").is_ok());
        assert!(fs
            .read(
                &k,
                &v,
                "/sys/class/powercap/intel-rapl:0/intel-rapl:0:1/name"
            )
            .unwrap()
            .contains("dram"));
        assert!(fs
            .read(&k, &v, "/sys/devices/system/cpu/cpu1/cpuidle/state4/name")
            .unwrap()
            .contains("C6"));
        assert!(fs
            .read(&k, &v, "/sys/devices/system/node/node0/numastat")
            .is_ok());
        // Mismatched subdomain package id is rejected.
        assert!(fs
            .read(
                &k,
                &v,
                "/sys/class/powercap/intel-rapl:0/intel-rapl:1:0/name"
            )
            .is_err());
    }
}
