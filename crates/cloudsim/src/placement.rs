//! Container placement policies.
//!
//! The attacker's orchestration loop (§IV-C) works *against* the
//! scheduler: it keeps launching and terminating instances until the
//! channels confirm co-residence. How quickly that converges depends on
//! the provider's placement policy, so all three common ones are modeled.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::Host;

/// Placement policy for new instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Least-loaded host first (availability-oriented).
    Spread,
    /// Most-loaded host with remaining capacity first
    /// (consolidation-oriented — the cheapest for attackers).
    BinPack,
    /// Uniformly random among hosts with capacity.
    Random,
}

impl PlacementPolicy {
    /// Picks the index of the host for an instance needing `vcpus`
    /// (capacity: one instance per `vcpus` of the host's CPUs, matching
    /// the paper's 4-core CC1 instances). Returns `None` when full.
    pub fn choose(&self, hosts: &[Host], vcpus: u16, rng: &mut StdRng) -> Option<usize> {
        let capacity = |h: &Host| -> usize { (h.kernel().config().cpus / vcpus.max(1)) as usize };
        let candidates: Vec<usize> = hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.instance_count() < capacity(h))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self {
            PlacementPolicy::Spread => candidates
                .into_iter()
                .min_by_key(|i| (hosts[*i].instance_count(), *i)),
            PlacementPolicy::BinPack => candidates
                .into_iter()
                .max_by_key(|i| (hosts[*i].instance_count(), usize::MAX - *i)),
            PlacementPolicy::Random => {
                let pick = rng.random_range(0..candidates.len());
                Some(candidates[pick])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
    use rand::SeedableRng;

    fn fleet(policy: PlacementPolicy, hosts: usize) -> Cloud {
        Cloud::new(
            CloudConfig::new(CloudProfile::CC1)
                .hosts(hosts)
                .placement(policy)
                .without_background(),
            13,
        )
    }

    #[test]
    fn binpack_fills_one_host_first() {
        let mut c = fleet(PlacementPolicy::BinPack, 3);
        let mut placements = Vec::new();
        for i in 0..4 {
            let id = c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap();
            placements.push(c.instance(id).unwrap().host());
        }
        // 16-cpu hosts, 4 vcpus each → 4 per host; all land on one host.
        assert!(
            placements.windows(2).all(|w| w[0] == w[1]),
            "{placements:?}"
        );
    }

    #[test]
    fn spread_alternates_hosts() {
        let mut c = fleet(PlacementPolicy::Spread, 3);
        let mut hosts = std::collections::HashSet::new();
        for i in 0..3 {
            let id = c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap();
            hosts.insert(c.instance(id).unwrap().host());
        }
        assert_eq!(hosts.len(), 3);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut c = fleet(PlacementPolicy::BinPack, 1);
        // 16 cpus / 4 vcpus = 4 instances.
        for i in 0..4 {
            c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap();
        }
        assert!(matches!(
            c.launch("t", InstanceSpec::new("overflow")),
            Err(crate::CloudError::CapacityExhausted)
        ));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let pick = |seed: u64| {
            let c = fleet(PlacementPolicy::Random, 5);
            let mut rng = StdRng::seed_from_u64(seed);
            PlacementPolicy::Random.choose(c.hosts(), 4, &mut rng)
        };
        assert_eq!(pick(1), pick(1));
    }
}
