//! Container placement policies and the per-shard free-capacity index.
//!
//! The attacker's orchestration loop (§IV-C) works *against* the
//! scheduler: it keeps launching and terminating instances until the
//! channels confirm co-residence. How quickly that converges depends on
//! the provider's placement policy, so all three common ones are modeled.
//!
//! Placement used to be an O(hosts) scan per launch; at datacenter scale
//! that dominates churn-heavy campaigns. `CapacityIndex` keeps a
//! per-shard ordered view of instance counts — updated on every
//! launch/terminate/reboot — so a decision costs O(shards · log span)
//! while producing *exactly* the host the linear scan would have picked
//! (pinned by `index_matches_linear_scan_across_churn` below, including
//! the Random policy's RNG draw).

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Placement policy for new instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Least-loaded host first (availability-oriented).
    Spread,
    /// Most-loaded host with remaining capacity first
    /// (consolidation-oriented — the cheapest for attackers).
    BinPack,
    /// Uniformly random among hosts with capacity.
    Random,
}

impl PlacementPolicy {
    /// Reference implementation: the historical O(hosts) linear scan over
    /// per-host instance counts (`capacity` = instances a host can take,
    /// uniform across the fleet). Kept as the behavioral baseline the
    /// indexed `CapacityIndex::choose` is pinned against.
    pub fn choose_linear(&self, counts: &[u32], capacity: u32, rng: &mut StdRng) -> Option<usize> {
        let candidates: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c < capacity)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self {
            PlacementPolicy::Spread => candidates.into_iter().min_by_key(|i| (counts[*i], *i)),
            PlacementPolicy::BinPack => candidates
                .into_iter()
                .max_by_key(|i| (counts[*i], usize::MAX - *i)),
            PlacementPolicy::Random => {
                let pick = rng.random_range(0..candidates.len());
                Some(candidates[pick])
            }
        }
    }
}

/// Per-shard free-capacity index: instance counts mirrored three ways —
/// a dense `counts` lane, an ordered `(count, slot)` set for the
/// min/max policies, and a count histogram for Random's candidate
/// arithmetic. `set` keeps all three current on launch/terminate/reboot.
#[derive(Debug)]
pub(crate) struct CapacityIndex {
    span: usize,
    shards: Vec<ShardIndex>,
}

#[derive(Debug)]
struct ShardIndex {
    base: u32,
    counts: Vec<u32>,
    by_count: BTreeSet<(u32, u32)>,
    // hist[c] = number of slots currently holding c instances. Counts
    // never exceed the machine's cpu count (capacity ≤ cpus for every
    // vcpu size), so `cpus + 1` buckets suffice.
    hist: Vec<u32>,
}

impl CapacityIndex {
    /// An index over `hosts` empty hosts split into spans of `span`.
    pub(crate) fn new(hosts: usize, span: usize, cpus: u16) -> Self {
        let mut shards = Vec::with_capacity(hosts.div_ceil(span.max(1)));
        let mut base = 0usize;
        while base < hosts {
            let len = span.min(hosts - base);
            let mut hist = vec![0u32; usize::from(cpus) + 1];
            hist[0] = len as u32;
            shards.push(ShardIndex {
                base: base as u32,
                counts: vec![0; len],
                by_count: (0..len as u32).map(|slot| (0, slot)).collect(),
                hist,
            });
            base += len;
        }
        CapacityIndex { span, shards }
    }

    /// Records `host` now holding `count` instances.
    pub(crate) fn set(&mut self, host: usize, count: u32) {
        let sh = &mut self.shards[host / self.span];
        let slot = (host % self.span) as u32;
        let old = sh.counts[slot as usize];
        if old == count {
            return;
        }
        sh.by_count.remove(&(old, slot));
        sh.hist[old as usize] -= 1;
        sh.counts[slot as usize] = count;
        sh.by_count.insert((count, slot));
        sh.hist[count as usize] += 1;
    }

    /// Picks the host for an instance, given the fleet-uniform per-host
    /// `capacity` for its vCPU size. Decision (and, for Random, the RNG
    /// consumption) is identical to
    /// [`PlacementPolicy::choose_linear`] over the same counts.
    pub(crate) fn choose(
        &self,
        policy: PlacementPolicy,
        capacity: u32,
        rng: &mut StdRng,
    ) -> Option<usize> {
        match policy {
            PlacementPolicy::Spread => {
                // Global min (count, host); each shard's first set entry
                // is its local min, already in global-index order.
                let mut best: Option<(u32, usize)> = None;
                for sh in &self.shards {
                    if let Some(&(c, slot)) = sh.by_count.iter().next() {
                        if c < capacity {
                            let g = sh.base as usize + slot as usize;
                            if best.is_none_or(|b| (c, g) < b) {
                                best = Some((c, g));
                            }
                        }
                    }
                }
                best.map(|(_, g)| g)
            }
            PlacementPolicy::BinPack => {
                // Fullest host still below capacity; ties to the lowest
                // host index, as the scan's `usize::MAX - i` key does.
                let mut best: Option<(u32, usize)> = None;
                for sh in &self.shards {
                    let Some(&(c, _)) = sh.by_count.range(..(capacity, 0)).next_back() else {
                        continue;
                    };
                    let &(_, slot) = sh
                        .by_count
                        .range((c, 0)..(c + 1, 0))
                        .next()
                        .expect("a count just seen in the set has a first slot");
                    let g = sh.base as usize + slot as usize;
                    if best.is_none_or(|(bc, bg)| c > bc || (c == bc && g < bg)) {
                        best = Some((c, g));
                    }
                }
                best.map(|(_, g)| g)
            }
            PlacementPolicy::Random => {
                let cap = (capacity as usize).min(self.shards.first().map_or(0, |s| s.hist.len()));
                let per_shard: Vec<u32> = self
                    .shards
                    .iter()
                    .map(|sh| sh.hist[..cap].iter().sum())
                    .collect();
                let total: u32 = per_shard.iter().sum();
                if total == 0 {
                    return None;
                }
                // Same draw the scan makes over its candidate vector;
                // candidate k in global host order is the same host.
                let mut k = rng.random_range(0..total as usize);
                for (sh, &here) in self.shards.iter().zip(&per_shard) {
                    if k >= here as usize {
                        k -= here as usize;
                        continue;
                    }
                    for (slot, &c) in sh.counts.iter().enumerate() {
                        if c < capacity {
                            if k == 0 {
                                return Some(sh.base as usize + slot);
                            }
                            k -= 1;
                        }
                    }
                }
                unreachable!("histogram total covered the drawn candidate index")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
    use rand::{RngExt, SeedableRng};

    fn fleet(policy: PlacementPolicy, hosts: usize) -> Cloud {
        Cloud::new(
            CloudConfig::new(CloudProfile::CC1)
                .hosts(hosts)
                .placement(policy)
                .without_background(),
            13,
        )
    }

    #[test]
    fn binpack_fills_one_host_first() {
        let mut c = fleet(PlacementPolicy::BinPack, 3);
        let mut placements = Vec::new();
        for i in 0..4 {
            let id = c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap();
            placements.push(c.instance(id).unwrap().host());
        }
        // 16-cpu hosts, 4 vcpus each → 4 per host; all land on one host.
        assert!(
            placements.windows(2).all(|w| w[0] == w[1]),
            "{placements:?}"
        );
    }

    #[test]
    fn spread_alternates_hosts() {
        let mut c = fleet(PlacementPolicy::Spread, 3);
        let mut hosts = std::collections::HashSet::new();
        for i in 0..3 {
            let id = c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap();
            hosts.insert(c.instance(id).unwrap().host());
        }
        assert_eq!(hosts.len(), 3);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut c = fleet(PlacementPolicy::BinPack, 1);
        // 16 cpus / 4 vcpus = 4 instances.
        for i in 0..4 {
            c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap();
        }
        assert!(matches!(
            c.launch("t", InstanceSpec::new("overflow")),
            Err(crate::CloudError::CapacityExhausted)
        ));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let pick = |seed: u64| {
            let counts = [0u32, 2, 4, 1, 3];
            let mut rng = StdRng::seed_from_u64(seed);
            PlacementPolicy::Random.choose_linear(&counts, 4, &mut rng)
        };
        assert_eq!(pick(1), pick(1));
    }

    /// The pinning test for the indexed fast path: a scripted churn of
    /// launches (mixed vCPU sizes → mixed capacities) and terminations,
    /// replayed against the linear scan and the index with identical RNG
    /// seeds, must agree on every single decision — across shard spans
    /// that divide the fleet evenly, raggedly, and not at all.
    #[test]
    fn index_matches_linear_scan_across_churn() {
        let hosts = 40;
        let cpus = 16u16;
        for span in [1usize, 3, 8, 64] {
            for policy in [
                PlacementPolicy::Spread,
                PlacementPolicy::BinPack,
                PlacementPolicy::Random,
            ] {
                let mut counts = vec![0u32; hosts];
                let mut index = CapacityIndex::new(hosts, span, cpus);
                let mut script = StdRng::seed_from_u64(0x9a11_0c47 ^ span as u64);
                for step in 0..400 {
                    let vcpus = [1u32, 2, 4, 8, 16][script.random_range(0..5)];
                    let capacity = u32::from(cpus) / vcpus;
                    if script.random_range(0..100) < 60 {
                        let draw = script.random::<u64>();
                        let scan = policy.choose_linear(
                            &counts,
                            capacity,
                            &mut StdRng::seed_from_u64(draw),
                        );
                        let indexed =
                            index.choose(policy, capacity, &mut StdRng::seed_from_u64(draw));
                        assert_eq!(scan, indexed, "span {span} policy {policy:?} step {step}");
                        if let Some(h) = scan {
                            counts[h] += 1;
                            index.set(h, counts[h]);
                        }
                    } else {
                        let occupied: Vec<usize> = counts
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c > 0)
                            .map(|(i, _)| i)
                            .collect();
                        if !occupied.is_empty() {
                            let h = occupied[script.random_range(0..occupied.len())];
                            counts[h] -= 1;
                            index.set(h, counts[h]);
                        }
                    }
                }
            }
        }
    }
}
