//! Multi-tenancy container-cloud simulation.
//!
//! Models the environment the paper's cloud measurements ran against: a
//! fleet of physical hosts (each a full [`simkernel::Kernel`] with its own
//! boot id, uptime, and energy counters), a placement scheduler, per-cloud
//! channel-masking profiles replicating the Table I matrix (CC1–CC5), and
//! the utilization-metered billing models that make continuous power
//! attacks expensive (§IV-B).
//!
//! # Example
//!
//! ```
//! use cloudsim::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
//! use workloads::models;
//!
//! let mut cloud = Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(4), 99);
//! let a = cloud.launch("tenant-a", InstanceSpec::new("web").vcpus(2))?;
//! cloud.exec(a, "nginx", models::web_service(0.3))?;
//! cloud.advance_secs(10);
//! let boot_id = cloud.read_file(a, "/proc/sys/kernel/random/boot_id")?;
//! assert!(!boot_id.is_empty());
//! # Ok::<(), cloudsim::CloudError>(())
//! ```

pub mod billing;
pub mod placement;
pub mod profile;

pub use billing::{BillingModel, TenantBill};
pub use placement::PlacementPolicy;
pub use profile::CloudProfile;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use container_runtime::{ContainerId, ContainerSpec, Runtime, RuntimeError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use simkernel::{HostPid, Kernel, MachineConfig, NANOS_PER_SEC};
use workloads::WorkloadSpec;

/// Identifies a physical host in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host#{}", self.0)
    }
}

/// Identifies a tenant-visible container instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance#{}", self.0)
    }
}

/// Errors from cloud operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CloudError {
    /// Unknown instance.
    NoSuchInstance(InstanceId),
    /// No host has capacity for the request.
    CapacityExhausted,
    /// Underlying runtime failure.
    Runtime(RuntimeError),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::NoSuchInstance(id) => write!(f, "no such instance: {id}"),
            CloudError::CapacityExhausted => write!(f, "no host has remaining capacity"),
            CloudError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl CloudError {
    /// Whether this failure is a transient pseudo-file fault a bounded
    /// retry can outlast. Capacity exhaustion and missing instances are
    /// not transient in this sense — retrying without intervention
    /// cannot fix them.
    pub fn is_transient(&self) -> bool {
        matches!(self, CloudError::Runtime(e) if e.is_transient())
    }
}

impl Error for CloudError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CloudError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for CloudError {
    fn from(e: RuntimeError) -> Self {
        CloudError::Runtime(e)
    }
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    profile: CloudProfile,
    hosts: usize,
    hosts_per_rack: usize,
    machine: MachineConfig,
    placement: PlacementPolicy,
    billing: BillingModel,
    background_per_host: bool,
}

impl CloudConfig {
    /// A config for the given provider profile with paper-scale defaults:
    /// 8 cloud servers per rack, spread placement, utilization billing.
    pub fn new(profile: CloudProfile) -> Self {
        CloudConfig {
            profile,
            hosts: 8,
            hosts_per_rack: 8,
            machine: profile.default_machine(),
            placement: PlacementPolicy::Spread,
            billing: BillingModel::default(),
            background_per_host: true,
        }
    }

    /// Sets the fleet size.
    #[must_use]
    pub fn hosts(mut self, n: usize) -> Self {
        self.hosts = n.max(1);
        self
    }

    /// Sets rack width.
    #[must_use]
    pub fn hosts_per_rack(mut self, n: usize) -> Self {
        self.hosts_per_rack = n.max(1);
        self
    }

    /// Overrides the machine type.
    #[must_use]
    pub fn machine(mut self, m: MachineConfig) -> Self {
        self.machine = m;
        self
    }

    /// Sets the placement policy.
    #[must_use]
    pub fn placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Sets the billing model.
    #[must_use]
    pub fn billing(mut self, b: BillingModel) -> Self {
        self.billing = b;
        self
    }

    /// Disables the per-host background tenant workload (pure lab fleets).
    #[must_use]
    pub fn without_background(mut self) -> Self {
        self.background_per_host = false;
        self
    }
}

/// One physical host.
#[derive(Debug)]
pub struct Host {
    id: HostId,
    kernel: Kernel,
    runtime: Runtime,
    rack: u32,
    background: Vec<HostPid>,
    instances: usize,
}

impl Host {
    /// The host's kernel (read access for experiment harnesses).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }
    /// The host's container runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }
    /// The host id.
    pub fn id(&self) -> HostId {
        self.id
    }
    /// The rack this host sits in (shares a branch circuit breaker).
    pub fn rack(&self) -> u32 {
        self.rack
    }
    /// Number of instances placed here.
    pub fn instance_count(&self) -> usize {
        self.instances
    }
}

/// A tenant-visible instance record.
#[derive(Debug, Clone)]
pub struct Instance {
    id: InstanceId,
    tenant: String,
    host: HostId,
    container: ContainerId,
    vcpus: u16,
    launched_at_ns: u64,
}

impl Instance {
    /// The instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }
    /// The owning tenant.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
    /// vCPUs allotted.
    pub fn vcpus(&self) -> u16 {
        self.vcpus
    }
    /// Boot-relative launch time on its host.
    pub fn launched_at_ns(&self) -> u64 {
        self.launched_at_ns
    }
    /// The host (simulation-side ground truth; a real tenant cannot see
    /// this — inferring it is the point of the co-residence channels).
    pub fn host(&self) -> HostId {
        self.host
    }
    /// The backing container id on its host runtime.
    pub fn container(&self) -> ContainerId {
        self.container
    }
}

/// Specification for launching an instance.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    name: String,
    vcpus: u16,
}

impl InstanceSpec {
    /// An instance named `name` with 4 vCPUs (the paper's CC1 shape).
    pub fn new(name: impl Into<String>) -> Self {
        InstanceSpec {
            name: name.into(),
            vcpus: 4,
        }
    }

    /// Sets the vCPU count.
    #[must_use]
    pub fn vcpus(mut self, v: u16) -> Self {
        self.vcpus = v.max(1);
        self
    }
}

/// The cloud: fleet + scheduler + billing.
#[derive(Debug)]
pub struct Cloud {
    cfg: CloudConfig,
    hosts: Vec<Host>,
    instances: BTreeMap<InstanceId, Instance>,
    next_instance: u64,
    rng: StdRng,
    billing: billing::Ledger,
}

impl Cloud {
    /// Boots a fleet. Hosts get distinct kernel seeds (distinct boot ids,
    /// energy trajectories) and realistic staggered uptimes: racks are
    /// installed together, so hosts in one rack boot within minutes of
    /// each other while racks differ by days — the structure the paper's
    /// §IV-C uptime analysis exploits.
    pub fn new(cfg: CloudConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc10_0d5eed);
        let mut hosts = Vec::with_capacity(cfg.hosts);
        for i in 0..cfg.hosts {
            let rack = (i / cfg.hosts_per_rack) as u32;
            let mut machine = cfg.machine.clone();
            machine.hostname = format!("{}-node{i}", cfg.profile.slug());
            // Rack install epochs days apart; in-rack jitter of minutes.
            machine.boot_wall_secs =
                1_450_000_000 + u64::from(rack) * 86_400 * 9 + rng.random_range(0..1_200);
            let mut kernel = Kernel::new(
                machine,
                seed.wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64),
            );
            // Uptime: rack-correlated (a rack is installed and booted
            // together, within the hour), racks days apart — the structure
            // §IV-C's uptime grouping exploits. Idle times diverge later
            // from load.
            let uptime_days = 40 + u64::from(rack) * 13;
            kernel.fast_forward_boot(uptime_days * 86_400 + rng.random_range(0..1_800));
            let mut runtime = Runtime::new();
            // Background tenants: 12 service processes per host so that
            // fleet-level diurnal demand can swing most of the machine
            // (the paper's Fig. 2 sees a 34.7% week-scale power band).
            let background = if cfg.background_per_host {
                let cid = runtime
                    .create(&mut kernel, ContainerSpec::new("bg-tenant"))
                    .expect("background container");
                (0..12)
                    .map(|j| {
                        runtime
                            .exec(
                                &mut kernel,
                                cid,
                                &format!("bg-service-{j}"),
                                workloads::models::web_service(0.15),
                            )
                            .expect("background workload")
                    })
                    .collect()
            } else {
                Vec::new()
            };
            hosts.push(Host {
                id: HostId(i as u32),
                kernel,
                runtime,
                rack,
                background,
                instances: 0,
            });
        }
        Cloud {
            cfg,
            hosts,
            instances: BTreeMap::new(),
            next_instance: 0,
            rng,
            billing: billing::Ledger::new(),
        }
    }

    /// The provider profile.
    pub fn profile(&self) -> CloudProfile {
        self.cfg.profile
    }

    /// The fleet.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// A host by id.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.get(id.0 as usize)
    }

    /// Number of racks.
    pub fn racks(&self) -> u32 {
        self.hosts.last().map(|h| h.rack + 1).unwrap_or(0)
    }

    /// Launches an instance for `tenant`, choosing a host per the
    /// placement policy.
    ///
    /// # Errors
    ///
    /// [`CloudError::CapacityExhausted`] when no host can take the vCPUs;
    /// runtime errors otherwise.
    pub fn launch(&mut self, tenant: &str, spec: InstanceSpec) -> Result<InstanceId, CloudError> {
        let host_idx = self
            .cfg
            .placement
            .choose(&self.hosts, spec.vcpus, &mut self.rng)
            .ok_or(CloudError::CapacityExhausted)?;
        let host = &mut self.hosts[host_idx];
        let ncpus = host.kernel.config().cpus;
        // Allot a deterministic contiguous cpuset.
        let base = (host.instances as u16 * spec.vcpus) % ncpus;
        let cpus: Vec<u16> = (0..spec.vcpus).map(|i| (base + i) % ncpus).collect();
        let mem_limit = host.kernel.config().mem_bytes / 8;
        let cspec = ContainerSpec::new(&spec.name)
            .cpus(cpus)
            .mem_limit(mem_limit)
            .policy(self.cfg.profile.mask_policy());
        let container = host.runtime.create(&mut host.kernel, cspec)?;
        host.instances += 1;
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let launched_at_ns = host.kernel.clock().since_boot_ns();
        self.instances.insert(
            id,
            Instance {
                id,
                tenant: tenant.to_string(),
                host: HostId(host_idx as u32),
                container,
                vcpus: spec.vcpus,
                launched_at_ns,
            },
        );
        self.billing.open(tenant, id);
        if simtrace::enabled() {
            simtrace::counters::add("cloud.placements", 1);
            let host = &self.hosts[host_idx];
            if let Some(tr) = host.kernel.tracer() {
                let now = host.kernel.lifetime_ns();
                tr.emit(
                    now,
                    simtrace::TraceEvent::Placement {
                        instance: id.0,
                        host: host.id.0,
                    },
                );
                tr.emit(
                    now,
                    simtrace::TraceEvent::BillingOpen {
                        tenant: tenant.to_string(),
                        instance: id.0,
                    },
                );
            }
        }
        Ok(id)
    }

    /// Runs a process inside an instance.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or runtime errors.
    pub fn exec(
        &mut self,
        id: InstanceId,
        name: &str,
        workload: WorkloadSpec,
    ) -> Result<HostPid, CloudError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?
            .clone();
        let host = &mut self.hosts[inst.host.0 as usize];
        Ok(host
            .runtime
            .exec(&mut host.kernel, inst.container, name, workload)?)
    }

    /// Reads a pseudo file from inside an instance (tenant's eye view,
    /// including the provider's masking).
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or fs errors.
    pub fn read_file(&self, id: InstanceId, path: &str) -> Result<String, CloudError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let host = &self.hosts[inst.host.0 as usize];
        Ok(host.runtime.read_file(&host.kernel, inst.container, path)?)
    }

    /// Lists pseudo files visible inside an instance.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`].
    pub fn list_files(&self, id: InstanceId) -> Result<Vec<String>, CloudError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let host = &self.hosts[inst.host.0 as usize];
        Ok(host.runtime.list_files(&host.kernel, inst.container)?)
    }

    /// Implants a timer signature from inside an instance.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or runtime errors.
    pub fn implant_timer(&mut self, id: InstanceId, comm: &str) -> Result<(), CloudError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?
            .clone();
        let host = &mut self.hosts[inst.host.0 as usize];
        Ok(host
            .runtime
            .implant_timer(&mut host.kernel, inst.container, comm, NANOS_PER_SEC)?)
    }

    /// Swaps the workload of a process previously started in `id` via
    /// [`Cloud::exec`] (how an attack payload flips between lying dormant
    /// and bursting).
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or kernel errors for dead pids.
    pub fn set_process_workload(
        &mut self,
        id: InstanceId,
        pid: HostPid,
        workload: WorkloadSpec,
    ) -> Result<(), CloudError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?
            .clone();
        let host = &mut self.hosts[inst.host.0 as usize];
        host.kernel
            .set_workload(pid, workload)
            .map_err(|e| CloudError::Runtime(RuntimeError::Kernel(e)))
    }

    /// Terminates an instance and closes its billing record.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or runtime errors.
    pub fn terminate(&mut self, id: InstanceId) -> Result<(), CloudError> {
        let inst = self
            .instances
            .remove(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let host = &mut self.hosts[inst.host.0 as usize];
        host.runtime.remove(&mut host.kernel, inst.container)?;
        host.instances = host.instances.saturating_sub(1);
        self.billing.close(id);
        if simtrace::enabled() {
            simtrace::counters::add("cloud.terminations", 1);
            let host = &self.hosts[inst.host.0 as usize];
            if let Some(tr) = host.kernel.tracer() {
                tr.emit(
                    host.kernel.lifetime_ns(),
                    simtrace::TraceEvent::BillingClose { instance: id.0 },
                );
            }
        }
        Ok(())
    }

    /// An instance record (ground truth: includes host placement).
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    /// Whether two instances share a physical host (ground truth for
    /// evaluating co-residence detectors).
    pub fn coresident(&self, a: InstanceId, b: InstanceId) -> Option<bool> {
        Some(self.instances.get(&a)?.host == self.instances.get(&b)?.host)
    }

    /// Advances the whole fleet by `secs`, metering utilization billing.
    /// Hosts are stepped concurrently (round-robin batches on the
    /// persistent worker pool); each kernel owns its RNG, so the result
    /// is bitwise identical to the serial order.
    pub fn advance_secs(&mut self, secs: u64) {
        self.advance_secs_threads(secs, simkernel::parallel::default_threads());
    }

    /// [`Cloud::advance_secs`] with an explicit worker count; `threads = 1`
    /// runs the historical serial loop.
    pub fn advance_secs_threads(&mut self, secs: u64, threads: usize) {
        simkernel::parallel::par_for_each_mut_threads(&mut self.hosts, threads, move |host| {
            host.kernel.advance_secs(secs);
        });
        // Meter: charge each open instance its cpu-time delta.
        let mut charges = Vec::new();
        for inst in self.instances.values() {
            let host = &self.hosts[inst.host.0 as usize];
            if let Some(used) = host.runtime.cpu_usage_ns(&host.kernel, inst.container) {
                charges.push((inst.id, inst.tenant.clone(), used, secs));
            }
        }
        simtrace::counters::add("cloud.billing_charges", charges.len() as u64);
        for (id, tenant, used_ns, dt) in charges {
            self.billing
                .meter(&tenant, id, used_ns, dt, &self.cfg.billing);
        }
    }

    /// Installs a fault plan on every host kernel, anchored at the
    /// current instant (see [`Kernel::install_faults`]). The plan is
    /// seeded and the fleet steps deterministically, so a faulted fleet
    /// remains byte-identical across worker counts.
    pub fn install_faults(&mut self, plan: &simkernel::FaultPlan) {
        for host in &mut self.hosts {
            host.kernel.install_faults(plan.clone());
        }
    }

    /// Installs a fault plan on a single host's kernel; no-op for an
    /// unknown id.
    pub fn install_faults_on(&mut self, id: HostId, plan: &simkernel::FaultPlan) {
        if let Some(host) = self.hosts.get_mut(id.0 as usize) {
            host.kernel.install_faults(plan.clone());
        }
    }

    /// Sets event-horizon tick coalescing on every host kernel. Campaign
    /// scenarios flip this *per cloud* rather than via the process-wide
    /// default, so concurrently running scenarios with different modes
    /// never race each other.
    pub fn set_coalescing(&mut self, on: bool) {
        for host in &mut self.hosts {
            host.kernel.set_coalescing(on);
        }
    }

    /// Sets pseudo-file render caching on every host kernel (same
    /// per-cloud rationale as [`Cloud::set_coalescing`]).
    pub fn set_render_caching(&mut self, on: bool) {
        for host in &mut self.hosts {
            host.kernel.set_render_caching(on);
        }
    }

    /// Terminates every instance a tenant owns, in instance-id order
    /// (the bulk-departure half of tenant churn), returning how many
    /// instances were torn down.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime teardown failure.
    pub fn terminate_tenant(&mut self, tenant: &str) -> Result<usize, CloudError> {
        let ids: Vec<InstanceId> = self
            .instances
            .values()
            .filter(|i| i.tenant == tenant)
            .map(|i| i.id)
            .collect();
        let n = ids.len();
        for id in ids {
            self.terminate(id)?;
        }
        Ok(n)
    }

    /// Reboots a physical host: every instance on it is lost (as in a
    /// real power cycle), the kernel comes back with a fresh boot id and
    /// zeroed accumulators, and the wall clock continues from where the
    /// old kernel left off. Background tenants are restarted.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] never occurs here; the method
    /// returns the ids of the instances that were lost.
    pub fn reboot_host(&mut self, id: HostId) -> Vec<InstanceId> {
        let Some(host) = self.hosts.get_mut(id.0 as usize) else {
            return Vec::new();
        };
        simtrace::counters::add("cloud.host_reboots", 1);
        // Casualties: every instance placed here.
        let lost: Vec<InstanceId> = self
            .instances
            .values()
            .filter(|i| i.host == id)
            .map(|i| i.id)
            .collect();
        for inst in &lost {
            self.instances.remove(inst);
            self.billing.close(*inst);
        }
        // Fresh kernel on the same hardware: boot time = now.
        let mut machine = host.kernel.config().clone();
        machine.boot_wall_secs = host.kernel.clock().wall_secs();
        let reboot_seed = host
            .kernel
            .seed()
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(1);
        let mut kernel = Kernel::new(machine, reboot_seed);
        let mut runtime = Runtime::new();
        let background = if self.cfg.background_per_host {
            let cid = runtime
                .create(&mut kernel, ContainerSpec::new("bg-tenant"))
                .expect("background container");
            (0..12)
                .map(|j| {
                    runtime
                        .exec(
                            &mut kernel,
                            cid,
                            &format!("bg-service-{j}"),
                            workloads::models::web_service(0.15),
                        )
                        .expect("background workload")
                })
                .collect()
        } else {
            Vec::new()
        };
        host.kernel = kernel;
        host.runtime = runtime;
        host.background = background;
        host.instances = 0;
        lost
    }

    /// Adjusts the background tenant demand on one host (diurnal traces).
    /// `demand` in `[0, 1]` is the per-service duty cycle; the 12 services
    /// together can occupy up to 12 of the host's cores.
    pub fn set_background_demand(&mut self, host: HostId, demand: f64) {
        if let Some(h) = self.hosts.get_mut(host.0 as usize) {
            // Same clamp `web_service` applies at construction; the demand
            // is retargeted in place so trace-driven fleets do not rebuild
            // (and clone) a workload spec per service per interval.
            let demand = demand.clamp(0.01, 1.0);
            for i in 0..h.background.len() {
                let pid = h.background[i];
                let _ = h.kernel.set_workload_demand(pid, demand);
            }
        }
    }

    /// Sets the simulation tick on every host's kernel (coarser ticks make
    /// week-long traces cheap; finer ticks resolve 1 s power spikes).
    pub fn set_tick_secs(&mut self, secs: u64) {
        for h in &mut self.hosts {
            h.kernel.set_tick_ns(secs.max(1) * NANOS_PER_SEC);
        }
    }

    /// Wall power of one host, watts.
    pub fn host_power_w(&self, host: HostId) -> f64 {
        self.hosts
            .get(host.0 as usize)
            .map(|h| h.kernel.wall_watts())
            .unwrap_or(0.0)
    }

    /// Aggregate wall power of a rack, watts (what its branch breaker
    /// carries).
    pub fn rack_power_w(&self, rack: u32) -> f64 {
        self.hosts
            .iter()
            .filter(|h| h.rack == rack)
            .map(|h| h.kernel.wall_watts())
            .sum()
    }

    /// The accumulated bill for a tenant.
    pub fn bill(&self, tenant: &str) -> TenantBill {
        self.billing.bill(tenant)
    }

    /// All live instances, id-ordered.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// The live instances belonging to one tenant, id-ordered.
    pub fn tenant_instances(&self, tenant: &str) -> Vec<InstanceId> {
        self.instances
            .values()
            .filter(|i| i.tenant == tenant)
            .map(|i| i.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::models;

    fn cloud(hosts: usize) -> Cloud {
        Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(hosts), 42)
    }

    #[test]
    fn fleet_boots_with_distinct_identities() {
        let c = cloud(4);
        let mut boot_ids: Vec<String> = c
            .hosts()
            .iter()
            .map(|h| h.kernel().boot_id().to_string())
            .collect();
        boot_ids.sort();
        boot_ids.dedup();
        assert_eq!(boot_ids.len(), 4, "boot ids must be unique");
        // All hosts have days of uptime.
        for h in c.hosts() {
            assert!(h.kernel().clock().uptime_secs() > 86_400.0 * 30.0);
        }
    }

    #[test]
    fn rack_mates_share_install_epoch() {
        let c = Cloud::new(
            CloudConfig::new(CloudProfile::CC1)
                .hosts(8)
                .hosts_per_rack(4),
            7,
        );
        assert_eq!(c.racks(), 2);
        let boot = |i: usize| c.hosts()[i].kernel().config().boot_wall_secs;
        let same_rack = boot(0).abs_diff(boot(1));
        let cross_rack = boot(0).abs_diff(boot(4));
        assert!(same_rack < 3_600, "in-rack boot delta {same_rack}");
        assert!(cross_rack > 86_400, "cross-rack boot delta {cross_rack}");
    }

    #[test]
    fn launch_exec_read_terminate() {
        let mut c = cloud(2);
        let id = c.launch("alice", InstanceSpec::new("app")).unwrap();
        c.exec(id, "worker", models::prime()).unwrap();
        c.advance_secs(3);
        let uptime = c.read_file(id, "/proc/uptime").unwrap();
        assert!(!uptime.is_empty());
        c.terminate(id).unwrap();
        assert!(matches!(
            c.read_file(id, "/proc/uptime"),
            Err(CloudError::NoSuchInstance(_))
        ));
    }

    #[test]
    fn spread_placement_distributes() {
        let mut c = cloud(4);
        let ids: Vec<InstanceId> = (0..4)
            .map(|i| c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap())
            .collect();
        let hosts: std::collections::HashSet<HostId> =
            ids.iter().map(|i| c.instance(*i).unwrap().host()).collect();
        assert_eq!(hosts.len(), 4, "spread should use all hosts");
        assert_eq!(c.coresident(ids[0], ids[1]), Some(false));
    }

    #[test]
    fn masking_profile_applies_to_instances() {
        // CC4 denies timer_list (Table I row: CC4 ○).
        let mut c = Cloud::new(CloudConfig::new(CloudProfile::CC4).hosts(1), 5);
        let id = c.launch("t", InstanceSpec::new("probe")).unwrap();
        assert!(c.read_file(id, "/proc/timer_list").is_err());
        // But CC4 leaves uptime readable (Table I row: CC4 ●).
        assert!(c.read_file(id, "/proc/uptime").is_ok());
    }

    #[test]
    fn billing_charges_busy_more_than_idle() {
        let mut c = cloud(2);
        let busy = c.launch("busy-tenant", InstanceSpec::new("b")).unwrap();
        let idle = c.launch("idle-tenant", InstanceSpec::new("i")).unwrap();
        for i in 0..4 {
            c.exec(busy, &format!("virus-{i}"), models::power_virus())
                .unwrap();
        }
        c.exec(idle, "sleepy", models::web_service(0.02)).unwrap();
        c.advance_secs(3_600);
        let busy_bill = c.bill("busy-tenant").total_usd();
        let idle_bill = c.bill("idle-tenant").total_usd();
        assert!(
            busy_bill > idle_bill * 5.0,
            "busy {busy_bill} vs idle {idle_bill}"
        );
    }

    #[test]
    fn background_load_raises_power() {
        let mut with_bg = cloud(1);
        let mut without = Cloud::new(
            CloudConfig::new(CloudProfile::CC1)
                .hosts(1)
                .without_background(),
            42,
        );
        with_bg.set_background_demand(HostId(0), 0.9);
        with_bg.advance_secs(5);
        without.advance_secs(5);
        assert!(with_bg.host_power_w(HostId(0)) > without.host_power_w(HostId(0)) + 2.0);
    }

    #[test]
    fn tenant_instances_filters_by_owner() {
        let mut c = cloud(2);
        let a = c.launch("alice", InstanceSpec::new("a")).unwrap();
        let _b = c.launch("bob", InstanceSpec::new("b")).unwrap();
        let a2 = c.launch("alice", InstanceSpec::new("a2")).unwrap();
        assert_eq!(c.tenant_instances("alice"), vec![a, a2]);
        assert_eq!(c.tenant_instances("carol"), Vec::<InstanceId>::new());
        c.terminate(a).unwrap();
        assert_eq!(c.tenant_instances("alice"), vec![a2]);
    }

    #[test]
    fn reboot_rotates_identity_and_loses_instances() {
        let mut c = cloud(2);
        let id = c.launch("t", InstanceSpec::new("doomed")).unwrap();
        let host = c.instance(id).unwrap().host();
        c.advance_secs(5);
        let old_boot = c.host(host).unwrap().kernel().boot_id().to_string();
        let old_uptime = c.host(host).unwrap().kernel().clock().uptime_secs();
        let wall_before = c.host(host).unwrap().kernel().clock().wall_secs();
        assert!(old_uptime > 86_400.0);

        let lost = c.reboot_host(host);
        assert_eq!(lost, vec![id]);
        assert!(c.instance(id).is_none());
        let h = c.host(host).unwrap();
        assert_ne!(h.kernel().boot_id(), old_boot, "boot id must rotate");
        assert!(h.kernel().clock().uptime_secs() < 1.0, "uptime resets");
        assert_eq!(
            h.kernel().config().boot_wall_secs,
            wall_before,
            "wall continues"
        );
        assert_eq!(h.instance_count(), 0);
        // The host still takes new work.
        c.advance_secs(2);
        let fresh = c.launch("t", InstanceSpec::new("next")).unwrap();
        assert!(c.read_file(fresh, "/proc/uptime").is_ok());
    }

    #[test]
    fn rack_power_sums_hosts() {
        let mut c = cloud(4);
        c.advance_secs(2);
        let sum: f64 = (0..4).map(|i| c.host_power_w(HostId(i))).sum();
        let rack = c.rack_power_w(0);
        assert!((sum - rack).abs() < 1e-9);
        assert!(rack > 300.0, "4 idle cloud servers ≈ 450 W: {rack}");
    }
}
