//! Multi-tenancy container-cloud simulation.
//!
//! Models the environment the paper's cloud measurements ran against: a
//! fleet of physical hosts (each a full [`simkernel::Kernel`] with its own
//! boot id, uptime, and energy counters), a placement scheduler, per-cloud
//! channel-masking profiles replicating the Table I matrix (CC1–CC5), and
//! the utilization-metered billing models that make continuous power
//! attacks expensive (§IV-B).
//!
//! # Fleet scale: shards, the event calendar, and lazy hosts
//!
//! The fleet is split into shards (whole racks by default; explicit via
//! [`CloudConfig::shards`] or the process-wide [`set_shards_default`]).
//! Each shard keeps a min-calendar of its hosts' next observable events —
//! fault-plan edges, reboots, timer fires, or "now" for hosts with
//! runnable work — so [`Cloud::advance_secs`] pops only the hosts that
//! are actually due and leaves everything quiescent *lagged*: its kernel
//! untouched, fast-forwarded in closed form the moment something reads or
//! mutates it. Because idle kernel evolution is anchor-absolute
//! (`advance(a); advance(b)` ≡ `advance(a + b)` while quiescent) and a
//! quiescent host can only wake via an external call or a calendared
//! event, the lazy fleet is byte-identical to stepping every host every
//! call — the mode [`CloudConfig::eager_advance`] preserves as the
//! reference baseline. Shards advance in parallel via shard-affine work
//! stealing; per-host state never crosses a shard, so results are
//! byte-identical across worker counts and shard counts alike.
//!
//! # Example
//!
//! ```
//! use cloudsim::{Cloud, CloudConfig, CloudProfile, InstanceSpec};
//! use workloads::models;
//!
//! let mut cloud = Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(4), 99);
//! let a = cloud.launch("tenant-a", InstanceSpec::new("web").vcpus(2))?;
//! cloud.exec(a, "nginx", models::web_service(0.3))?;
//! cloud.advance_secs(10);
//! let boot_id = cloud.read_file(a, "/proc/sys/kernel/random/boot_id")?;
//! assert!(!boot_id.is_empty());
//! # Ok::<(), cloudsim::CloudError>(())
//! ```

pub mod billing;
pub mod placement;
pub mod profile;
mod shard;

pub use billing::{BillingModel, TenantBill, TenantId};
pub use detector::{Detector, DetectorConfig, MaskLevel, PolicyUpdate, Verdict};
pub use placement::PlacementPolicy;
pub use profile::CloudProfile;

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use container_runtime::{ContainerId, ContainerSpec, Runtime, RuntimeError};
use pseudofs::FsError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use simkernel::{HostPid, Kernel, MachineConfig, NANOS_PER_SEC};
use simtrace::ReadTap as _;
use workloads::WorkloadSpec;

use placement::CapacityIndex;
use shard::Shard;

/// Process-wide default shard count consumed by [`CloudConfig::new`]
/// (`0` = auto: rack-aligned shards of ~128 hosts). What the `--shards`
/// flag on the repro binaries sets, mirroring the coalescing and
/// render-cache defaults in `simkernel`.
static SHARDS_DEFAULT: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default shard count (`0` = auto).
pub fn set_shards_default(n: usize) {
    SHARDS_DEFAULT.store(n, Ordering::Relaxed);
}

/// The process-wide default shard count (`0` = auto).
pub fn shards_default() -> usize {
    SHARDS_DEFAULT.load(Ordering::Relaxed)
}

/// Process-wide default for the provider-side online detector, consumed
/// by [`CloudConfig::new`] (what the `--detector on|off` flag on the
/// repro binaries sets; compiled default: off, so existing runs are
/// byte-identical to the pre-detector code). Per-cloud overrides:
/// [`CloudConfig::detector`] / [`CloudConfig::without_detector`].
static DETECTOR_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default for attaching the online detector.
pub fn set_detector_default(on: bool) {
    DETECTOR_DEFAULT.store(on, Ordering::Relaxed);
}

/// The process-wide default for attaching the online detector.
pub fn detector_default() -> bool {
    DETECTOR_DEFAULT.load(Ordering::Relaxed)
}

/// Identifies a physical host in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host#{}", self.0)
    }
}

/// Identifies a tenant-visible container instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance#{}", self.0)
    }
}

/// Errors from cloud operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CloudError {
    /// Unknown instance.
    NoSuchInstance(InstanceId),
    /// No host has capacity for the request.
    CapacityExhausted,
    /// Underlying runtime failure.
    Runtime(RuntimeError),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::NoSuchInstance(id) => write!(f, "no such instance: {id}"),
            CloudError::CapacityExhausted => write!(f, "no host has remaining capacity"),
            CloudError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl CloudError {
    /// Whether this failure is a transient pseudo-file fault a bounded
    /// retry can outlast. Capacity exhaustion and missing instances are
    /// not transient in this sense — retrying without intervention
    /// cannot fix them.
    pub fn is_transient(&self) -> bool {
        matches!(self, CloudError::Runtime(e) if e.is_transient())
    }
}

impl Error for CloudError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CloudError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for CloudError {
    fn from(e: RuntimeError) -> Self {
        CloudError::Runtime(e)
    }
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    profile: CloudProfile,
    hosts: usize,
    hosts_per_rack: usize,
    machine: MachineConfig,
    placement: PlacementPolicy,
    billing: BillingModel,
    background_per_host: bool,
    shards: usize,
    eager_advance: bool,
    detector: Option<DetectorConfig>,
}

impl CloudConfig {
    /// A config for the given provider profile with paper-scale defaults:
    /// 8 cloud servers per rack, spread placement, utilization billing,
    /// sharding per the process-wide default.
    pub fn new(profile: CloudProfile) -> Self {
        CloudConfig {
            profile,
            hosts: 8,
            hosts_per_rack: 8,
            machine: profile.default_machine(),
            placement: PlacementPolicy::Spread,
            billing: BillingModel::default(),
            background_per_host: true,
            shards: shards_default(),
            eager_advance: false,
            detector: detector_default().then(DetectorConfig::default),
        }
    }

    /// Sets the fleet size.
    #[must_use]
    pub fn hosts(mut self, n: usize) -> Self {
        self.hosts = n.max(1);
        self
    }

    /// Sets rack width.
    #[must_use]
    pub fn hosts_per_rack(mut self, n: usize) -> Self {
        self.hosts_per_rack = n.max(1);
        self
    }

    /// Overrides the machine type.
    #[must_use]
    pub fn machine(mut self, m: MachineConfig) -> Self {
        self.machine = m;
        self
    }

    /// Sets the placement policy.
    #[must_use]
    pub fn placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Sets the billing model.
    #[must_use]
    pub fn billing(mut self, b: BillingModel) -> Self {
        self.billing = b;
        self
    }

    /// Disables the per-host background tenant workload (pure lab fleets).
    #[must_use]
    pub fn without_background(mut self) -> Self {
        self.background_per_host = false;
        self
    }

    /// Sets the shard count explicitly (`0` = auto: rack-aligned shards
    /// of ~128 hosts). The fleet's behavior is byte-identical for every
    /// value; shards only change how the advance work is batched.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Forces the historical eager advance: every host stepped on every
    /// [`Cloud::advance_secs`], no calendar, no lag. The reference
    /// baseline the lazy path is benchmarked and tested against.
    #[must_use]
    pub fn eager_advance(mut self) -> Self {
        self.eager_advance = true;
        self
    }

    /// Attaches the provider-side online detector with the given
    /// thresholds (overriding the process-wide default either way).
    #[must_use]
    pub fn detector(mut self, cfg: DetectorConfig) -> Self {
        self.detector = Some(cfg);
        self
    }

    /// Detaches the detector regardless of the process-wide default.
    #[must_use]
    pub fn without_detector(mut self) -> Self {
        self.detector = None;
        self
    }
}

/// One physical host.
#[derive(Debug)]
pub struct Host {
    id: HostId,
    kernel: Kernel,
    runtime: Runtime,
    rack: u32,
    background: Vec<HostPid>,
    instances: usize,
}

impl Host {
    /// The host's kernel (read access for experiment harnesses).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }
    /// The host's container runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }
    /// The host id.
    pub fn id(&self) -> HostId {
        self.id
    }
    /// The rack this host sits in (shares a branch circuit breaker).
    pub fn rack(&self) -> u32 {
        self.rack
    }
    /// Number of instances placed here.
    pub fn instance_count(&self) -> usize {
        self.instances
    }
}

/// A tenant-visible instance record.
#[derive(Debug, Clone, Copy)]
pub struct Instance {
    id: InstanceId,
    tenant: TenantId,
    host: HostId,
    container: ContainerId,
    vcpus: u16,
    launched_at_ns: u64,
}

impl Instance {
    /// The instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }
    /// The owning tenant (resolve the name via [`Cloud::tenant_name`]).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }
    /// vCPUs allotted.
    pub fn vcpus(&self) -> u16 {
        self.vcpus
    }
    /// Boot-relative launch time on its host.
    pub fn launched_at_ns(&self) -> u64 {
        self.launched_at_ns
    }
    /// The host (simulation-side ground truth; a real tenant cannot see
    /// this — inferring it is the point of the co-residence channels).
    pub fn host(&self) -> HostId {
        self.host
    }
    /// The backing container id on its host runtime.
    pub fn container(&self) -> ContainerId {
        self.container
    }
}

/// Specification for launching an instance.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    name: String,
    vcpus: u16,
}

impl InstanceSpec {
    /// An instance named `name` with 4 vCPUs (the paper's CC1 shape).
    pub fn new(name: impl Into<String>) -> Self {
        InstanceSpec {
            name: name.into(),
            vcpus: 4,
        }
    }

    /// Sets the vCPU count.
    #[must_use]
    pub fn vcpus(mut self, v: u16) -> Self {
        self.vcpus = v.max(1);
        self
    }
}

/// Interned tenant names: dense [`TenantId`]s in first-launch order.
#[derive(Debug, Default)]
struct TenantTable {
    names: Vec<String>,
    index: HashMap<String, TenantId>,
}

impl TenantTable {
    fn intern(&mut self, name: &str) -> TenantId {
        if let Some(&t) = self.index.get(name) {
            return t;
        }
        let t = TenantId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), t);
        t
    }

    fn lookup(&self, name: &str) -> Option<TenantId> {
        self.index.get(name).copied()
    }

    fn name(&self, t: TenantId) -> Option<&str> {
        self.names.get(t.0 as usize).map(String::as_str)
    }
}

/// The cloud: sharded fleet + scheduler + billing.
#[derive(Debug)]
pub struct Cloud {
    cfg: CloudConfig,
    shards: Vec<Shard>,
    shard_span: usize,
    nhosts: usize,
    nracks: u32,
    cpus: u16,
    /// Fleet-absolute sim time: total seconds fed to `advance_secs`, in ns.
    fleet_ns: u64,
    capacity: CapacityIndex,
    instances: BTreeMap<InstanceId, Instance>,
    next_instance: u64,
    rng: StdRng,
    tenants: TenantTable,
    billing: billing::Ledger,
    /// Persistent metering scratch — reused across advances so the
    /// per-advance hot loop allocates nothing.
    charges: Vec<(InstanceId, TenantId, u64)>,
    /// The provider-side online detector, when configured. Fed from the
    /// driver thread only (tenant reads in program order, evaluation at
    /// advance boundaries), so its state is byte-deterministic across
    /// `--jobs` and `--shards`.
    detector: Option<Detector>,
}

/// Hosts per shard for a fleet: explicit shard counts split the fleet
/// evenly (ragged tail allowed); auto aims for whole-rack shards of ~128
/// hosts.
fn shard_span(shards: usize, hosts: usize, hosts_per_rack: usize) -> usize {
    let hosts = hosts.max(1);
    if shards > 0 {
        hosts.div_ceil(shards)
    } else {
        let hpr = hosts_per_rack.max(1);
        let racks_per_shard = 128usize.max(hpr).div_ceil(hpr);
        (racks_per_shard * hpr).min(hosts)
    }
}

impl Cloud {
    /// Boots a fleet. Hosts get distinct kernel seeds (distinct boot ids,
    /// energy trajectories) and realistic staggered uptimes: racks are
    /// installed together, so hosts in one rack boot within minutes of
    /// each other while racks differ by days — the structure the paper's
    /// §IV-C uptime analysis exploits.
    pub fn new(cfg: CloudConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc10_0d5eed);
        let mut hosts = Vec::with_capacity(cfg.hosts);
        for i in 0..cfg.hosts {
            let rack = (i / cfg.hosts_per_rack) as u32;
            let mut machine = cfg.machine.clone();
            machine.hostname = format!("{}-node{i}", cfg.profile.slug());
            // Rack install epochs days apart; in-rack jitter of minutes.
            machine.boot_wall_secs =
                1_450_000_000 + u64::from(rack) * 86_400 * 9 + rng.random_range(0..1_200);
            let mut kernel = Kernel::new(
                machine,
                seed.wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64),
            );
            // Uptime: rack-correlated (a rack is installed and booted
            // together, within the hour), racks days apart — the structure
            // §IV-C's uptime grouping exploits. Idle times diverge later
            // from load.
            let uptime_days = 40 + u64::from(rack) * 13;
            kernel.fast_forward_boot(uptime_days * 86_400 + rng.random_range(0..1_800));
            let mut runtime = Runtime::new();
            // Background tenants: 12 service processes per host so that
            // fleet-level diurnal demand can swing most of the machine
            // (the paper's Fig. 2 sees a 34.7% week-scale power band).
            let background = if cfg.background_per_host {
                let cid = runtime
                    .create(&mut kernel, ContainerSpec::new("bg-tenant"))
                    .expect("background container");
                (0..12)
                    .map(|j| {
                        runtime
                            .exec(
                                &mut kernel,
                                cid,
                                &format!("bg-service-{j}"),
                                workloads::models::web_service(0.15),
                            )
                            .expect("background workload")
                    })
                    .collect()
            } else {
                Vec::new()
            };
            hosts.push(Box::new(Host {
                id: HostId(i as u32),
                kernel,
                runtime,
                rack,
                background,
                instances: 0,
            }));
        }
        let nhosts = cfg.hosts;
        let nracks = hosts.last().map(|h| h.rack + 1).unwrap_or(0);
        let cpus = cfg.machine.cpus;
        let span = shard_span(cfg.shards, cfg.hosts, cfg.hosts_per_rack);
        let mut shards = Vec::with_capacity(nhosts.div_ceil(span));
        let mut pending: Vec<Box<Host>> = Vec::with_capacity(span);
        for h in hosts {
            pending.push(h);
            if pending.len() == span {
                shards.push(Shard::new(std::mem::take(&mut pending), cfg.eager_advance));
            }
        }
        if !pending.is_empty() {
            shards.push(Shard::new(pending, cfg.eager_advance));
        }
        let capacity = CapacityIndex::new(nhosts, span, cpus);
        let det = cfg.detector.clone().map(Detector::new);
        Cloud {
            cfg,
            shards,
            shard_span: span,
            nhosts,
            nracks,
            cpus,
            fleet_ns: 0,
            capacity,
            instances: BTreeMap::new(),
            next_instance: 0,
            rng,
            tenants: TenantTable::default(),
            billing: billing::Ledger::new(),
            charges: Vec::new(),
            detector: det,
        }
    }

    /// The provider profile.
    pub fn profile(&self) -> CloudProfile {
        self.cfg.profile
    }

    fn locate(&self, idx: usize) -> (usize, usize) {
        (idx / self.shard_span, idx % self.shard_span)
    }

    /// Brings one host to the current fleet instant (no-op when current).
    fn sync_host(&mut self, idx: usize) {
        let (s, slot) = self.locate(idx);
        if self.shards[s].sync_to(slot, self.fleet_ns) {
            // Mode-exempt: how often the lazy path fast-forwards depends
            // on the access pattern, not on any simulated result.
            simtrace::counters::add_exempt("cloud.host_syncs", 1);
        }
    }

    fn host_ref(&self, idx: usize) -> &Host {
        let (s, slot) = self.locate(idx);
        &self.shards[s].hosts[slot]
    }

    /// Brings every host to the current fleet instant, flushing all
    /// calendar lag. Read accessors do this on demand; bulk inspections
    /// ([`Cloud::hosts`]) call it up front.
    pub fn sync_all(&mut self) {
        let target = self.fleet_ns;
        let mut synced = 0u64;
        for shard in &mut self.shards {
            for slot in 0..shard.len() {
                if shard.sync_to(slot, target) {
                    synced += 1;
                }
            }
        }
        if synced > 0 {
            simtrace::counters::add_exempt("cloud.host_syncs", synced);
        }
    }

    /// The fleet, synced to the current instant, in host-id order.
    pub fn hosts(&mut self) -> impl Iterator<Item = &Host> {
        self.sync_all();
        self.shards
            .iter()
            .flat_map(|s| s.hosts.iter().map(|h| &**h))
    }

    /// Fleet size.
    pub fn host_count(&self) -> usize {
        self.nhosts
    }

    /// Number of shards the fleet advances in.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total calendar entries across shards, stale ones included
    /// (diagnostics for growth-bound tests; eager fleets report 0).
    pub fn calendar_entries(&self) -> usize {
        self.shards.iter().map(|s| s.calendar_len()).sum()
    }

    /// A host by id, synced to the current instant.
    pub fn host(&mut self, id: HostId) -> Option<&Host> {
        let idx = id.0 as usize;
        if idx >= self.nhosts {
            return None;
        }
        self.sync_host(idx);
        Some(self.host_ref(idx))
    }

    /// Number of racks.
    pub fn racks(&self) -> u32 {
        self.nracks
    }

    /// The interned name of a tenant seen by [`Cloud::launch`].
    pub fn tenant_name(&self, t: TenantId) -> Option<&str> {
        self.tenants.name(t)
    }

    /// Launches an instance for `tenant`, choosing a host per the
    /// placement policy.
    ///
    /// # Errors
    ///
    /// [`CloudError::CapacityExhausted`] when no host can take the vCPUs;
    /// runtime errors otherwise.
    pub fn launch(&mut self, tenant: &str, spec: InstanceSpec) -> Result<InstanceId, CloudError> {
        let per_host = u32::from(self.cpus / spec.vcpus.max(1));
        let host_idx = self
            .capacity
            .choose(self.cfg.placement, per_host, &mut self.rng)
            .ok_or(CloudError::CapacityExhausted)?;
        let tid = self.tenants.intern(tenant);
        self.sync_host(host_idx);
        let (s, slot) = self.locate(host_idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        let host = &mut shard.hosts[slot];
        let ncpus = host.kernel.config().cpus;
        // Allot a deterministic contiguous cpuset.
        let base = (host.instances as u16 * spec.vcpus) % ncpus;
        let cpus: Vec<u16> = (0..spec.vcpus).map(|i| (base + i) % ncpus).collect();
        let mem_limit = host.kernel.config().mem_bytes / 8;
        // Masking follows the tenant, not the container: a flagged tenant
        // relaunching does not shed its detector mask.
        let mut policy = self.cfg.profile.mask_policy();
        if let Some(deny) = self
            .detector
            .as_ref()
            .and_then(|d| d.deny_patterns_for(tid.0))
        {
            policy = detector::composed_policy(&policy, deny);
            simtrace::counters::add("detector.policies_applied", 1);
        }
        let cspec = ContainerSpec::new(&spec.name)
            .cpus(cpus)
            .mem_limit(mem_limit)
            .policy(policy);
        let container = match host.runtime.create(&mut host.kernel, cspec) {
            Ok(c) => c,
            Err(e) => {
                shard.refresh(slot, now);
                return Err(e.into());
            }
        };
        host.instances += 1;
        let count = host.instances as u32;
        let launched_at_ns = host.kernel.clock().since_boot_ns();
        shard.refresh(slot, now);
        self.capacity.set(host_idx, count);
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        self.instances.insert(
            id,
            Instance {
                id,
                tenant: tid,
                host: HostId(host_idx as u32),
                container,
                vcpus: spec.vcpus,
                launched_at_ns,
            },
        );
        self.billing.open(tid, id);
        if simtrace::enabled() {
            simtrace::counters::add("cloud.placements", 1);
            let host = self.host_ref(host_idx);
            if let Some(tr) = host.kernel.tracer() {
                let now = host.kernel.lifetime_ns();
                tr.emit(
                    now,
                    simtrace::TraceEvent::Placement {
                        instance: id.0,
                        host: host.id.0,
                    },
                );
                tr.emit(
                    now,
                    simtrace::TraceEvent::BillingOpen {
                        tenant: tenant.to_string(),
                        instance: id.0,
                    },
                );
            }
        }
        Ok(id)
    }

    /// Runs a process inside an instance.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or runtime errors.
    pub fn exec(
        &mut self,
        id: InstanceId,
        name: &str,
        workload: WorkloadSpec,
    ) -> Result<HostPid, CloudError> {
        let inst = *self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let idx = inst.host.0 as usize;
        self.sync_host(idx);
        let (s, slot) = self.locate(idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        let host = &mut shard.hosts[slot];
        let res = host
            .runtime
            .exec(&mut host.kernel, inst.container, name, workload);
        shard.refresh(slot, now);
        Ok(res?)
    }

    /// Reads a pseudo file from inside an instance (tenant's eye view,
    /// including the provider's masking).
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or fs errors.
    pub fn read_file(&mut self, id: InstanceId, path: &str) -> Result<String, CloudError> {
        let inst = *self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let idx = inst.host.0 as usize;
        self.sync_host(idx);
        let res = {
            let host = self.host_ref(idx);
            host.runtime.read_file(&host.kernel, inst.container, path)
        };
        // The online tap: every tenant read reaches the detector inline,
        // on the driver thread, stamped with fleet-absolute sim time.
        // Denied reads count too — probing a closed channel is signal.
        if let Some(det) = self.detector.as_mut() {
            let denied = matches!(&res, Err(RuntimeError::Fs(FsError::PermissionDenied(_))));
            det.on_read(self.fleet_ns, inst.tenant.0, path, denied);
        }
        Ok(res?)
    }

    /// Lists pseudo files visible inside an instance.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`].
    pub fn list_files(&mut self, id: InstanceId) -> Result<Vec<String>, CloudError> {
        let inst = *self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let idx = inst.host.0 as usize;
        self.sync_host(idx);
        let host = self.host_ref(idx);
        Ok(host.runtime.list_files(&host.kernel, inst.container)?)
    }

    /// Implants a timer signature from inside an instance.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or runtime errors.
    pub fn implant_timer(&mut self, id: InstanceId, comm: &str) -> Result<(), CloudError> {
        let inst = *self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let idx = inst.host.0 as usize;
        self.sync_host(idx);
        let (s, slot) = self.locate(idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        let host = &mut shard.hosts[slot];
        let res = host
            .runtime
            .implant_timer(&mut host.kernel, inst.container, comm, NANOS_PER_SEC);
        shard.refresh(slot, now);
        Ok(res?)
    }

    /// Swaps the workload of a process previously started in `id` via
    /// [`Cloud::exec`] (how an attack payload flips between lying dormant
    /// and bursting).
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or kernel errors for dead pids.
    pub fn set_process_workload(
        &mut self,
        id: InstanceId,
        pid: HostPid,
        workload: WorkloadSpec,
    ) -> Result<(), CloudError> {
        let inst = *self
            .instances
            .get(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let idx = inst.host.0 as usize;
        self.sync_host(idx);
        let (s, slot) = self.locate(idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        let res = shard.hosts[slot]
            .kernel
            .set_workload(pid, workload)
            .map_err(|e| CloudError::Runtime(RuntimeError::Kernel(e)));
        shard.refresh(slot, now);
        res
    }

    /// Terminates an instance and closes its billing record.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] or runtime errors.
    pub fn terminate(&mut self, id: InstanceId) -> Result<(), CloudError> {
        let inst = self
            .instances
            .remove(&id)
            .ok_or(CloudError::NoSuchInstance(id))?;
        let idx = inst.host.0 as usize;
        self.sync_host(idx);
        let (s, slot) = self.locate(idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        let host = &mut shard.hosts[slot];
        let removed = host.runtime.remove(&mut host.kernel, inst.container);
        if removed.is_ok() {
            host.instances = host.instances.saturating_sub(1);
        }
        let count = host.instances as u32;
        shard.refresh(slot, now);
        removed?;
        self.capacity.set(idx, count);
        self.billing.close(id);
        if simtrace::enabled() {
            simtrace::counters::add("cloud.terminations", 1);
            let host = self.host_ref(idx);
            if let Some(tr) = host.kernel.tracer() {
                tr.emit(
                    host.kernel.lifetime_ns(),
                    simtrace::TraceEvent::BillingClose { instance: id.0 },
                );
            }
        }
        Ok(())
    }

    /// An instance record (ground truth: includes host placement).
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    /// Whether two instances share a physical host (ground truth for
    /// evaluating co-residence detectors).
    pub fn coresident(&self, a: InstanceId, b: InstanceId) -> Option<bool> {
        Some(self.instances.get(&a)?.host == self.instances.get(&b)?.host)
    }

    /// Advances the whole fleet by `secs`, metering utilization billing.
    /// Shards advance concurrently (shard-affine work stealing on the
    /// persistent worker pool); within a shard only calendar-due hosts
    /// are touched, the rest stay lagged. Each kernel owns its RNG and
    /// hosts never migrate between shards mid-call, so the result is
    /// bitwise identical to the serial, eager order.
    pub fn advance_secs(&mut self, secs: u64) {
        self.advance_secs_threads(secs, simkernel::parallel::default_threads());
    }

    /// [`Cloud::advance_secs`] with an explicit worker count; `threads = 1`
    /// runs the historical serial loop.
    pub fn advance_secs_threads(&mut self, secs: u64, threads: usize) {
        if secs > 0 {
            let target = self.fleet_ns + secs * NANOS_PER_SEC;
            simkernel::parallel::par_claim_mut_threads(
                &mut self.shards,
                threads,
                move |_, shard: &mut Shard| shard.advance_to(target),
            );
            self.fleet_ns = target;
        }
        // Meter: charge each open instance its cpu-time delta. Hosts left
        // lagged by the calendar are quiescent — their cpuacct totals are
        // static — so metering reads them without forcing a sync.
        let mut charges = std::mem::take(&mut self.charges);
        charges.clear();
        for inst in self.instances.values() {
            let host = self.host_ref(inst.host.0 as usize);
            if let Some(used) = host.runtime.cpu_usage_ns(&host.kernel, inst.container) {
                charges.push((inst.id, inst.tenant, used));
            }
        }
        simtrace::counters::add("cloud.billing_charges", charges.len() as u64);
        for &(id, tenant, used_ns) in charges.iter() {
            self.billing
                .meter(tenant, id, used_ns, secs, &self.cfg.billing);
        }
        self.charges = charges;
        self.apply_detector_updates();
    }

    /// Scores the detector at the advance boundary and applies any newly
    /// emitted masking-policy updates to every live container of each
    /// flagged tenant, in tenant-id then instance-id order. Runs on the
    /// driver thread after billing, so verdicts and the apply sequence
    /// are byte-identical across `--jobs` and `--shards`.
    fn apply_detector_updates(&mut self) {
        let (updates, verdicts) = match self.detector.as_mut() {
            Some(det) => {
                let before = det.verdicts().len();
                let ups = det.evaluate(self.fleet_ns);
                if ups.is_empty() {
                    return;
                }
                let vs = det.verdicts()[before..].to_vec();
                (ups, vs)
            }
            None => return,
        };
        let base = self.cfg.profile.mask_policy();
        for (u, v) in updates.iter().zip(&verdicts) {
            let policy = detector::composed_policy(&base, &u.deny);
            let targets: Vec<(InstanceId, usize, ContainerId)> = self
                .instances
                .values()
                .filter(|i| i.tenant.0 == u.tenant)
                .map(|i| (i.id, i.host.0 as usize, i.container))
                .collect();
            let mut flag_pending = true;
            for (iid, idx, cid) in targets {
                self.sync_host(idx);
                let (s, slot) = self.locate(idx);
                let now = self.fleet_ns;
                let shard = &mut self.shards[s];
                let host = &mut shard.hosts[slot];
                let _ = host
                    .runtime
                    .set_policy(&mut host.kernel, cid, policy.clone());
                shard.refresh(slot, now);
                simtrace::counters::add("detector.policies_applied", 1);
                if simtrace::enabled() {
                    let host = self.host_ref(idx);
                    if let Some(tr) = host.kernel.tracer() {
                        let t = host.kernel.lifetime_ns();
                        if flag_pending {
                            tr.emit(
                                t,
                                simtrace::TraceEvent::TenantFlagged {
                                    tenant: u.tenant,
                                    level: u.level.as_u8(),
                                    reads: v.reads,
                                },
                            );
                        }
                        tr.emit(
                            t,
                            simtrace::TraceEvent::PolicyUpdated {
                                instance: iid.0,
                                tenant: u.tenant,
                                level: u.level.as_u8(),
                                rules: u.deny.len() as u32,
                            },
                        );
                    }
                }
                flag_pending = false;
            }
        }
    }

    /// The online detector, when one is attached (verdict and
    /// policy-update logs for scoring and byte-compare tests).
    pub fn detector(&self) -> Option<&Detector> {
        self.detector.as_ref()
    }

    /// Installs a fault plan on every host kernel, anchored at the
    /// current instant (see [`Kernel::install_faults`]). The plan is
    /// seeded and the fleet steps deterministically, so a faulted fleet
    /// remains byte-identical across worker counts.
    pub fn install_faults(&mut self, plan: &simkernel::FaultPlan) {
        self.sync_all();
        let now = self.fleet_ns;
        for shard in &mut self.shards {
            for slot in 0..shard.len() {
                shard.hosts[slot].kernel.install_faults(plan.clone());
                shard.refresh(slot, now);
            }
        }
    }

    /// Installs a fault plan on a single host's kernel; no-op for an
    /// unknown id.
    pub fn install_faults_on(&mut self, id: HostId, plan: &simkernel::FaultPlan) {
        let idx = id.0 as usize;
        if idx >= self.nhosts {
            return;
        }
        self.sync_host(idx);
        let (s, slot) = self.locate(idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        shard.hosts[slot].kernel.install_faults(plan.clone());
        shard.refresh(slot, now);
    }

    /// Sets event-horizon tick coalescing on every host kernel. Campaign
    /// scenarios flip this *per cloud* rather than via the process-wide
    /// default, so concurrently running scenarios with different modes
    /// never race each other. Lagged hosts are synced first so their
    /// backlog replays under the mode it accrued in.
    pub fn set_coalescing(&mut self, on: bool) {
        self.sync_all();
        for shard in &mut self.shards {
            for host in &mut shard.hosts {
                host.kernel.set_coalescing(on);
            }
        }
    }

    /// Sets pseudo-file render caching on every host kernel (same
    /// per-cloud rationale as [`Cloud::set_coalescing`]).
    pub fn set_render_caching(&mut self, on: bool) {
        for shard in &mut self.shards {
            for host in &mut shard.hosts {
                host.kernel.set_render_caching(on);
            }
        }
    }

    /// Terminates every instance a tenant owns, in instance-id order
    /// (the bulk-departure half of tenant churn), returning how many
    /// instances were torn down.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime teardown failure.
    pub fn terminate_tenant(&mut self, tenant: &str) -> Result<usize, CloudError> {
        let Some(tid) = self.tenants.lookup(tenant) else {
            return Ok(0);
        };
        let ids: Vec<InstanceId> = self
            .instances
            .values()
            .filter(|i| i.tenant == tid)
            .map(|i| i.id)
            .collect();
        let n = ids.len();
        for id in ids {
            self.terminate(id)?;
        }
        Ok(n)
    }

    /// Reboots a physical host: every instance on it is lost (as in a
    /// real power cycle), the kernel comes back with a fresh boot id and
    /// zeroed accumulators, and the wall clock continues from where the
    /// old kernel left off. Background tenants are restarted.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchInstance`] never occurs here; the method
    /// returns the ids of the instances that were lost.
    pub fn reboot_host(&mut self, id: HostId) -> Vec<InstanceId> {
        let idx = id.0 as usize;
        if idx >= self.nhosts {
            return Vec::new();
        }
        // Sync first: the replacement kernel's boot wall time snapshots
        // the old kernel's *current* wall clock.
        self.sync_host(idx);
        simtrace::counters::add("cloud.host_reboots", 1);
        // Casualties: every instance placed here.
        let lost: Vec<InstanceId> = self
            .instances
            .values()
            .filter(|i| i.host == id)
            .map(|i| i.id)
            .collect();
        for inst in &lost {
            self.instances.remove(inst);
            self.billing.close(*inst);
        }
        let (s, slot) = self.locate(idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        let host = &mut shard.hosts[slot];
        // Fresh kernel on the same hardware: boot time = now.
        let mut machine = host.kernel.config().clone();
        machine.boot_wall_secs = host.kernel.clock().wall_secs();
        let reboot_seed = host
            .kernel
            .seed()
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(1);
        let mut kernel = Kernel::new(machine, reboot_seed);
        let mut runtime = Runtime::new();
        let background = if self.cfg.background_per_host {
            let cid = runtime
                .create(&mut kernel, ContainerSpec::new("bg-tenant"))
                .expect("background container");
            (0..12)
                .map(|j| {
                    runtime
                        .exec(
                            &mut kernel,
                            cid,
                            &format!("bg-service-{j}"),
                            workloads::models::web_service(0.15),
                        )
                        .expect("background workload")
                })
                .collect()
        } else {
            Vec::new()
        };
        host.kernel = kernel;
        host.runtime = runtime;
        host.background = background;
        host.instances = 0;
        shard.refresh(slot, now);
        self.capacity.set(idx, 0);
        lost
    }

    /// Adjusts the background tenant demand on one host (diurnal traces).
    /// `demand` in `[0, 1]` is the per-service duty cycle; the 12 services
    /// together can occupy up to 12 of the host's cores.
    pub fn set_background_demand(&mut self, host: HostId, demand: f64) {
        let idx = host.0 as usize;
        if idx >= self.nhosts {
            return;
        }
        self.sync_host(idx);
        let (s, slot) = self.locate(idx);
        let now = self.fleet_ns;
        let shard = &mut self.shards[s];
        let h = &mut shard.hosts[slot];
        // Same clamp `web_service` applies at construction; the demand
        // is retargeted in place so trace-driven fleets do not rebuild
        // (and clone) a workload spec per service per interval.
        let demand = demand.clamp(0.01, 1.0);
        for i in 0..h.background.len() {
            let pid = h.background[i];
            let _ = h.kernel.set_workload_demand(pid, demand);
        }
        shard.refresh(slot, now);
    }

    /// Sets the simulation tick on every host's kernel (coarser ticks make
    /// week-long traces cheap; finer ticks resolve 1 s power spikes).
    pub fn set_tick_secs(&mut self, secs: u64) {
        self.sync_all();
        for shard in &mut self.shards {
            for host in &mut shard.hosts {
                host.kernel.set_tick_ns(secs.max(1) * NANOS_PER_SEC);
            }
        }
    }

    /// Wall power of one host, watts.
    pub fn host_power_w(&mut self, host: HostId) -> f64 {
        let idx = host.0 as usize;
        if idx >= self.nhosts {
            return 0.0;
        }
        self.sync_host(idx);
        self.host_ref(idx).kernel.wall_watts()
    }

    /// Aggregate wall power of a rack, watts (what its branch breaker
    /// carries).
    pub fn rack_power_w(&mut self, rack: u32) -> f64 {
        let mut sum = 0.0;
        for idx in 0..self.nhosts {
            if self.host_ref(idx).rack == rack {
                self.sync_host(idx);
                sum += self.host_ref(idx).kernel.wall_watts();
            }
        }
        sum
    }

    /// The accumulated bill for a tenant.
    pub fn bill(&self, tenant: &str) -> TenantBill {
        self.tenants
            .lookup(tenant)
            .map(|t| self.billing.bill(t))
            .unwrap_or_default()
    }

    /// All live instances, id-ordered.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// The live instances belonging to one tenant, id-ordered.
    pub fn tenant_instances(&self, tenant: &str) -> Vec<InstanceId> {
        let Some(tid) = self.tenants.lookup(tenant) else {
            return Vec::new();
        };
        self.instances
            .values()
            .filter(|i| i.tenant == tid)
            .map(|i| i.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::models;

    fn cloud(hosts: usize) -> Cloud {
        Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(hosts), 42)
    }

    #[test]
    fn fleet_boots_with_distinct_identities() {
        let mut c = cloud(4);
        let mut boot_ids: Vec<String> = c
            .hosts()
            .map(|h| h.kernel().boot_id().to_string())
            .collect();
        boot_ids.sort();
        boot_ids.dedup();
        assert_eq!(boot_ids.len(), 4, "boot ids must be unique");
        // All hosts have days of uptime.
        for h in c.hosts() {
            assert!(h.kernel().clock().uptime_secs() > 86_400.0 * 30.0);
        }
    }

    #[test]
    fn rack_mates_share_install_epoch() {
        let mut c = Cloud::new(
            CloudConfig::new(CloudProfile::CC1)
                .hosts(8)
                .hosts_per_rack(4),
            7,
        );
        assert_eq!(c.racks(), 2);
        let boots: Vec<u64> = c
            .hosts()
            .map(|h| h.kernel().config().boot_wall_secs)
            .collect();
        let same_rack = boots[0].abs_diff(boots[1]);
        let cross_rack = boots[0].abs_diff(boots[4]);
        assert!(same_rack < 3_600, "in-rack boot delta {same_rack}");
        assert!(cross_rack > 86_400, "cross-rack boot delta {cross_rack}");
    }

    #[test]
    fn launch_exec_read_terminate() {
        let mut c = cloud(2);
        let id = c.launch("alice", InstanceSpec::new("app")).unwrap();
        c.exec(id, "worker", models::prime()).unwrap();
        c.advance_secs(3);
        let uptime = c.read_file(id, "/proc/uptime").unwrap();
        assert!(!uptime.is_empty());
        c.terminate(id).unwrap();
        assert!(matches!(
            c.read_file(id, "/proc/uptime"),
            Err(CloudError::NoSuchInstance(_))
        ));
    }

    #[test]
    fn spread_placement_distributes() {
        let mut c = cloud(4);
        let ids: Vec<InstanceId> = (0..4)
            .map(|i| c.launch("t", InstanceSpec::new(format!("i{i}"))).unwrap())
            .collect();
        let hosts: std::collections::HashSet<HostId> =
            ids.iter().map(|i| c.instance(*i).unwrap().host()).collect();
        assert_eq!(hosts.len(), 4, "spread should use all hosts");
        assert_eq!(c.coresident(ids[0], ids[1]), Some(false));
    }

    #[test]
    fn masking_profile_applies_to_instances() {
        // CC4 denies timer_list (Table I row: CC4 ○).
        let mut c = Cloud::new(CloudConfig::new(CloudProfile::CC4).hosts(1), 5);
        let id = c.launch("t", InstanceSpec::new("probe")).unwrap();
        assert!(c.read_file(id, "/proc/timer_list").is_err());
        // But CC4 leaves uptime readable (Table I row: CC4 ●).
        assert!(c.read_file(id, "/proc/uptime").is_ok());
    }

    #[test]
    fn billing_charges_busy_more_than_idle() {
        let mut c = cloud(2);
        let busy = c.launch("busy-tenant", InstanceSpec::new("b")).unwrap();
        let idle = c.launch("idle-tenant", InstanceSpec::new("i")).unwrap();
        for i in 0..4 {
            c.exec(busy, &format!("virus-{i}"), models::power_virus())
                .unwrap();
        }
        c.exec(idle, "sleepy", models::web_service(0.02)).unwrap();
        c.advance_secs(3_600);
        let busy_bill = c.bill("busy-tenant").total_usd();
        let idle_bill = c.bill("idle-tenant").total_usd();
        assert!(
            busy_bill > idle_bill * 5.0,
            "busy {busy_bill} vs idle {idle_bill}"
        );
    }

    #[test]
    fn background_load_raises_power() {
        let mut with_bg = cloud(1);
        let mut without = Cloud::new(
            CloudConfig::new(CloudProfile::CC1)
                .hosts(1)
                .without_background(),
            42,
        );
        with_bg.set_background_demand(HostId(0), 0.9);
        with_bg.advance_secs(5);
        without.advance_secs(5);
        assert!(with_bg.host_power_w(HostId(0)) > without.host_power_w(HostId(0)) + 2.0);
    }

    #[test]
    fn tenant_instances_filters_by_owner() {
        let mut c = cloud(2);
        let a = c.launch("alice", InstanceSpec::new("a")).unwrap();
        let _b = c.launch("bob", InstanceSpec::new("b")).unwrap();
        let a2 = c.launch("alice", InstanceSpec::new("a2")).unwrap();
        assert_eq!(c.tenant_instances("alice"), vec![a, a2]);
        assert_eq!(c.tenant_instances("carol"), Vec::<InstanceId>::new());
        c.terminate(a).unwrap();
        assert_eq!(c.tenant_instances("alice"), vec![a2]);
    }

    #[test]
    fn reboot_rotates_identity_and_loses_instances() {
        let mut c = cloud(2);
        let id = c.launch("t", InstanceSpec::new("doomed")).unwrap();
        let host = c.instance(id).unwrap().host();
        c.advance_secs(5);
        let old_boot = c.host(host).unwrap().kernel().boot_id().to_string();
        let old_uptime = c.host(host).unwrap().kernel().clock().uptime_secs();
        let wall_before = c.host(host).unwrap().kernel().clock().wall_secs();
        assert!(old_uptime > 86_400.0);

        let lost = c.reboot_host(host);
        assert_eq!(lost, vec![id]);
        assert!(c.instance(id).is_none());
        let h = c.host(host).unwrap();
        assert_ne!(h.kernel().boot_id(), old_boot, "boot id must rotate");
        assert!(h.kernel().clock().uptime_secs() < 1.0, "uptime resets");
        assert_eq!(
            h.kernel().config().boot_wall_secs,
            wall_before,
            "wall continues"
        );
        assert_eq!(h.instance_count(), 0);
        // The host still takes new work.
        c.advance_secs(2);
        let fresh = c.launch("t", InstanceSpec::new("next")).unwrap();
        assert!(c.read_file(fresh, "/proc/uptime").is_ok());
    }

    #[test]
    fn rack_power_sums_hosts() {
        let mut c = cloud(4);
        c.advance_secs(2);
        let sum: f64 = (0..4).map(|i| c.host_power_w(HostId(i))).sum();
        let rack = c.rack_power_w(0);
        assert!((sum - rack).abs() < 1e-9);
        assert!(rack > 300.0, "4 idle cloud servers ≈ 450 W: {rack}");
    }

    #[test]
    fn explicit_shards_split_the_fleet() {
        let c = Cloud::new(CloudConfig::new(CloudProfile::CC1).hosts(10).shards(4), 1);
        // span = ceil(10/4) = 3 → shards of 3, 3, 3, 1.
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.host_count(), 10);
    }

    #[test]
    fn auto_sharding_is_rack_aligned() {
        let c = Cloud::new(
            CloudConfig::new(CloudProfile::CC1)
                .hosts(300)
                .hosts_per_rack(8)
                .without_background(),
            1,
        );
        // 16 racks of 8 ≈ 128 hosts per shard → 128 + 128 + 44.
        assert_eq!(c.shard_count(), 3);
        // Small fleets collapse to one shard.
        let small = cloud(4);
        assert_eq!(small.shard_count(), 1);
    }

    /// The load-bearing equivalence: a lazy sharded fleet and an eager
    /// single-shard fleet driven through the same script expose
    /// byte-identical tenant-visible state and bills.
    #[test]
    fn lazy_fleet_matches_eager_fleet() {
        let run = |cfg: CloudConfig| {
            let mut c = Cloud::new(cfg.hosts(6).hosts_per_rack(2), 31);
            let a = c.launch("alice", InstanceSpec::new("a")).unwrap();
            let b = c.launch("bob", InstanceSpec::new("b")).unwrap();
            c.exec(a, "svc", models::web_service(0.4)).unwrap();
            c.advance_secs(7);
            c.exec(b, "burst", models::power_virus()).unwrap();
            c.advance_secs(11);
            c.terminate(b).unwrap();
            c.advance_secs(23);
            let mut out = String::new();
            out.push_str(&c.read_file(a, "/proc/uptime").unwrap());
            out.push_str(&c.read_file(a, "/proc/stat").unwrap());
            let watts: Vec<String> = (0..6)
                .map(|i| format!("{:.6}", c.host_power_w(HostId(i))))
                .collect();
            (
                out,
                watts.join(","),
                format!("{:?}{:?}", c.bill("alice"), c.bill("bob")),
            )
        };
        let lazy = run(CloudConfig::new(CloudProfile::CC1).shards(3));
        let eager = run(CloudConfig::new(CloudProfile::CC1)
            .shards(1)
            .eager_advance());
        assert_eq!(lazy, eager);
    }
}
