//! Utilization-metered billing (§IV-B).
//!
//! The paper's cost argument: under utilization-based pricing (ElasticHosts
//! CPU metering, IBM Cloud billing metrics, EC2 burstable instances, the
//! VMware OnDemand calculator's $2.87/month @1% vs $167.25 @100% for 16
//! vCPUs), a *continuous* power attack runs the meter at 100% and gets
//! expensive, while a synergistic attack that mostly just reads RAPL is
//! nearly free. This module meters exactly that.
//!
//! Tenants are identified by interned [`TenantId`]s (the cloud keeps the
//! name table), so the per-advance metering loop indexes a dense vector
//! instead of hashing and cloning tenant name strings.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::InstanceId;

/// An interned tenant identity: index into the cloud's tenant table.
/// Ids are dense and assigned in first-launch order, so they double as
/// billing-ledger indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Pricing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BillingModel {
    /// Dollars per vCPU-hour of *utilized* CPU time.
    pub usd_per_vcpu_hour_utilized: f64,
    /// Dollars per instance-hour regardless of load (keep-alive floor).
    pub usd_per_instance_hour_base: f64,
}

impl Default for BillingModel {
    fn default() -> Self {
        // Derived from the VMware calculator figures cited in the paper:
        // 16 vCPUs fully utilized ≈ $167.25/month → ≈ $0.0143/vCPU-hour;
        // the ≈$2.87/month floor spread across the month ≈ $0.004/hour.
        BillingModel {
            usd_per_vcpu_hour_utilized: 0.0143,
            usd_per_instance_hour_base: 0.004,
        }
    }
}

/// One tenant's accumulated charges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantBill {
    /// Charges for utilized CPU time.
    pub cpu_usd: f64,
    /// Base instance-hour charges.
    pub base_usd: f64,
    /// Total utilized vCPU-seconds metered.
    pub vcpu_seconds: f64,
}

impl TenantBill {
    /// Total dollars owed.
    pub fn total_usd(&self) -> f64 {
        self.cpu_usd + self.base_usd
    }
}

/// The provider-side metering ledger, indexed by dense [`TenantId`].
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    bills: Vec<TenantBill>,
    // Last metered cumulative cpu usage per instance, to compute deltas.
    last_usage_ns: HashMap<InstanceId, u64>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    fn slot(&mut self, tenant: TenantId) -> &mut TenantBill {
        let idx = tenant.0 as usize;
        if self.bills.len() <= idx {
            self.bills.resize(idx + 1, TenantBill::default());
        }
        &mut self.bills[idx]
    }

    /// Opens metering for an instance.
    pub fn open(&mut self, tenant: TenantId, id: InstanceId) {
        self.last_usage_ns.insert(id, 0);
        let _ = self.slot(tenant);
    }

    /// Closes metering (instance terminated). Accumulated charges remain.
    pub fn close(&mut self, id: InstanceId) {
        self.last_usage_ns.remove(&id);
    }

    /// Meters one interval: `cumulative_usage_ns` is the instance's
    /// cpuacct total; `interval_secs` the wall time since the last meter.
    pub fn meter(
        &mut self,
        tenant: TenantId,
        id: InstanceId,
        cumulative_usage_ns: u64,
        interval_secs: u64,
        model: &BillingModel,
    ) {
        let last = self.last_usage_ns.entry(id).or_insert(0);
        let delta_ns = cumulative_usage_ns.saturating_sub(*last);
        *last = cumulative_usage_ns;
        let vcpu_seconds = delta_ns as f64 / 1e9;
        let bill = self.slot(tenant);
        bill.vcpu_seconds += vcpu_seconds;
        bill.cpu_usd += vcpu_seconds / 3600.0 * model.usd_per_vcpu_hour_utilized;
        bill.base_usd += interval_secs as f64 / 3600.0 * model.usd_per_instance_hour_base;
    }

    /// The bill for a tenant (zero if unknown).
    pub fn bill(&self, tenant: TenantId) -> TenantBill {
        self.bills
            .get(tenant.0 as usize)
            .copied()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TenantId = TenantId(0);

    #[test]
    fn full_utilization_matches_vmware_calculator_scale() {
        // 16 vCPUs fully busy for 30 days ≈ $167 (paper's §IV-B figure).
        let model = BillingModel::default();
        let mut ledger = Ledger::new();
        let id = InstanceId(1);
        ledger.open(T, id);
        let month_secs = 30 * 24 * 3600u64;
        let usage_ns = month_secs * 16 * 1_000_000_000;
        ledger.meter(T, id, usage_ns, month_secs, &model);
        let total = ledger.bill(T).total_usd();
        assert!((140.0..200.0).contains(&total), "monthly bill ${total}");
    }

    #[test]
    fn idle_instance_pays_only_the_floor() {
        let model = BillingModel::default();
        let mut ledger = Ledger::new();
        let id = InstanceId(2);
        ledger.open(T, id);
        let month_secs = 30 * 24 * 3600u64;
        // 1% utilization of 16 vCPUs.
        let usage_ns = (month_secs as f64 * 0.16 * 1e9) as u64;
        ledger.meter(T, id, usage_ns, month_secs, &model);
        let total = ledger.bill(T).total_usd();
        assert!((2.0..6.0).contains(&total), "1% bill ${total}");
    }

    #[test]
    fn metering_uses_deltas_not_absolutes() {
        let model = BillingModel::default();
        let mut ledger = Ledger::new();
        let id = InstanceId(3);
        ledger.open(T, id);
        ledger.meter(T, id, 3_600_000_000_000, 3600, &model);
        let after_first = ledger.bill(T).vcpu_seconds;
        // Same cumulative value again → zero delta.
        ledger.meter(T, id, 3_600_000_000_000, 3600, &model);
        assert!((ledger.bill(T).vcpu_seconds - after_first).abs() < 1e-9);
    }

    #[test]
    fn close_keeps_accumulated_charges() {
        let model = BillingModel::default();
        let mut ledger = Ledger::new();
        let id = InstanceId(4);
        ledger.open(T, id);
        ledger.meter(T, id, 1_000_000_000, 60, &model);
        let before = ledger.bill(T).total_usd();
        ledger.close(id);
        assert!((ledger.bill(T).total_usd() - before).abs() < 1e-12);
    }

    #[test]
    fn tenants_are_billed_independently() {
        let model = BillingModel::default();
        let mut ledger = Ledger::new();
        ledger.open(TenantId(0), InstanceId(1));
        ledger.open(TenantId(3), InstanceId(2));
        ledger.meter(TenantId(3), InstanceId(2), 7_200_000_000_000, 3600, &model);
        assert!(ledger.bill(TenantId(3)).total_usd() > 0.0);
        assert!((ledger.bill(TenantId(0)).total_usd()).abs() < 1e-12);
        // Unknown tenants read as zero.
        assert!((ledger.bill(TenantId(9)).total_usd()).abs() < 1e-12);
    }
}
