//! Provider masking profiles replicating Table I.
//!
//! The paper checked 21 channels on five anonymized commercial container
//! clouds (plus the unmasked local testbed). Each profile below encodes
//! one column of Table I: `Deny` rules for the `○` cells and `Partial`
//! rules for the `◐` cells (CC5's tenant-scoped `cpuinfo`/`meminfo`).

use pseudofs::MaskPolicy;
use serde::{Deserialize, Serialize};
use simkernel::MachineConfig;

/// The cloud providers of Table I, plus the local testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloudProfile {
    /// Local Docker/LXC testbed: no masking at all.
    Local,
    /// CC1: everything exposed except `sched_debug`.
    CC1,
    /// CC2: same exposure as CC1.
    CC2,
    /// CC3: masks `/proc/sys/fs/*` and the net_prio cgroup files.
    CC3,
    /// CC4: masks timers, sched_debug, net_prio, and all of
    /// `/sys/devices` + `/sys/class` (no RAPL/DTS/cpuidle channels).
    CC4,
    /// CC5: the most hardened — masks most host-state channels and
    /// filters `cpuinfo`/`meminfo` to the tenant's allotment (`◐`), yet
    /// still leaves `timer_list` and `sched_debug` readable.
    CC5,
}

impl CloudProfile {
    /// All five commercial profiles (Table I columns).
    pub const COMMERCIAL: [CloudProfile; 5] = [
        CloudProfile::CC1,
        CloudProfile::CC2,
        CloudProfile::CC3,
        CloudProfile::CC4,
        CloudProfile::CC5,
    ];

    /// A short slug for host names and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            CloudProfile::Local => "local",
            CloudProfile::CC1 => "cc1",
            CloudProfile::CC2 => "cc2",
            CloudProfile::CC3 => "cc3",
            CloudProfile::CC4 => "cc4",
            CloudProfile::CC5 => "cc5",
        }
    }

    /// The default machine type this provider runs.
    pub fn default_machine(&self) -> MachineConfig {
        match self {
            CloudProfile::Local => MachineConfig::testbed_i7_6700(),
            _ => MachineConfig::cloud_server(),
        }
    }

    /// The masking policy — one column of Table I.
    pub fn mask_policy(&self) -> MaskPolicy {
        match self {
            CloudProfile::Local => MaskPolicy::none(),
            // CC1/CC2: only sched_debug is unavailable.
            CloudProfile::CC1 | CloudProfile::CC2 => MaskPolicy::none().deny("/proc/sched_debug"),
            // CC3: /proc/sys/fs/* and net_prio masked; sched_debug open.
            CloudProfile::CC3 => MaskPolicy::none()
                .deny("/proc/sys/fs/**")
                .deny("/sys/fs/cgroup/net_prio/**"),
            // CC4: timer_list, sched_debug, net_prio, /sys/devices,
            // /sys/class all masked.
            CloudProfile::CC4 => MaskPolicy::none()
                .deny("/proc/timer_list")
                .deny("/proc/sched_debug")
                .deny("/sys/fs/cgroup/net_prio/**")
                .deny("/sys/devices/**")
                .deny("/sys/class/**"),
            // CC5: hardened except timer_list/sched_debug (as the paper
            // found); cpuinfo/meminfo filtered to the allotment (◐).
            CloudProfile::CC5 => MaskPolicy::none()
                .partial("/proc/cpuinfo")
                .partial("/proc/meminfo")
                .deny("/proc/locks")
                .deny("/proc/zoneinfo")
                .deny("/proc/uptime")
                .deny("/proc/stat")
                .deny("/proc/loadavg")
                .deny("/proc/schedstat")
                .deny("/sys/fs/cgroup/net_prio/**")
                .deny("/sys/devices/**")
                .deny("/sys/class/**"),
        }
    }

    /// The Table I expectation for a channel on this cloud:
    /// `Some(true)` = `●` (fully leaking), `Some(false)` = `○` (masked or
    /// absent), `None` = `◐` (partially leaking).
    pub fn expected_exposure(&self, channel_glob: &str) -> Option<bool> {
        let policy = self.mask_policy();
        // Representative concrete path per channel glob.
        let probe = representative_path(channel_glob);
        match policy.action_for(&probe) {
            Some(pseudofs::MaskAction::Deny) => Some(false),
            Some(pseudofs::MaskAction::Partial) => None,
            None => Some(true),
        }
    }
}

/// Maps a Table I channel glob to a concrete probe path.
pub fn representative_path(channel_glob: &str) -> String {
    match channel_glob {
        "/proc/sys/fs/*" => "/proc/sys/fs/file-nr".to_string(),
        "/proc/sys/kernel/random/*" => "/proc/sys/kernel/random/boot_id".to_string(),
        "/proc/sys/kernel/sched_domain/*" => {
            "/proc/sys/kernel/sched_domain/cpu0/domain0/max_newidle_lb_cost".to_string()
        }
        "/proc/fs/ext4/*" => "/proc/fs/ext4/sda1/mb_groups".to_string(),
        "/sys/fs/cgroup/net_prio/*" => "/sys/fs/cgroup/net_prio/net_prio.ifpriomap".to_string(),
        "/sys/devices/*" => "/sys/devices/system/node/node0/numastat".to_string(),
        "/sys/class/*" => "/sys/class/powercap/intel-rapl:0/energy_uj".to_string(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_profile_masks_nothing() {
        assert!(CloudProfile::Local.mask_policy().rules().is_empty());
    }

    #[test]
    fn table_one_spot_checks() {
        // sched_debug row: ○ ○ ● ○ ●
        let expected = [
            Some(false),
            Some(false),
            Some(true),
            Some(false),
            Some(true),
        ];
        for (cc, want) in CloudProfile::COMMERCIAL.iter().zip(expected) {
            assert_eq!(cc.expected_exposure("/proc/sched_debug"), want, "{cc:?}");
        }
        // timer_list row: ● ● ● ○ ●
        let expected = [Some(true), Some(true), Some(true), Some(false), Some(true)];
        for (cc, want) in CloudProfile::COMMERCIAL.iter().zip(expected) {
            assert_eq!(cc.expected_exposure("/proc/timer_list"), want, "{cc:?}");
        }
        // cpuinfo row: ● ● ● ● ◐
        assert_eq!(CloudProfile::CC5.expected_exposure("/proc/cpuinfo"), None);
        assert_eq!(
            CloudProfile::CC1.expected_exposure("/proc/cpuinfo"),
            Some(true)
        );
        // net_prio row: ● ● ○ ○ ○
        let expected = [
            Some(true),
            Some(true),
            Some(false),
            Some(false),
            Some(false),
        ];
        for (cc, want) in CloudProfile::COMMERCIAL.iter().zip(expected) {
            assert_eq!(
                cc.expected_exposure("/sys/fs/cgroup/net_prio/*"),
                want,
                "{cc:?}"
            );
        }
    }

    #[test]
    fn modules_and_version_open_everywhere() {
        for cc in CloudProfile::COMMERCIAL {
            assert_eq!(cc.expected_exposure("/proc/modules"), Some(true));
            assert_eq!(cc.expected_exposure("/proc/version"), Some(true));
            assert_eq!(cc.expected_exposure("/proc/softirqs"), Some(true));
            assert_eq!(cc.expected_exposure("/proc/interrupts"), Some(true));
        }
    }

    #[test]
    fn representative_paths_are_concrete() {
        for glob in [
            "/proc/sys/fs/*",
            "/proc/sys/kernel/random/*",
            "/sys/fs/cgroup/net_prio/*",
            "/sys/devices/*",
            "/sys/class/*",
        ] {
            assert!(!representative_path(glob).contains('*'));
        }
    }
}
