//! Fleet shards: the unit of parallel stepping and of the global event
//! calendar.
//!
//! A [`Shard`] owns a contiguous run of hosts (whole racks, in the
//! default auto-sharding) and keeps, per host, a *struct-of-arrays*
//! mirror of the scheduling-relevant kernel state: how far the host has
//! been synced (`synced_ns`), its next-event horizon (`horizon_ns`), a
//! runnable flag, and the kernel's epoch sum at the last refresh (the
//! dirty check that lets a sync-on-access skip untouched hosts). The
//! `Host` bodies themselves are boxed behind these arrays, so the
//! advance hot loop walks cache-linear `u64` lanes and only dereferences
//! a host when it is actually due.
//!
//! The calendar is a lazy binary min-heap of `(horizon, slot)` pairs.
//! Entries are never removed in place: a refresh that moves a host's
//! horizon pushes a fresh entry and the stale one is discarded when
//! popped (its value no longer matches `horizon_ns`). The invariant that
//! makes this sound: whenever `horizon_ns[slot] != u64::MAX`, a live
//! entry `(horizon_ns[slot], slot)` sits in the heap — pushes happen
//! when the stored horizon changes, and a pop of a live entry either
//! syncs the host to a strictly later horizon or restores the entry
//! after the pop loop (see `advance_to`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Host;

/// One shard of the fleet: boxed host bodies behind parallel
/// struct-of-arrays scheduling state, plus the shard's event calendar.
//
// `Vec<Box<Host>>` is deliberate: a `Host` embeds a whole kernel, so
// boxing keeps 10k-host construction off the stack and host addresses
// stable while the SoA lanes stay dense.
#[allow(clippy::vec_box)]
#[derive(Debug)]
pub(crate) struct Shard {
    /// Eager mode: step every host every advance (the historical naive
    /// path, kept as the reference baseline; skips all calendar work).
    pub(crate) eager: bool,
    /// The host bodies, boxed so the SoA lanes stay dense.
    pub(crate) hosts: Vec<Box<Host>>,
    /// Fleet instant each host's kernel has been advanced to.
    pub(crate) synced_ns: Vec<u64>,
    /// Fleet instant of the host's next observable event (== synced_ns
    /// while runnable; `u64::MAX` when event-free and quiescent).
    pub(crate) horizon_ns: Vec<u64>,
    /// Whether the host had a runnable process at its last refresh.
    pub(crate) runnable: Vec<bool>,
    /// Kernel epoch sum at the last refresh (sync-on-access dirty flag).
    pub(crate) epoch_sum: Vec<u64>,
    /// Lazy min-heap over `(horizon_ns, slot)`.
    calendar: BinaryHeap<Reverse<(u64, u32)>>,
}

impl Shard {
    /// Wraps `hosts` (already booted, at fleet instant 0) into a shard
    /// and seeds the calendar from their current horizons.
    #[allow(clippy::vec_box)]
    pub(crate) fn new(hosts: Vec<Box<Host>>, eager: bool) -> Self {
        let n = hosts.len();
        let mut shard = Shard {
            eager,
            hosts,
            synced_ns: vec![0; n],
            horizon_ns: vec![u64::MAX; n],
            runnable: vec![false; n],
            epoch_sum: vec![0; n],
            calendar: BinaryHeap::new(),
        };
        for slot in 0..n {
            shard.refresh(slot, 0);
        }
        shard
    }

    /// Hosts in this shard.
    pub(crate) fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Recomputes the SoA mirror for `slot` from its kernel at fleet
    /// instant `now_ns`, pushing a calendar entry when the horizon moved.
    /// Must be called after every external mutation of the host.
    pub(crate) fn refresh(&mut self, slot: usize, now_ns: u64) {
        let kernel = &self.hosts[slot].kernel;
        self.epoch_sum[slot] = kernel.epochs().total();
        let runnable = kernel.has_runnable();
        self.runnable[slot] = runnable;
        let horizon = if runnable {
            // A runnable host is due at every advance: its horizon is
            // "now", so the next pop loop always reaches it.
            now_ns
        } else {
            match kernel.next_event_horizon_ns() {
                Some(ev) => now_ns + ev.saturating_sub(kernel.lifetime_ns()),
                None => u64::MAX,
            }
        };
        if horizon != self.horizon_ns[slot] {
            self.horizon_ns[slot] = horizon;
            if !self.eager && horizon != u64::MAX {
                self.calendar.push(Reverse((horizon, slot as u32)));
            }
        }
    }

    /// Brings `slot` to fleet instant `target_ns`, advancing its kernel
    /// through any accumulated lag. Returns whether the kernel actually
    /// advanced. The quiescent evolution is anchor-absolute
    /// (`advance(a); advance(b)` ≡ `advance(a + b)` while no process is
    /// runnable), so deferring the advance to this instant is
    /// byte-identical to having stepped the host eagerly.
    pub(crate) fn sync_to(&mut self, slot: usize, target_ns: u64) -> bool {
        let lag = target_ns.saturating_sub(self.synced_ns[slot]);
        if lag == 0 && self.hosts[slot].kernel.epochs().total() == self.epoch_sum[slot] {
            return false;
        }
        if lag > 0 {
            self.hosts[slot].kernel.advance(lag);
            self.synced_ns[slot] = target_ns;
        }
        self.refresh(slot, target_ns);
        lag > 0
    }

    /// Advances the shard to fleet instant `target_ns`: pops every due
    /// calendar entry (horizon ≤ target) and syncs those hosts; all
    /// other hosts stay lagged, their closed-form evolution deferred to
    /// their next access or due event. Eager shards sync every host.
    pub(crate) fn advance_to(&mut self, target_ns: u64) {
        let mut pops = 0u64;
        let mut advanced = 0u64;
        if self.eager {
            for slot in 0..self.hosts.len() {
                if self.sync_to(slot, target_ns) {
                    advanced += 1;
                }
            }
        } else {
            // Entries consumed at a horizon the sync did not move (a host
            // synced to exactly `target_ns` that stays due there — e.g. a
            // runnable host already brought to target earlier this loop).
            // Restored only after the loop exits, or popping them again
            // here would spin forever re-consuming the same entry.
            let mut restore: Vec<(u64, u32)> = Vec::new();
            while let Some(&Reverse((horizon, slot))) = self.calendar.peek() {
                if horizon > target_ns {
                    break;
                }
                self.calendar.pop();
                let slot = slot as usize;
                if self.horizon_ns[slot] != horizon {
                    // Stale: the host's horizon moved since this entry
                    // was pushed; a fresher entry supersedes it.
                    continue;
                }
                pops += 1;
                if self.sync_to(slot, target_ns) {
                    advanced += 1;
                }
                if self.horizon_ns[slot] == horizon {
                    // The sync left the horizon exactly where the consumed
                    // entry sat: the host is synced-to-target but still due
                    // at target (next advance must reach it). Defer the
                    // restore so this loop cannot pop it again.
                    restore.push((horizon, slot as u32));
                }
            }
            for (horizon, slot) in restore {
                // Only restore if the horizon still holds — a later pop of
                // a stale duplicate could not have moved it (only sync_to
                // does, and that path records its own restore), but guard
                // against double entries all the same.
                if self.horizon_ns[slot as usize] == horizon {
                    self.calendar.push(Reverse((horizon, slot)));
                }
            }
        }
        if simtrace::enabled() {
            // Mode-exempt: how many hosts the calendar touches depends on
            // the stepping mode (eager touches all), not on the results.
            if pops > 0 {
                simtrace::counters::add_exempt("cloud.calendar_pops", pops);
            }
            if advanced > 0 {
                simtrace::counters::add_exempt("cloud.hosts_advanced", advanced);
            }
        }
    }

    /// Live calendar entries (stale ones included; growth-bound tests).
    pub(crate) fn calendar_len(&self) -> usize {
        self.calendar.len()
    }
}
