//! Core workload specification types.

use serde::{Deserialize, Serialize};

/// Broad class of a workload, used by experiment harnesses to pick
/// representative mixes and by documentation/reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Busy-waiting or near-idle loops (the paper's "idle loop written in C").
    Idle,
    /// Compute-dense integer workloads (Prime95, Dhrystone).
    ComputeInt,
    /// Floating-point heavy workloads (Whetstone, povray).
    ComputeFp,
    /// Memory-bound workloads with high cache-miss rates (stress --vm, mcf).
    MemoryBound,
    /// Mixed workloads (bzip2, gobmk).
    Mixed,
    /// Workloads crafted to maximize power draw (power viruses).
    PowerVirus,
    /// Kernel-intensive workloads (UnixBench syscall/pipe/exec tests).
    KernelIntensive,
}

/// One steady-state phase of a workload.
///
/// All rates are expressed *per CPU cycle of execution on a core*, so the
/// simulated scheduler can account work for arbitrary time slices: when a
/// process in this phase runs for `c` cycles, it retires
/// `c * instructions_per_cycle` instructions, suffers
/// `instructions * cache_miss_per_kilo_instr / 1000` cache misses, and so on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Nominal duration of this phase in nanoseconds of *CPU time*
    /// (not wall time; a descheduled process does not progress).
    pub duration_ns: u64,
    /// Average retired instructions per core cycle (IPC). Typical range
    /// 0.3 (memory bound) to 2.5 (compute dense).
    pub instructions_per_cycle: f64,
    /// Last-level cache misses per 1000 retired instructions.
    pub cache_miss_per_kilo_instr: f64,
    /// Branch mispredictions per 1000 retired instructions.
    pub branch_miss_per_kilo_instr: f64,
    /// Fraction of retired instructions that are floating point, in `[0, 1]`.
    pub fp_ratio: f64,
    /// Resident memory touched by this phase, in bytes.
    pub mem_bytes: u64,
    /// Syscalls issued per second of CPU time.
    pub syscalls_per_sec: f64,
    /// Block-IO bytes per second of CPU time.
    pub io_bytes_per_sec: f64,
    /// Fraction of wall time the workload actually wants the CPU, in
    /// `(0, 1]`. A value below 1 models bursty or interactive programs.
    pub cpu_demand: f64,
}

impl Phase {
    /// A quiescent phase: negligible work, minimal footprint.
    pub fn quiescent(duration_ns: u64) -> Self {
        Phase {
            duration_ns,
            instructions_per_cycle: 0.05,
            cache_miss_per_kilo_instr: 0.1,
            branch_miss_per_kilo_instr: 0.2,
            fp_ratio: 0.0,
            mem_bytes: 4 << 20,
            syscalls_per_sec: 10.0,
            io_bytes_per_sec: 0.0,
            cpu_demand: 0.01,
        }
    }

    /// Validates physical plausibility of the phase parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (non-positive duration, IPC out of `(0, 8]`, negative
    /// rates, ratios outside `[0, 1]`, or demand outside `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_ns == 0 {
            return Err("phase duration must be positive".into());
        }
        if !(self.instructions_per_cycle > 0.0 && self.instructions_per_cycle <= 8.0) {
            return Err(format!(
                "instructions_per_cycle {} outside (0, 8]",
                self.instructions_per_cycle
            ));
        }
        if self.cache_miss_per_kilo_instr < 0.0 || self.branch_miss_per_kilo_instr < 0.0 {
            return Err("miss rates must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.fp_ratio) {
            return Err(format!("fp_ratio {} outside [0, 1]", self.fp_ratio));
        }
        if !(self.cpu_demand > 0.0 && self.cpu_demand <= 1.0) {
            return Err(format!("cpu_demand {} outside (0, 1]", self.cpu_demand));
        }
        if self.syscalls_per_sec < 0.0 || self.io_bytes_per_sec < 0.0 {
            return Err("rates must be non-negative".into());
        }
        Ok(())
    }
}

/// Whether a workload loops over its phases forever or runs them once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Repeat {
    /// Cycle through the phases indefinitely (services, attack loops).
    Forever,
    /// Run the phase list once, then exit (benchmarks).
    Once,
}

/// A complete workload model: a named, classed sequence of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    name: String,
    class: WorkloadClass,
    phases: Vec<Phase>,
    repeat: Repeat,
}

impl WorkloadSpec {
    /// Creates a workload from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase fails [`Phase::validate`].
    /// Workload construction happens at experiment-definition time, where a
    /// malformed model is a programming error.
    pub fn new(
        name: impl Into<String>,
        class: WorkloadClass,
        phases: Vec<Phase>,
        repeat: Repeat,
    ) -> Self {
        assert!(!phases.is_empty(), "workload must have at least one phase");
        for (i, p) in phases.iter().enumerate() {
            if let Err(e) = p.validate() {
                panic!("phase {i} of workload invalid: {e}");
            }
        }
        WorkloadSpec {
            name: name.into(),
            class,
            phases,
            repeat,
        }
    }

    /// The workload's display name (e.g. `"prime"` or `"401.bzip2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload's broad class.
    pub fn class(&self) -> WorkloadClass {
        self.class
    }

    /// The phase list.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Whether the workload loops.
    pub fn repeat(&self) -> Repeat {
        self.repeat
    }

    /// Total CPU time of one pass over the phases, in nanoseconds.
    pub fn pass_duration_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_ns).sum()
    }

    /// The phase in effect after `cpu_ns` nanoseconds of accumulated CPU
    /// time. For [`Repeat::Once`] workloads past their end, the final phase
    /// is returned (callers use [`PhaseCursor`] to detect completion).
    pub fn phase_at_progress(&self, cpu_ns: u64) -> &Phase {
        let pass = self.pass_duration_ns();
        let mut t = match self.repeat {
            Repeat::Forever => cpu_ns % pass,
            Repeat::Once => cpu_ns.min(pass.saturating_sub(1)),
        };
        for p in &self.phases {
            if t < p.duration_ns {
                return p;
            }
            t -= p.duration_ns;
        }
        self.phases.last().expect("non-empty phases")
    }

    /// Sets every phase's `cpu_demand` to `demand` in place, leaving the
    /// rest of the phase structure (durations, rates, name) untouched.
    /// Fleet drivers retarget long-lived background services every
    /// simulated interval; rebuilding the whole spec for a pure demand
    /// change would churn allocations in their hottest loop.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is outside `(0, 1]`, mirroring
    /// [`Phase::validate`] at construction time.
    pub fn set_uniform_cpu_demand(&mut self, demand: f64) {
        assert!(
            demand > 0.0 && demand <= 1.0,
            "cpu_demand {demand} outside (0, 1]"
        );
        for p in &mut self.phases {
            p.cpu_demand = demand;
        }
    }

    /// Returns a copy of this workload scaled so that every phase's
    /// instruction rate is multiplied by `factor` (used to model frequency
    /// scaling or throttling).
    #[must_use]
    pub fn scaled_intensity(&self, factor: f64) -> WorkloadSpec {
        assert!(factor > 0.0, "intensity factor must be positive");
        let phases = self
            .phases
            .iter()
            .map(|p| Phase {
                instructions_per_cycle: (p.instructions_per_cycle * factor).min(8.0),
                ..p.clone()
            })
            .collect();
        WorkloadSpec {
            name: format!("{}@x{factor:.2}", self.name),
            class: self.class,
            phases,
            repeat: self.repeat,
        }
    }
}

/// Tracks a running process's position inside a [`WorkloadSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCursor {
    consumed_cpu_ns: u64,
}

impl PhaseCursor {
    /// A cursor at the beginning of the workload.
    pub fn new() -> Self {
        PhaseCursor { consumed_cpu_ns: 0 }
    }

    /// Total CPU time consumed so far, in nanoseconds.
    pub fn consumed_cpu_ns(&self) -> u64 {
        self.consumed_cpu_ns
    }

    /// Advances the cursor by `cpu_ns` of executed CPU time and reports
    /// whether a [`Repeat::Once`] workload has now finished.
    pub fn advance(&mut self, spec: &WorkloadSpec, cpu_ns: u64) -> bool {
        self.consumed_cpu_ns = self.consumed_cpu_ns.saturating_add(cpu_ns);
        matches!(spec.repeat(), Repeat::Once) && self.consumed_cpu_ns >= spec.pass_duration_ns()
    }

    /// The phase currently in effect.
    pub fn current_phase<'a>(&self, spec: &'a WorkloadSpec) -> &'a Phase {
        spec.phase_at_progress(self.consumed_cpu_ns)
    }
}

impl Default for PhaseCursor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> WorkloadSpec {
        WorkloadSpec::new(
            "t",
            WorkloadClass::Mixed,
            vec![
                Phase {
                    duration_ns: 100,
                    ..Phase::quiescent(100)
                },
                Phase {
                    duration_ns: 200,
                    instructions_per_cycle: 2.0,
                    ..Phase::quiescent(200)
                },
            ],
            Repeat::Forever,
        )
    }

    #[test]
    fn pass_duration_sums_phases() {
        assert_eq!(two_phase().pass_duration_ns(), 300);
    }

    #[test]
    fn phase_lookup_wraps_for_forever() {
        let w = two_phase();
        assert_eq!(w.phase_at_progress(0).duration_ns, 100);
        assert_eq!(w.phase_at_progress(99).duration_ns, 100);
        assert_eq!(w.phase_at_progress(100).duration_ns, 200);
        assert_eq!(w.phase_at_progress(299).duration_ns, 200);
        // wrap-around
        assert_eq!(w.phase_at_progress(300).duration_ns, 100);
        assert_eq!(w.phase_at_progress(701).duration_ns, 200);
    }

    #[test]
    fn phase_lookup_clamps_for_once() {
        let mut w = two_phase();
        w.repeat = Repeat::Once;
        assert_eq!(w.phase_at_progress(10_000).duration_ns, 200);
    }

    #[test]
    fn cursor_reports_completion_only_for_once() {
        let mut once = two_phase();
        once.repeat = Repeat::Once;
        let mut c = PhaseCursor::new();
        assert!(!c.advance(&once, 299));
        assert!(c.advance(&once, 1));

        let forever = two_phase();
        let mut c = PhaseCursor::new();
        assert!(!c.advance(&forever, 1_000_000));
    }

    #[test]
    fn scaled_intensity_caps_ipc() {
        let w = two_phase().scaled_intensity(100.0);
        for p in w.phases() {
            assert!(p.instructions_per_cycle <= 8.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = WorkloadSpec::new("x", WorkloadClass::Idle, vec![], Repeat::Once);
    }

    #[test]
    fn validate_rejects_bad_ipc() {
        let mut p = Phase::quiescent(10);
        p.instructions_per_cycle = 0.0;
        assert!(p.validate().is_err());
        p.instructions_per_cycle = 9.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_demand() {
        let mut p = Phase::quiescent(10);
        p.cpu_demand = 0.0;
        assert!(p.validate().is_err());
        p.cpu_demand = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn workload_spec_survives_serde_roundtrip() {
        let w = two_phase();
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn validate_rejects_bad_fp_ratio() {
        let mut p = Phase::quiescent(10);
        p.fp_ratio = -0.1;
        assert!(p.validate().is_err());
        p.fp_ratio = 1.1;
        assert!(p.validate().is_err());
    }
}
