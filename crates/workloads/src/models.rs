//! Library of concrete workload models.
//!
//! The constants below place each workload at a distinct point in
//! (IPC, cache-miss rate, branch-miss rate, FP ratio) space, mirroring the
//! microarchitectural behaviour of the programs the paper measures. The
//! paper's power-model figures (Fig. 6/7) depend on these *differing
//! slopes*: e.g. `462.libquantum` is streaming/memory-heavy (high cache
//! misses per instruction), `prime` is compute-dense (high IPC, near-zero
//! misses), and `stress` variants sit in between depending on their memory
//! configuration.

use crate::spec::{Phase, Repeat, WorkloadClass, WorkloadSpec};

const SEC: u64 = 1_000_000_000;

#[allow(clippy::too_many_arguments)] // one row of the workload table
fn steady(
    name: &str,
    class: WorkloadClass,
    ipc: f64,
    cmpki: f64,
    bmpki: f64,
    fp: f64,
    mem_mb: u64,
    repeat: Repeat,
    duration_s: u64,
) -> WorkloadSpec {
    WorkloadSpec::new(
        name,
        class,
        vec![Phase {
            duration_ns: duration_s * SEC,
            instructions_per_cycle: ipc,
            cache_miss_per_kilo_instr: cmpki,
            branch_miss_per_kilo_instr: bmpki,
            fp_ratio: fp,
            mem_bytes: mem_mb << 20,
            syscalls_per_sec: 50.0,
            io_bytes_per_sec: 0.0,
            cpu_demand: 1.0,
        }],
        repeat,
    )
}

/// A process that is blocked almost all the time (a shell waiting on a
/// terminal): owns kernel objects (timers, locks) without consuming CPU.
pub fn sleeper() -> WorkloadSpec {
    WorkloadSpec::new(
        "sleeper",
        WorkloadClass::Idle,
        vec![Phase::quiescent(60 * SEC)],
        Repeat::Forever,
    )
}

/// The idle loop written in C from the paper's Fig. 6: spins, retires few
/// instructions per cycle relative to real work, touches almost no memory.
pub fn idle_loop() -> WorkloadSpec {
    steady(
        "idle-loop",
        WorkloadClass::Idle,
        0.9,
        0.02,
        0.1,
        0.0,
        1,
        Repeat::Forever,
        60,
    )
}

/// Prime95-style torture test: very dense integer/FP arithmetic, tiny
/// working set, the paper's canonical power-attack payload (§IV-C runs four
/// copies per container, each contributing ≈ 10 W per core).
pub fn prime() -> WorkloadSpec {
    steady(
        "prime",
        WorkloadClass::ComputeInt,
        2.4,
        0.05,
        0.4,
        0.35,
        8,
        Repeat::Forever,
        60,
    )
}

/// `stress` with a small memory configuration: moderate IPC, light misses.
pub fn stress_small() -> WorkloadSpec {
    steady(
        "stress-small",
        WorkloadClass::Mixed,
        1.4,
        1.5,
        2.0,
        0.05,
        64,
        Repeat::Forever,
        60,
    )
}

/// `stress --vm` with a large memory configuration: thrashes the LLC.
pub fn stress_vm() -> WorkloadSpec {
    steady(
        "stress-vm",
        WorkloadClass::MemoryBound,
        0.6,
        18.0,
        3.0,
        0.02,
        2048,
        Repeat::Forever,
        60,
    )
}

/// SPEC CPU2006 `462.libquantum`: streaming access pattern, the highest
/// cache-miss-per-instruction of the training set.
pub fn libquantum() -> WorkloadSpec {
    steady(
        "462.libquantum",
        WorkloadClass::MemoryBound,
        0.8,
        22.0,
        1.2,
        0.25,
        96,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `401.bzip2`: mixed compression workload (used in Fig. 9).
pub fn bzip2() -> WorkloadSpec {
    steady(
        "401.bzip2",
        WorkloadClass::Mixed,
        1.3,
        3.2,
        6.1,
        0.02,
        856,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `429.mcf`: pointer-chasing, severely memory bound.
pub fn mcf() -> WorkloadSpec {
    steady(
        "429.mcf",
        WorkloadClass::MemoryBound,
        0.35,
        28.0,
        4.5,
        0.01,
        1700,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `456.hmmer`: compute dense, branchy.
pub fn hmmer() -> WorkloadSpec {
    steady(
        "456.hmmer",
        WorkloadClass::ComputeInt,
        2.1,
        0.6,
        3.8,
        0.05,
        64,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `458.sjeng`: chess search, branch-miss heavy.
pub fn sjeng() -> WorkloadSpec {
    steady(
        "458.sjeng",
        WorkloadClass::ComputeInt,
        1.5,
        0.9,
        9.5,
        0.0,
        180,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `445.gobmk`: go engine, mixed.
pub fn gobmk() -> WorkloadSpec {
    steady(
        "445.gobmk",
        WorkloadClass::Mixed,
        1.2,
        1.4,
        8.8,
        0.01,
        30,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `433.milc`: FP lattice QCD, memory streaming.
pub fn milc() -> WorkloadSpec {
    steady(
        "433.milc",
        WorkloadClass::ComputeFp,
        0.9,
        16.0,
        0.8,
        0.6,
        700,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `453.povray`: ray tracing, FP dense, cache friendly.
pub fn povray() -> WorkloadSpec {
    steady(
        "453.povray",
        WorkloadClass::ComputeFp,
        1.9,
        0.2,
        2.5,
        0.55,
        8,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `471.omnetpp`: discrete event simulation, cache hostile.
pub fn omnetpp() -> WorkloadSpec {
    steady(
        "471.omnetpp",
        WorkloadClass::MemoryBound,
        0.7,
        12.0,
        5.5,
        0.0,
        170,
        Repeat::Once,
        120,
    )
}

/// SPEC CPU2006 `464.h264ref`: video encoding, compute dense.
pub fn h264ref() -> WorkloadSpec {
    steady(
        "464.h264ref",
        WorkloadClass::ComputeInt,
        2.0,
        1.1,
        2.9,
        0.15,
        65,
        Repeat::Once,
        120,
    )
}

/// A three-stage batch pipeline (parse → compute → write back): distinct
/// microarchitectural phases in one process, exercising the kernel's
/// phase-cursor machinery the way real batch jobs do.
pub fn batch_pipeline() -> WorkloadSpec {
    WorkloadSpec::new(
        "batch-pipeline",
        WorkloadClass::Mixed,
        vec![
            // Parse: syscall- and IO-heavy, light compute.
            Phase {
                duration_ns: 20 * SEC,
                instructions_per_cycle: 0.9,
                cache_miss_per_kilo_instr: 6.0,
                branch_miss_per_kilo_instr: 7.0,
                fp_ratio: 0.0,
                mem_bytes: 256 << 20,
                syscalls_per_sec: 40_000.0,
                io_bytes_per_sec: 2.0e7,
                cpu_demand: 0.8,
            },
            // Compute: dense arithmetic, cache friendly.
            Phase {
                duration_ns: 60 * SEC,
                instructions_per_cycle: 2.2,
                cache_miss_per_kilo_instr: 0.4,
                branch_miss_per_kilo_instr: 1.5,
                fp_ratio: 0.3,
                mem_bytes: 512 << 20,
                syscalls_per_sec: 100.0,
                io_bytes_per_sec: 0.0,
                cpu_demand: 1.0,
            },
            // Write back: streaming stores, miss heavy.
            Phase {
                duration_ns: 15 * SEC,
                instructions_per_cycle: 0.7,
                cache_miss_per_kilo_instr: 15.0,
                branch_miss_per_kilo_instr: 2.0,
                fp_ratio: 0.0,
                mem_bytes: 512 << 20,
                syscalls_per_sec: 15_000.0,
                io_bytes_per_sec: 4.0e7,
                cpu_demand: 0.9,
            },
        ],
        Repeat::Once,
    )
}

/// A genetic-algorithm style power virus (SYMPO/MAMPO from the paper's
/// related work): tuned to maximize simultaneous functional-unit activity,
/// drawing more power than any natural benchmark.
pub fn power_virus() -> WorkloadSpec {
    steady(
        "power-virus",
        WorkloadClass::PowerVirus,
        3.2,
        6.0,
        0.5,
        0.45,
        128,
        Repeat::Forever,
        60,
    )
}

/// A web-serving style workload with bursty demand; used as background
/// tenant load in cloud simulations.
pub fn web_service(demand: f64) -> WorkloadSpec {
    let demand = demand.clamp(0.01, 1.0);
    WorkloadSpec::new(
        format!("web-service@{demand:.2}"),
        WorkloadClass::Mixed,
        vec![Phase {
            duration_ns: 60 * SEC,
            instructions_per_cycle: 1.1,
            cache_miss_per_kilo_instr: 4.0,
            branch_miss_per_kilo_instr: 5.0,
            fp_ratio: 0.02,
            mem_bytes: 512 << 20,
            syscalls_per_sec: 20_000.0,
            io_bytes_per_sec: 2.0e6,
            cpu_demand: demand,
        }],
        Repeat::Forever,
    )
}

/// The training set the paper uses to fit its power model (Fig. 6/7):
/// idle loop, prime, 462.libquantum, and stress at two memory configurations.
pub fn training_set() -> Vec<WorkloadSpec> {
    vec![
        idle_loop(),
        prime(),
        libquantum(),
        stress_small(),
        stress_vm(),
    ]
}

/// The held-out evaluation set (paper: SPEC benchmarks runnable in Docker,
/// disjoint from the training set) used for the Fig. 8 accuracy experiment.
pub fn evaluation_set() -> Vec<WorkloadSpec> {
    vec![
        bzip2(),
        mcf(),
        hmmer(),
        sjeng(),
        gobmk(),
        milc(),
        povray(),
        omnetpp(),
        h264ref(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_models_validate() {
        let mut all = training_set();
        all.extend(evaluation_set());
        all.push(power_virus());
        all.push(web_service(0.3));
        for w in &all {
            for p in w.phases() {
                p.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn training_and_evaluation_sets_are_disjoint() {
        let train: HashSet<_> = training_set()
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        for w in evaluation_set() {
            assert!(
                !train.contains(w.name()),
                "{} leaked into training",
                w.name()
            );
        }
    }

    #[test]
    fn workload_slopes_are_distinct() {
        // Fig. 6 requires visibly different energy-per-instruction slopes.
        // Cache-miss rate is the dominant slope driver; check the training
        // set spans more than an order of magnitude.
        let rates: Vec<f64> = training_set()
            .iter()
            .map(|w| w.phases()[0].cache_miss_per_kilo_instr)
            .collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 10.0, "slope spread too small: {min}..{max}");
    }

    #[test]
    fn power_virus_outdraws_natural_benchmarks() {
        // Proxy for power: IPC * (1 + fp) — the virus should dominate.
        let virus = power_virus();
        let vp = virus.phases()[0].instructions_per_cycle * (1.0 + virus.phases()[0].fp_ratio);
        for w in training_set().iter().chain(evaluation_set().iter()) {
            let p = &w.phases()[0];
            assert!(
                vp > p.instructions_per_cycle * (1.0 + p.fp_ratio),
                "{} outdraws the power virus",
                w.name()
            );
        }
    }

    #[test]
    fn batch_pipeline_has_three_distinct_phases() {
        let w = batch_pipeline();
        assert_eq!(w.phases().len(), 3);
        let ipcs: Vec<f64> = w
            .phases()
            .iter()
            .map(|p| p.instructions_per_cycle)
            .collect();
        assert!(ipcs[1] > ipcs[0] * 2.0 && ipcs[1] > ipcs[2] * 2.0);
        // Phase lookup transitions at the boundaries.
        assert_eq!(
            w.phase_at_progress(19 * 1_000_000_000).syscalls_per_sec,
            40_000.0
        );
        assert_eq!(
            w.phase_at_progress(21 * 1_000_000_000).syscalls_per_sec,
            100.0
        );
    }

    #[test]
    fn web_service_demand_is_clamped() {
        assert!(web_service(5.0).phases()[0].cpu_demand <= 1.0);
        assert!(web_service(-1.0).phases()[0].cpu_demand > 0.0);
    }

    #[test]
    fn spec_benchmarks_terminate() {
        for w in evaluation_set() {
            assert_eq!(w.repeat(), crate::Repeat::Once, "{}", w.name());
        }
    }
}
