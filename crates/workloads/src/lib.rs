//! Synthetic workload and benchmark models.
//!
//! The ContainerLeaks paper evaluates with real programs — Prime95, stress,
//! SPEC CPU2006, UnixBench — running on real hardware. This crate provides
//! the *models* of those programs that the simulated kernel executes: each
//! workload is a sequence of [`Phase`]s describing, per unit of CPU time, how
//! many instructions retire, how often caches and branch predictors miss,
//! what fraction of instructions are floating-point, how much memory is
//! touched, and how often the kernel is entered.
//!
//! Distinct workloads occupy distinct points in this microarchitectural
//! space, which is exactly the property the paper's power model (Fig. 6 and
//! Fig. 7: energy is linear in retired instructions / cache misses with
//! workload-dependent slopes) relies on.
//!
//! # Example
//!
//! ```
//! use workloads::{models, WorkloadSpec};
//!
//! let prime: WorkloadSpec = models::prime();
//! let phase = prime.phase_at_progress(0);
//! assert!(phase.instructions_per_cycle > 1.0, "prime is compute dense");
//! ```

pub mod models;
pub mod spec;
pub mod unixbench;

pub use spec::{Phase, PhaseCursor, Repeat, WorkloadClass, WorkloadSpec};
pub use unixbench::{OpMix, UnixBenchSpec, UNIXBENCH_SUITE};
