//! UnixBench-like micro-benchmark suite used for the Table III overhead
//! experiment.
//!
//! Each benchmark is described as an [`OpMix`]: the bundle of user-space CPU
//! time and kernel operations (syscalls, pipe round trips, forks, execs,
//! file-copy blocks, shell-script invocations) that *one iteration* of the
//! benchmark performs. The overhead harness in the `powerns` crate replays
//! these mixes against the simulated kernel's cost model twice — with the
//! power-based namespace disabled and enabled — and reports the relative
//! slowdown per benchmark, reproducing the structure of the paper's
//! Table III (e.g. pipe-based context switching pays the inter-cgroup
//! perf-event toggle on every round trip with one parallel copy, but almost
//! never with eight copies keeping all cores inside the same cgroup).

use serde::{Deserialize, Serialize};

/// Kernel/user operation bundle for one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpMix {
    /// Pure user-space CPU nanoseconds per iteration.
    pub user_ns: u64,
    /// Plain syscalls (getpid-style) per iteration.
    pub syscalls: u64,
    /// Pipe round trips per iteration. Each round trip forces two context
    /// switches between the two benchmark processes (or between a benchmark
    /// process and the idle task when the partner is not runnable).
    pub pipe_round_trips: u64,
    /// `fork()` calls per iteration.
    pub forks: u64,
    /// `execve()` calls per iteration.
    pub execs: u64,
    /// File-copy blocks per iteration (each block is one read + one write
    /// syscall plus buffer-size-dependent copy time).
    pub file_blocks: u64,
    /// Copy buffer size in bytes (meaningful when `file_blocks > 0`).
    pub block_bytes: u64,
    /// Shell scripts started per iteration (each is a fork+exec chain of
    /// several processes).
    pub shell_scripts: u64,
}

/// A named UnixBench-style benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnixBenchSpec {
    /// Display name matching the paper's Table III rows.
    pub name: &'static str,
    /// Work performed by one iteration.
    pub mix: OpMix,
    /// Number of cooperating processes inside one copy of the benchmark
    /// (pipe-based context switching uses 2; most others use 1).
    pub procs_per_copy: u32,
    /// UnixBench baseline score divisor: the suite's index normalizes raw
    /// iterations/second against a 1995-era SPARCstation; we keep per-bench
    /// scale factors so our simulated scores land near the paper's figures.
    pub index_scale: f64,
}

impl UnixBenchSpec {
    /// Whether the benchmark's inner loop is dominated by context switching.
    pub fn is_switch_bound(&self) -> bool {
        self.mix.pipe_round_trips > 0 && self.procs_per_copy > 1
    }
}

/// The twelve benchmarks of Table III, in paper order.
pub const UNIXBENCH_SUITE: &[UnixBenchSpec] = &[
    UnixBenchSpec {
        name: "Dhrystone 2 using register variables",
        mix: OpMix {
            user_ns: 50_000,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 0.1894,
    },
    UnixBenchSpec {
        name: "Double-Precision Whetstone",
        mix: OpMix {
            user_ns: 180_000,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 0.1668,
    },
    UnixBenchSpec {
        name: "Execl Throughput",
        mix: OpMix {
            user_ns: 24_000,
            syscalls: 40,
            execs: 1,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 0.0798,
    },
    UnixBenchSpec {
        name: "File Copy 1024 bufsize 2000 maxblocks",
        mix: OpMix {
            user_ns: 4_000,
            file_blocks: 40,
            block_bytes: 1024,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 0.1422,
    },
    UnixBenchSpec {
        name: "File Copy 256 bufsize 500 maxblocks",
        mix: OpMix {
            user_ns: 2_200,
            file_blocks: 40,
            block_bytes: 256,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 0.0794,
    },
    UnixBenchSpec {
        name: "File Copy 4096 bufsize 8000 maxblocks",
        mix: OpMix {
            user_ns: 8_000,
            file_blocks: 40,
            block_bytes: 4096,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 0.321,
    },
    UnixBenchSpec {
        name: "Pipe Throughput",
        mix: OpMix {
            user_ns: 600,
            syscalls: 2,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 2.127e-3,
    },
    UnixBenchSpec {
        name: "Pipe-based Context Switching",
        mix: OpMix {
            user_ns: 500,
            pipe_round_trips: 1,
            ..EMPTY_MIX
        },
        procs_per_copy: 2,
        index_scale: 2.56e-3,
    },
    UnixBenchSpec {
        name: "Process Creation",
        mix: OpMix {
            user_ns: 30_000,
            syscalls: 6,
            forks: 1,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 0.1226,
    },
    UnixBenchSpec {
        name: "Shell Scripts (1 concurrent)",
        mix: OpMix {
            user_ns: 160_000,
            syscalls: 120,
            shell_scripts: 1,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 9.245,
    },
    UnixBenchSpec {
        name: "Shell Scripts (8 concurrent)",
        mix: OpMix {
            user_ns: 1_200_000,
            syscalls: 960,
            shell_scripts: 8,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 233.8,
    },
    UnixBenchSpec {
        name: "System Call Overhead",
        mix: OpMix {
            user_ns: 300,
            syscalls: 5,
            ..EMPTY_MIX
        },
        procs_per_copy: 1,
        index_scale: 1.963e-3,
    },
];

const EMPTY_MIX: OpMix = OpMix {
    user_ns: 0,
    syscalls: 0,
    pipe_round_trips: 0,
    forks: 0,
    execs: 0,
    file_blocks: 0,
    block_bytes: 0,
    shell_scripts: 0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table_iii_rows() {
        assert_eq!(UNIXBENCH_SUITE.len(), 12);
        assert_eq!(
            UNIXBENCH_SUITE[0].name,
            "Dhrystone 2 using register variables"
        );
        assert_eq!(UNIXBENCH_SUITE[11].name, "System Call Overhead");
    }

    #[test]
    fn only_pipe_context_switching_is_switch_bound() {
        let bound: Vec<_> = UNIXBENCH_SUITE
            .iter()
            .filter(|b| b.is_switch_bound())
            .map(|b| b.name)
            .collect();
        assert_eq!(bound, vec!["Pipe-based Context Switching"]);
    }

    #[test]
    fn every_iteration_does_some_work() {
        for b in UNIXBENCH_SUITE {
            let m = &b.mix;
            let total = m.user_ns
                + m.syscalls
                + m.pipe_round_trips
                + m.forks
                + m.execs
                + m.file_blocks
                + m.shell_scripts;
            assert!(total > 0, "{} performs no work", b.name);
        }
    }

    #[test]
    fn file_copy_benches_define_block_size() {
        for b in UNIXBENCH_SUITE {
            if b.mix.file_blocks > 0 {
                assert!(b.mix.block_bytes > 0, "{}", b.name);
            }
        }
    }
}
