//! Namespaces: the seven types of Linux 4.7 (§II-A of the paper).
//!
//! A namespace virtualizes one class of system resource for the group of
//! processes associated with it. The leakage channels the paper identifies
//! exist precisely where a kernel handler reads *global* state instead of
//! the state of the caller's namespace — so this module's job is to hold
//! the properly-namespaced state, letting the pseudo-file layer choose
//! (per file, as the real kernel does) whether to consult it.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::KernelError;
use crate::process::HostPid;

/// The namespace types of Linux 4.7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NamespaceKind {
    /// Mount points.
    Mnt,
    /// Host and domain name.
    Uts,
    /// Process identifiers.
    Pid,
    /// Network devices, addresses, routing.
    Net,
    /// System V IPC and POSIX queues.
    Ipc,
    /// UID/GID mappings.
    User,
    /// Cgroup root virtualization.
    Cgroup,
}

impl NamespaceKind {
    /// All seven kinds, in the order used for namespace-set construction.
    pub const ALL: [NamespaceKind; 7] = [
        NamespaceKind::Mnt,
        NamespaceKind::Uts,
        NamespaceKind::Pid,
        NamespaceKind::Net,
        NamespaceKind::Ipc,
        NamespaceKind::User,
        NamespaceKind::Cgroup,
    ];
}

/// Opaque namespace identifier (akin to the inode numbers under
/// `/proc/<pid>/ns/`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NsId(pub u32);

impl fmt::Display for NsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ns:[{}]", 4_026_531_840u32 + self.0)
    }
}

/// The full set of namespaces a process is associated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NamespaceSet {
    /// Mount namespace.
    pub mnt: NsId,
    /// UTS namespace.
    pub uts: NsId,
    /// PID namespace.
    pub pid: NsId,
    /// Network namespace.
    pub net: NsId,
    /// IPC namespace.
    pub ipc: NsId,
    /// User namespace.
    pub user: NsId,
    /// Cgroup namespace.
    pub cgroup: NsId,
}

impl NamespaceSet {
    /// The namespace id of the given kind.
    pub fn of(&self, kind: NamespaceKind) -> NsId {
        match kind {
            NamespaceKind::Mnt => self.mnt,
            NamespaceKind::Uts => self.uts,
            NamespaceKind::Pid => self.pid,
            NamespaceKind::Net => self.net,
            NamespaceKind::Ipc => self.ipc,
            NamespaceKind::User => self.user,
            NamespaceKind::Cgroup => self.cgroup,
        }
    }
}

/// Per-kind namespace payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NamespaceData {
    /// Mount namespace: the visible mount table.
    Mnt {
        /// Mount points visible in this namespace.
        mounts: Vec<String>,
    },
    /// UTS namespace: nodename and domainname.
    Uts {
        /// Host name.
        hostname: String,
        /// NIS domain name.
        domainname: String,
    },
    /// PID namespace: pid allocation and host-pid mapping. PIDs in a child
    /// namespace are also visible (with different numbers) in every
    /// ancestor namespace, exactly as in Linux.
    Pid {
        /// Parent pid namespace (None for the root).
        parent: Option<NsId>,
        /// Next pid to hand out in this namespace.
        next_pid: u32,
        /// host pid → pid within this namespace.
        map: BTreeMap<HostPid, u32>,
    },
    /// Network namespace: device names are stored here; counters live in
    /// [`crate::net`].
    Net {
        /// Interfaces visible in this namespace.
        devices: Vec<String>,
    },
    /// IPC namespace (no observable payload needed by the channels).
    Ipc,
    /// User namespace: a single `inside-outside-length` uid mapping.
    User {
        /// (inside uid, outside uid, range length).
        uid_map: (u32, u32, u32),
    },
    /// Cgroup namespace: the cgroup path that appears as `/` inside.
    Cgroup {
        /// Root path prefix stripped from `/proc/self/cgroup` views.
        root_path: String,
    },
}

impl NamespaceData {
    /// The kind this payload belongs to.
    pub fn kind(&self) -> NamespaceKind {
        match self {
            NamespaceData::Mnt { .. } => NamespaceKind::Mnt,
            NamespaceData::Uts { .. } => NamespaceKind::Uts,
            NamespaceData::Pid { .. } => NamespaceKind::Pid,
            NamespaceData::Net { .. } => NamespaceKind::Net,
            NamespaceData::Ipc => NamespaceKind::Ipc,
            NamespaceData::User { .. } => NamespaceKind::User,
            NamespaceData::Cgroup { .. } => NamespaceKind::Cgroup,
        }
    }
}

/// Registry of all namespaces on one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamespaceRegistry {
    next: u32,
    table: HashMap<NsId, NamespaceData>,
    host: NamespaceSet,
}

impl NamespaceRegistry {
    /// Creates the registry with the initial (host) namespace set.
    pub fn new(hostname: &str) -> Self {
        let mut reg = NamespaceRegistry {
            next: 0,
            table: HashMap::new(),
            host: NamespaceSet {
                mnt: NsId(0),
                uts: NsId(0),
                pid: NsId(0),
                net: NsId(0),
                ipc: NsId(0),
                user: NsId(0),
                cgroup: NsId(0),
            },
        };
        let mnt = reg.insert(NamespaceData::Mnt {
            mounts: vec!["/".into(), "/proc".into(), "/sys".into(), "/dev".into()],
        });
        let uts = reg.insert(NamespaceData::Uts {
            hostname: hostname.to_string(),
            domainname: "(none)".into(),
        });
        let pid = reg.insert(NamespaceData::Pid {
            parent: None,
            next_pid: 1,
            map: BTreeMap::new(),
        });
        let net = reg.insert(NamespaceData::Net {
            devices: vec!["lo".into(), "eth0".into(), "eth1".into(), "docker0".into()],
        });
        let ipc = reg.insert(NamespaceData::Ipc);
        let user = reg.insert(NamespaceData::User {
            uid_map: (0, 0, u32::MAX),
        });
        let cgroup = reg.insert(NamespaceData::Cgroup {
            root_path: "/".into(),
        });
        reg.host = NamespaceSet {
            mnt,
            uts,
            pid,
            net,
            ipc,
            user,
            cgroup,
        };
        reg
    }

    fn insert(&mut self, data: NamespaceData) -> NsId {
        let id = NsId(self.next);
        self.next += 1;
        self.table.insert(id, data);
        id
    }

    /// The initial namespace set the host's processes live in.
    pub fn host_set(&self) -> NamespaceSet {
        self.host
    }

    /// Looks up a namespace payload.
    pub fn get(&self, id: NsId) -> Option<&NamespaceData> {
        self.table.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: NsId) -> Option<&mut NamespaceData> {
        self.table.get_mut(&id)
    }

    /// Number of namespaces in existence.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the registry is empty (never true in practice: the host set
    /// always exists).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Creates a fresh full namespace set for a container, as `unshare`-ing
    /// all seven types does. The PID namespace is a child of the host's;
    /// the NET namespace starts with only `lo` and a virtual `eth0`;
    /// the cgroup namespace is rooted at `cgroup_root`.
    pub fn create_container_set(
        &mut self,
        hostname: &str,
        cgroup_root: &str,
        uid_map: (u32, u32, u32),
    ) -> NamespaceSet {
        let host_pid_ns = self.host.pid;
        NamespaceSet {
            mnt: self.insert(NamespaceData::Mnt {
                mounts: vec!["/".into(), "/proc".into(), "/sys".into()],
            }),
            uts: self.insert(NamespaceData::Uts {
                hostname: hostname.to_string(),
                domainname: "(none)".into(),
            }),
            pid: self.insert(NamespaceData::Pid {
                parent: Some(host_pid_ns),
                next_pid: 1,
                map: BTreeMap::new(),
            }),
            net: self.insert(NamespaceData::Net {
                devices: vec!["lo".into(), "eth0".into()],
            }),
            ipc: self.insert(NamespaceData::Ipc),
            user: self.insert(NamespaceData::User { uid_map }),
            cgroup: self.insert(NamespaceData::Cgroup {
                root_path: cgroup_root.to_string(),
            }),
        }
    }

    /// Allocates a pid for `host_pid` in `pid_ns` *and every ancestor*
    /// namespace, returning the pid as seen inside `pid_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchNamespace`] if `pid_ns` is unknown, or
    /// [`KernelError::NamespaceKindMismatch`] if it is not a PID namespace.
    pub fn allocate_pid(&mut self, pid_ns: NsId, host_pid: HostPid) -> Result<u32, KernelError> {
        let mut chain = Vec::new();
        let mut cur = Some(pid_ns);
        while let Some(id) = cur {
            match self.table.get(&id) {
                Some(NamespaceData::Pid { parent, .. }) => {
                    chain.push(id);
                    cur = *parent;
                }
                Some(other) => {
                    return Err(KernelError::NamespaceKindMismatch {
                        expected: NamespaceKind::Pid,
                        actual: other.kind(),
                    })
                }
                None => return Err(KernelError::NoSuchNamespace(id)),
            }
        }
        let mut innermost = 0;
        let root_pid_ns = self.host.pid;
        for (depth, id) in chain.iter().enumerate() {
            if let Some(NamespaceData::Pid { next_pid, map, .. }) = self.table.get_mut(id) {
                // In the root namespace the ns-pid *is* the host pid.
                let assigned = if *id == root_pid_ns {
                    host_pid.0
                } else {
                    let p = *next_pid;
                    *next_pid += 1;
                    p
                };
                map.insert(host_pid, assigned);
                if depth == 0 {
                    innermost = assigned;
                }
            }
        }
        Ok(innermost)
    }

    /// Removes `host_pid` from `pid_ns` and all ancestors (process exit).
    pub fn release_pid(&mut self, pid_ns: NsId, host_pid: HostPid) {
        let mut cur = Some(pid_ns);
        while let Some(id) = cur {
            match self.table.get_mut(&id) {
                Some(NamespaceData::Pid { parent, map, .. }) => {
                    map.remove(&host_pid);
                    cur = *parent;
                }
                _ => break,
            }
        }
    }

    /// Removes a container's seven namespaces from the registry
    /// (container teardown). Host namespaces are never removed, even if
    /// a stale or hostile set references them — destroying a container
    /// must not be able to tear down the initial namespaces. Without
    /// this, high-churn create/destroy loops grow the registry without
    /// bound and destroyed-container payloads linger forever.
    pub fn remove_container_set(&mut self, set: &NamespaceSet) {
        for kind in NamespaceKind::ALL {
            let id = set.of(kind);
            if id != self.host.of(kind) {
                self.table.remove(&id);
            }
        }
    }

    /// The pid of `host_pid` as seen from `pid_ns`, if visible there.
    pub fn pid_in_ns(&self, pid_ns: NsId, host_pid: HostPid) -> Option<u32> {
        match self.table.get(&pid_ns)? {
            NamespaceData::Pid { map, .. } => map.get(&host_pid).copied(),
            _ => None,
        }
    }

    /// All host pids visible from `pid_ns`, with their in-namespace pids.
    pub fn pids_visible_from(&self, pid_ns: NsId) -> Vec<(HostPid, u32)> {
        match self.table.get(&pid_ns) {
            Some(NamespaceData::Pid { map, .. }) => map.iter().map(|(h, p)| (*h, *p)).collect(),
            _ => Vec::new(),
        }
    }

    /// The hostname of a UTS namespace.
    pub fn hostname(&self, uts: NsId) -> Option<&str> {
        match self.table.get(&uts)? {
            NamespaceData::Uts { hostname, .. } => Some(hostname),
            _ => None,
        }
    }

    /// The device list of a NET namespace.
    pub fn net_devices(&self, net: NsId) -> Option<&[String]> {
        match self.table.get(&net)? {
            NamespaceData::Net { devices } => Some(devices),
            _ => None,
        }
    }

    /// The cgroup-namespace root path.
    pub fn cgroup_root(&self, cg: NsId) -> Option<&str> {
        match self.table.get(&cg)? {
            NamespaceData::Cgroup { root_path } => Some(root_path),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_set_is_complete() {
        let reg = NamespaceRegistry::new("h");
        let set = reg.host_set();
        for kind in NamespaceKind::ALL {
            let data = reg.get(set.of(kind)).expect("missing host namespace");
            assert_eq!(data.kind(), kind);
        }
    }

    #[test]
    fn container_set_is_fresh() {
        let mut reg = NamespaceRegistry::new("h");
        let host = reg.host_set();
        let c = reg.create_container_set("c1", "/docker/abc", (0, 100_000, 65536));
        for kind in NamespaceKind::ALL {
            assert_ne!(host.of(kind), c.of(kind), "{kind:?} not unshared");
        }
        assert_eq!(reg.hostname(c.uts), Some("c1"));
        assert_eq!(reg.net_devices(c.net).unwrap(), &["lo", "eth0"]);
        assert_eq!(reg.cgroup_root(c.cgroup), Some("/docker/abc"));
    }

    #[test]
    fn pid_allocation_propagates_to_ancestors() {
        let mut reg = NamespaceRegistry::new("h");
        let host = reg.host_set();
        let c = reg.create_container_set("c1", "/", (0, 0, 1));
        // Host process: ns pid == host pid.
        let hp = HostPid(1234);
        let ns_pid = reg.allocate_pid(host.pid, hp).unwrap();
        assert_eq!(ns_pid, 1234);

        // Container process: pid 1 inside, visible with host pid outside.
        let cp = HostPid(1300);
        let inner = reg.allocate_pid(c.pid, cp).unwrap();
        assert_eq!(inner, 1);
        assert_eq!(reg.pid_in_ns(host.pid, cp), Some(1300));
        assert_eq!(reg.pid_in_ns(c.pid, cp), Some(1));
        // Host process invisible from the container namespace.
        assert_eq!(reg.pid_in_ns(c.pid, hp), None);
    }

    #[test]
    fn container_pids_are_dense_from_one() {
        let mut reg = NamespaceRegistry::new("h");
        let c = reg.create_container_set("c1", "/", (0, 0, 1));
        for i in 0..5u32 {
            let inner = reg.allocate_pid(c.pid, HostPid(2000 + i)).unwrap();
            assert_eq!(inner, i + 1);
        }
        assert_eq!(reg.pids_visible_from(c.pid).len(), 5);
    }

    #[test]
    fn release_removes_everywhere() {
        let mut reg = NamespaceRegistry::new("h");
        let host = reg.host_set();
        let c = reg.create_container_set("c1", "/", (0, 0, 1));
        let p = HostPid(555);
        reg.allocate_pid(c.pid, p).unwrap();
        reg.release_pid(c.pid, p);
        assert_eq!(reg.pid_in_ns(c.pid, p), None);
        assert_eq!(reg.pid_in_ns(host.pid, p), None);
    }

    #[test]
    fn allocate_pid_rejects_non_pid_namespace() {
        let mut reg = NamespaceRegistry::new("h");
        let host = reg.host_set();
        let err = reg.allocate_pid(host.uts, HostPid(1)).unwrap_err();
        assert!(matches!(err, KernelError::NamespaceKindMismatch { .. }));
    }

    #[test]
    fn allocate_pid_rejects_unknown_namespace() {
        let mut reg = NamespaceRegistry::new("h");
        let err = reg.allocate_pid(NsId(9999), HostPid(1)).unwrap_err();
        assert!(matches!(err, KernelError::NoSuchNamespace(_)));
    }

    #[test]
    fn ns_display_looks_like_proc_ns_links() {
        assert_eq!(NsId(2).to_string(), "ns:[4026531842]");
    }
}
