//! Seeded, schedule-driven fault injection.
//!
//! The paper's measurements ran against live commercial clouds where
//! channels disappear mid-scan, counters reset on crash-reboots, and
//! sensor telemetry is noisy. A [`FaultPlan`] reproduces those conditions
//! deterministically: every fault is a *time window* precomputed from a
//! seed, and every fault decision is a pure function of (plan, elapsed
//! simulated time, path), so a faulted run is exactly as reproducible as a
//! clean one — `--jobs 1` and `--jobs 4` stay byte-identical because no
//! fault decision depends on wall time, thread scheduling, or mutable
//! shared state.
//!
//! Fault classes:
//!
//! * **Transient pseudo-fs read faults** ([`FsFaultKind`]): a window
//!   during which reads of a seeded subset of paths fail with `EIO` or a
//!   truncated (short) read. Readers that retry after the window has
//!   passed succeed — which is what makes bounded retry-with-backoff in
//!   the scanner meaningful.
//! * **Crash-reboots**: instants at which the kernel rotates its boot id,
//!   resets its uptime clock, and zeroes its monotone hardware counters
//!   (RAPL energy, cpuidle residency) — see
//!   [`Kernel::advance`](crate::Kernel::advance).
//! * **Sensor faults** ([`SensorFaultKind`]): RAPL/coretemp dropout
//!   (reads fail), thermal saturation (DTS pegged at its ceiling), and
//!   energy-counter quantization jitter (coarser counter steps).
//! * **Clock skew**: windows during which `/proc/uptime` is shifted by a
//!   bounded offset, modeling unsynchronized clocks across hosts.
//!
//! Plan times are *relative to installation*
//! ([`Kernel::install_faults`](crate::Kernel::install_faults)), so a plan
//! built for a 10-minute horizon works the same on a freshly booted
//! kernel and on a fleet host fast-forwarded through 20 days of uptime.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::time::NANOS_PER_SEC;

/// How a pseudo-fs read fails inside a transient fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsFaultKind {
    /// The read fails outright (`EIO`).
    Eio,
    /// The read returns fewer bytes than the file holds; the simulation
    /// surfaces this as an error rather than fabricating partial data.
    ShortRead,
}

/// How a hardware sensor misbehaves inside a sensor fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorFaultKind {
    /// The sensor file is unreadable for the window's duration.
    Dropout,
    /// Thermal sensors report their saturation ceiling (a stuck DTS).
    Saturation,
    /// Energy counters are quantized to a coarse step (firmware
    /// truncation), adding deterministic quantization jitter to deltas.
    QuantizationJitter,
}

/// The sensor family a path belongs to, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SensorClass {
    /// RAPL `energy_uj` counters under `/sys/class/powercap`.
    Energy,
    /// coretemp / thermal-zone temperature inputs.
    Temp,
}

#[derive(Debug, Clone, Copy)]
struct FsWindow {
    start_ns: u64,
    end_ns: u64,
    path_salt: u64,
    kind: FsFaultKind,
}

#[derive(Debug, Clone, Copy)]
struct SensorWindow {
    start_ns: u64,
    end_ns: u64,
    kind: SensorFaultKind,
}

#[derive(Debug, Clone, Copy)]
struct SkewWindow {
    start_ns: u64,
    end_ns: u64,
    skew_ns: i64,
}

/// A deterministic fault schedule. Build one with [`FaultPlan::builder`]
/// or take the canonical all-classes plan from [`FaultPlan::standard`],
/// then install it with [`Kernel::install_faults`](crate::Kernel::install_faults).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    fs: Vec<FsWindow>,
    sensors: Vec<SensorWindow>,
    skews: Vec<SkewWindow>,
    reboots_ns: Vec<u64>,
}

impl FaultPlan {
    /// Starts building a plan whose window placement derives from `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        // Domain-separation constant: keeps the fault schedule decorrelated
        // from the kernel's own seed-derived streams.
        const PLAN_SALT: u64 = 0xfa17_0001_dead_beef;
        FaultPlanBuilder {
            rng: StdRng::seed_from_u64(seed ^ PLAN_SALT),
            horizon_ns: 600 * NANOS_PER_SEC,
            plan: FaultPlan::default(),
        }
    }

    /// The canonical all-classes plan used by the fault-matrix tests and
    /// the CI byte-compare: transient read faults, sensor faults, clock
    /// skew, and one crash-reboot mid-horizon.
    pub fn standard(seed: u64) -> FaultPlan {
        FaultPlan::builder(seed)
            .horizon_secs(300)
            .transient_reads(6)
            .sensor_faults(6)
            .clock_skew(2)
            .reboot_at_secs(150)
            .build()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.fs.is_empty()
            && self.sensors.is_empty()
            && self.skews.is_empty()
            && self.reboots_ns.is_empty()
    }

    /// Number of scheduled crash-reboots.
    pub fn reboot_count(&self) -> usize {
        self.reboots_ns.len()
    }

    /// The read fault active for `path` at `rel_ns` nanoseconds after
    /// plan installation, if any. Sensor dropout surfaces here as
    /// [`FsFaultKind::Eio`] on the affected sensor paths.
    pub fn fs_fault(&self, rel_ns: u64, path: &str) -> Option<FsFaultKind> {
        for w in &self.fs {
            if w.start_ns <= rel_ns && rel_ns < w.end_ns && path_hit(w.path_salt, path) {
                return Some(w.kind);
            }
        }
        if sensor_class(path).is_some() {
            for s in &self.sensors {
                if s.kind == SensorFaultKind::Dropout && s.start_ns <= rel_ns && rel_ns < s.end_ns {
                    return Some(FsFaultKind::Eio);
                }
            }
        }
        None
    }

    /// The value-distorting sensor fault active for `path` at `rel_ns`,
    /// if any: [`SensorFaultKind::Saturation`] for temperature paths,
    /// [`SensorFaultKind::QuantizationJitter`] for energy counters.
    /// Dropout is reported via [`FaultPlan::fs_fault`] instead.
    pub fn sensor_transform(&self, rel_ns: u64, path: &str) -> Option<SensorFaultKind> {
        let class = sensor_class(path)?;
        for s in &self.sensors {
            if s.start_ns <= rel_ns && rel_ns < s.end_ns {
                match (s.kind, class) {
                    (SensorFaultKind::Saturation, SensorClass::Temp) => {
                        return Some(SensorFaultKind::Saturation)
                    }
                    (SensorFaultKind::QuantizationJitter, SensorClass::Energy) => {
                        return Some(SensorFaultKind::QuantizationJitter)
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// The clock-skew offset (nanoseconds, possibly negative) applied to
    /// uptime reads at `rel_ns`. Zero outside every skew window.
    pub fn clock_skew_ns(&self, rel_ns: u64) -> i64 {
        for w in &self.skews {
            if w.start_ns <= rel_ns && rel_ns < w.end_ns {
                return w.skew_ns;
            }
        }
        0
    }

    /// Whether a crash-reboot is scheduled in `(rel_a, rel_b]`.
    pub fn reboot_in(&self, rel_a: u64, rel_b: u64) -> bool {
        self.reboots_ns.iter().any(|&r| rel_a < r && r <= rel_b)
    }

    /// The first scheduled crash-reboot strictly after `rel_ns`, if any.
    pub fn next_reboot_after(&self, rel_ns: u64) -> Option<u64> {
        self.reboots_ns.iter().copied().find(|&r| r > rel_ns)
    }

    /// The next instant strictly after `rel_ns` at which *any* fault state
    /// changes: a window of any class opening or closing, or a reboot.
    /// Between two consecutive such events every fault query is constant
    /// in time, which is what lets a quiescent kernel coalesce straight to
    /// the horizon without changing any fault decision.
    pub fn next_event_after(&self, rel_ns: u64) -> Option<u64> {
        let fs = self.fs.iter().flat_map(|w| [w.start_ns, w.end_ns]);
        let sensors = self.sensors.iter().flat_map(|w| [w.start_ns, w.end_ns]);
        let skews = self.skews.iter().flat_map(|w| [w.start_ns, w.end_ns]);
        let reboots = self.reboots_ns.iter().copied();
        fs.chain(sensors)
            .chain(skews)
            .chain(reboots)
            .filter(|&t| t > rel_ns)
            .min()
    }
}

/// Builder for [`FaultPlan`]; every window's placement is drawn from the
/// builder's seeded RNG, so equal seeds yield equal plans.
#[derive(Debug)]
pub struct FaultPlanBuilder {
    rng: StdRng,
    horizon_ns: u64,
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Sets the scheduling horizon (seconds after installation) within
    /// which seeded windows are placed. Default: 600 s.
    #[must_use]
    pub fn horizon_secs(mut self, secs: u64) -> Self {
        self.horizon_ns = secs.max(1) * NANOS_PER_SEC;
        self
    }

    /// Adds `n` transient read-fault windows (1–3 s each, alternating
    /// `EIO` and short reads), each hitting a seeded ~third of paths.
    #[must_use]
    pub fn transient_reads(mut self, n: usize) -> Self {
        for i in 0..n {
            let (start_ns, end_ns) = self.window(1, 3);
            self.plan.fs.push(FsWindow {
                start_ns,
                end_ns,
                path_salt: self.rng.random(),
                kind: if i % 2 == 0 {
                    FsFaultKind::Eio
                } else {
                    FsFaultKind::ShortRead
                },
            });
        }
        self
    }

    /// Adds `n` sensor-fault windows (2–6 s each), cycling through
    /// dropout, saturation, and quantization jitter.
    #[must_use]
    pub fn sensor_faults(mut self, n: usize) -> Self {
        const KINDS: [SensorFaultKind; 3] = [
            SensorFaultKind::Dropout,
            SensorFaultKind::Saturation,
            SensorFaultKind::QuantizationJitter,
        ];
        for i in 0..n {
            let (start_ns, end_ns) = self.window(2, 6);
            self.plan.sensors.push(SensorWindow {
                start_ns,
                end_ns,
                kind: KINDS[i % KINDS.len()],
            });
        }
        self
    }

    /// Adds `n` clock-skew windows (5–20 s each) shifting uptime reads by
    /// ±0.5–2 s.
    #[must_use]
    pub fn clock_skew(mut self, n: usize) -> Self {
        for i in 0..n {
            let (start_ns, end_ns) = self.window(5, 20);
            let magnitude = self.rng.random_range(NANOS_PER_SEC / 2..2 * NANOS_PER_SEC) as i64;
            self.plan.skews.push(SkewWindow {
                start_ns,
                end_ns,
                skew_ns: if i % 2 == 0 { magnitude } else { -magnitude },
            });
        }
        self
    }

    /// Schedules a crash-reboot exactly `secs` after installation.
    #[must_use]
    pub fn reboot_at_secs(mut self, secs: u64) -> Self {
        self.plan.reboots_ns.push(secs.max(1) * NANOS_PER_SEC);
        self.plan.reboots_ns.sort_unstable();
        self
    }

    /// Schedules `n` crash-reboots at seeded instants within the horizon.
    #[must_use]
    pub fn reboots(mut self, n: usize) -> Self {
        for _ in 0..n {
            let at = self
                .rng
                .random_range(NANOS_PER_SEC..self.horizon_ns.max(2 * NANOS_PER_SEC));
            self.plan.reboots_ns.push(at);
        }
        self.plan.reboots_ns.sort_unstable();
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }

    /// A seeded `[start, end)` window of `min..=max` whole seconds,
    /// placed within the horizon.
    fn window(&mut self, min_secs: u64, max_secs: u64) -> (u64, u64) {
        let dur = self.rng.random_range(min_secs..max_secs + 1) * NANOS_PER_SEC;
        let latest = self.horizon_ns.saturating_sub(dur).max(1);
        let start = self.rng.random_range(0..latest);
        (start, start + dur)
    }
}

/// FNV-1a hash of `path`, the deterministic path selector for transient
/// windows. Each window's salt picks a stable ~third of all paths.
fn path_hit(salt: u64, path: &str) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    (h ^ salt)
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .is_multiple_of(3)
}

/// Whether `path` is a hardware-sensor channel (a RAPL `energy_uj`
/// counter or a coretemp/thermal temperature input) — the paths sensor
/// dropout windows turn into `EIO` reads. Public so fault observers can
/// classify an injected `EIO` as sensor dropout vs. a plain fs fault.
pub fn is_sensor_path(path: &str) -> bool {
    sensor_class(path).is_some()
}

fn sensor_class(path: &str) -> Option<SensorClass> {
    if path.starts_with("/sys/class/powercap/") && path.ends_with("/energy_uj") {
        return Some(SensorClass::Energy);
    }
    if (path.contains("/coretemp.") && path.ends_with("_input"))
        || (path.starts_with("/sys/class/thermal/") && path.ends_with("/temp"))
    {
        return Some(SensorClass::Temp);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_build_equal_plans() {
        let a = FaultPlan::standard(42);
        let b = FaultPlan::standard(42);
        // Pure query equivalence over a time sweep stands in for Eq.
        for t in (0..300).map(|s| s * NANOS_PER_SEC) {
            assert_eq!(a.fs_fault(t, "/proc/stat"), b.fs_fault(t, "/proc/stat"));
            assert_eq!(a.clock_skew_ns(t), b.clock_skew_ns(t));
        }
        assert_eq!(a.reboot_count(), b.reboot_count());
    }

    #[test]
    fn queries_are_pure_functions_of_time_and_path() {
        let p = FaultPlan::standard(7);
        let f1 = p.fs_fault(10 * NANOS_PER_SEC, "/proc/meminfo");
        let f2 = p.fs_fault(10 * NANOS_PER_SEC, "/proc/meminfo");
        assert_eq!(f1, f2);
    }

    #[test]
    fn windows_end() {
        let p = FaultPlan::builder(3)
            .horizon_secs(10)
            .transient_reads(50)
            .build();
        // Somewhere a fault fires…
        let fired = (0..10 * NANOS_PER_SEC)
            .step_by(NANOS_PER_SEC as usize / 4)
            .any(|t| p.fs_fault(t, "/proc/uptime").is_some());
        assert!(fired, "50 windows over 10 s should hit /proc/uptime");
        // …and far beyond the horizon nothing does.
        assert_eq!(p.fs_fault(3_600 * NANOS_PER_SEC, "/proc/uptime"), None);
    }

    #[test]
    fn sensor_faults_only_touch_sensor_paths() {
        let p = FaultPlan::builder(9)
            .horizon_secs(5)
            .sensor_faults(30)
            .build();
        for t in (0..5 * NANOS_PER_SEC).step_by(NANOS_PER_SEC as usize / 2) {
            assert_eq!(p.sensor_transform(t, "/proc/meminfo"), None);
            assert_eq!(p.fs_fault(t, "/proc/meminfo"), None);
        }
        let energy = "/sys/class/powercap/intel-rapl:0/energy_uj";
        let any_energy = (0..5 * NANOS_PER_SEC)
            .step_by(NANOS_PER_SEC as usize / 4)
            .any(|t| p.sensor_transform(t, energy).is_some() || p.fs_fault(t, energy).is_some());
        assert!(any_energy, "30 sensor windows over 5 s should hit RAPL");
    }

    #[test]
    fn reboot_scheduling_is_half_open() {
        let p = FaultPlan::builder(1).reboot_at_secs(150).build();
        let r = 150 * NANOS_PER_SEC;
        assert!(p.reboot_in(r - 1, r));
        assert!(!p.reboot_in(r, r + NANOS_PER_SEC));
        assert!(!p.reboot_in(0, r - 1));
    }

    #[test]
    fn next_event_walks_every_window_edge() {
        let p = FaultPlan::standard(42);
        // Walking event-to-event must terminate and visit strictly
        // increasing instants.
        let mut t = 0u64;
        let mut edges = 0usize;
        while let Some(next) = p.next_event_after(t) {
            assert!(next > t);
            t = next;
            edges += 1;
            assert!(edges < 1_000, "event walk must terminate");
        }
        // standard(): 6 fs + 6 sensor + 2 skew windows (2 edges each) and
        // one reboot — edges can coincide, so at most 29, at least a few.
        assert!((2..=29).contains(&edges), "unexpected edge count {edges}");
        // Every fault query is constant between consecutive events.
        let r = 150 * NANOS_PER_SEC;
        assert_eq!(p.next_reboot_after(r - 1), Some(r));
        assert_eq!(p.next_reboot_after(r), None);
    }

    #[test]
    fn skew_is_bounded_and_zero_outside_windows() {
        let p = FaultPlan::builder(5).horizon_secs(60).clock_skew(4).build();
        for t in (0..60 * NANOS_PER_SEC).step_by(NANOS_PER_SEC as usize) {
            let s = p.clock_skew_ns(t);
            assert!(s.unsigned_abs() <= 2 * NANOS_PER_SEC);
        }
        assert_eq!(p.clock_skew_ns(7_200 * NANOS_PER_SEC), 0);
    }
}
