//! Per-subsystem dirty epochs and the render cache they guard.
//!
//! Every kernel subsystem whose state a pseudo-file can render carries a
//! monotonically increasing epoch, bumped only when that state actually
//! mutates. A rendered buffer tagged with the epochs it depended on can
//! therefore be reused verbatim for as long as none of those epochs has
//! advanced — the contract the pseudofs render cache is built on.
//!
//! Bumps are deliberately *conservative*: a bump promises nothing changed
//! when the epoch is stable, not that something changed when it advanced.
//! That one-sided contract is what keeps bump placement simple (one bump
//! per [`Kernel::advance`](crate::Kernel::advance) call, keyed on whether
//! any run or idle time elapsed) while remaining byte-exact: a spurious
//! bump costs one re-render, never a stale read.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Subsystem dependency bits. A render handler's dependency set is the
/// OR of the bits for every subsystem it reads; [`dep::ALL`] is the
/// conservative fallback for unregistered paths.
pub mod dep {
    /// The virtual clock (uptime, wall time, timestamps).
    pub const CLOCK: u32 = 1 << 0;
    /// Scheduler accounting (loadavg, schedstat, per-CPU times).
    pub const SCHED: u32 = 1 << 1;
    /// Hardware state (RAPL, coretemp, cpufreq, cpuidle).
    pub const HW: u32 = 1 << 2;
    /// Interrupt state (/proc/interrupts, softirqs).
    pub const IRQ: u32 = 1 << 3;
    /// Memory state (meminfo, vmstat, zones, NUMA).
    pub const MEM: u32 = 1 << 4;
    /// VFS state (locks, dentry/inode/file counters, entropy, boot id).
    pub const FS: u32 = 1 << 5;
    /// Network state (devices, per-iface counters, SNMP).
    pub const NET: u32 = 1 << 6;
    /// The timer list.
    pub const TIMERS: u32 = 1 << 7;
    /// The process table (pids, per-process accounting).
    pub const PROCESS: u32 = 1 << 8;
    /// The cgroup forest (usages, limits, net_prio maps).
    pub const CGROUP: u32 = 1 << 9;
    /// The namespace registry (hostnames, pid translation, membership).
    pub const NS: u32 = 1 << 10;
    /// Aggregate kernel counters (total syscalls, block-IO bytes).
    pub const STATS: u32 = 1 << 11;
    /// Every subsystem — the sound fallback when dependencies are unknown.
    pub const ALL: u32 =
        CLOCK | SCHED | HW | IRQ | MEM | FS | NET | TIMERS | PROCESS | CGROUP | NS | STATS;

    /// Number of subsystem bits (array length of `SubsystemEpochs`).
    pub const COUNT: usize = 12;

    /// Every subsystem bit in index order (`BITS[i] == 1 << i`), for
    /// consumers that walk the lattice dimension by dimension (the
    /// leakcheck flow matrix, the epoch-diff tests).
    pub const BITS: [u32; COUNT] = [
        CLOCK, SCHED, HW, IRQ, MEM, FS, NET, TIMERS, PROCESS, CGROUP, NS, STATS,
    ];

    /// Human-readable name for a single dependency bit (lint reports).
    pub fn name(bit: u32) -> &'static str {
        match bit {
            CLOCK => "clock",
            SCHED => "sched",
            HW => "hw",
            IRQ => "irq",
            MEM => "mem",
            FS => "fs",
            NET => "net",
            TIMERS => "timers",
            PROCESS => "process",
            CGROUP => "cgroup",
            NS => "ns",
            STATS => "stats",
            _ => "?",
        }
    }

    /// Parses a subsystem name back to its bit — the inverse of
    /// [`name`]. `None` for anything that is not a subsystem name.
    pub fn from_name(s: &str) -> Option<u32> {
        BITS.iter().copied().find(|b| name(*b) == s)
    }

    /// Maps a public [`Kernel`](crate::Kernel) accessor to the dirty-epoch
    /// subsystem bit its reads depend on. This table is the authoritative
    /// source→subsystem binding of the taint analysis: `Some(0)` marks
    /// construction-time constants no mutation can change (`config`,
    /// `seed`), and `None` marks accessors outside the mapped render
    /// surface — the leakcheck flow analysis treats those as hard audit
    /// failures when they are reachable from a registered channel, so a
    /// new accessor in a handler cannot silently bypass cache coherence.
    pub fn accessor_bit(accessor: &str) -> Option<u32> {
        Some(match accessor {
            "clock" => CLOCK,
            "sched" | "total_idle_ns" => SCHED,
            "hw" | "rapl" => HW,
            "irq" => IRQ,
            "mem" => MEM,
            "fs" | "boot_id" => FS,
            "net" => NET,
            "timers" => TIMERS,
            "process" | "processes" | "process_count" | "last_pid" | "total_forks" => PROCESS,
            "cgroups" => CGROUP,
            "namespaces" => NS,
            "stats" => STATS,
            "config" | "seed" => 0,
            _ => return None,
        })
    }

    /// Renders a mask as a `+`-joined list of subsystem names.
    pub fn mask_names(mask: u32) -> String {
        let mut out = String::new();
        for i in 0..COUNT {
            let bit = 1 << i;
            if mask & bit != 0 {
                if !out.is_empty() {
                    out.push('+');
                }
                out.push_str(name(bit));
            }
        }
        if out.is_empty() {
            out.push_str("(none)");
        }
        out
    }
}

/// One monotone epoch per subsystem. Epochs only increase, so for a fixed
/// dependency mask the *sum* of the masked epochs is itself monotone and
/// equals a previous sum iff every component is unchanged — freshness is
/// one u64 comparison, not a per-component walk.
#[derive(Debug, Clone, Default)]
pub struct SubsystemEpochs {
    epochs: [u64; dep::COUNT],
}

impl SubsystemEpochs {
    /// Advances the epoch of every subsystem named in `mask`.
    pub fn bump(&mut self, mask: u32) {
        for (i, e) in self.epochs.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *e += 1;
            }
        }
    }

    /// Sum of the epochs named in `mask`. Because epochs are monotone,
    /// two equal masked sums imply equal per-component values.
    pub fn masked_sum(&self, mask: u32) -> u64 {
        let mut sum = 0u64;
        for (i, e) in self.epochs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                sum = sum.wrapping_add(*e);
            }
        }
        sum
    }

    /// Sum over every subsystem (any state change advances this).
    pub fn total(&self) -> u64 {
        self.masked_sum(dep::ALL)
    }

    /// The raw epoch of subsystem bit-index `i` (tests, diagnostics).
    pub fn get(&self, i: usize) -> u64 {
        self.epochs[i]
    }
}

/// What a cache entry holds for one `(view, path)` key.
#[derive(Debug, Clone)]
pub enum CachePayload {
    /// The rendered file body, pre fault distortion. Shared, so a fresh
    /// hit hands out a refcount bump instead of copying the body.
    Bytes(Arc<String>),
    /// The view's mask policy denies this path. Policy is part of the
    /// view fingerprint, so a deny decision never goes stale.
    Denied,
    /// A cached directory listing (the reserved `list` key). Shared, so
    /// a hit hands the caller a refcount bump instead of a deep clone of
    /// a few hundred path strings.
    Paths(Arc<Vec<String>>),
}

/// One cached render, tagged with the dependency mask it was rendered
/// under and the masked epoch sum at render time.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// OR of [`dep`] bits this render depended on.
    pub mask: u32,
    /// `epochs.masked_sum(mask)` at store time.
    pub dep_sum: u64,
    /// The cached result.
    pub payload: CachePayload,
}

/// FNV-1a hasher folding eight bytes per multiply. Cache keys are short
/// fixed pseudo-file paths (and pre-hashed view fingerprints), not
/// attacker-controlled input, so SipHash's DoS resistance buys nothing
/// here — and the lookup sits on the per-read hot path.
#[derive(Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            h ^= u64::from_le_bytes(w);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// The per-kernel render cache: view fingerprint → path → entry.
///
/// Keyed first by the [`View`](../pseudofs) fingerprint so policy or
/// namespace differences between views can never alias, then by path.
#[derive(Debug, Default)]
pub struct RenderCache {
    views: HashMap<u64, HashMap<String, CacheEntry, FnvBuild>, FnvBuild>,
}

impl RenderCache {
    /// The entry for `(view_fp, path)`, if any.
    pub fn get(&self, view_fp: u64, path: &str) -> Option<&CacheEntry> {
        self.views.get(&view_fp)?.get(path)
    }

    /// Inserts or replaces the entry for `(view_fp, path)`.
    pub fn store(&mut self, view_fp: u64, path: &str, entry: CacheEntry) {
        self.views
            .entry(view_fp)
            .or_default()
            .insert(path.to_string(), entry);
    }

    /// Drops every entry cached under `view_fp`, returning how many were
    /// removed. Called on container teardown: a destroyed container's
    /// fingerprint can never be probed again (fingerprints fold the
    /// monotone namespace and cgroup ids), so its entries are dead weight
    /// that high-churn create/destroy loops would otherwise accumulate
    /// without bound.
    pub fn evict_view(&mut self, view_fp: u64) -> usize {
        self.views.remove(&view_fp).map_or(0, |m| m.len())
    }

    /// Total number of cached entries across all views (tests).
    pub fn len(&self) -> usize {
        self.views.values().map(|m| m.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_advances_only_masked_components() {
        let mut e = SubsystemEpochs::default();
        e.bump(dep::SCHED | dep::MEM);
        assert_eq!(e.masked_sum(dep::SCHED), 1);
        assert_eq!(e.masked_sum(dep::MEM), 1);
        assert_eq!(e.masked_sum(dep::IRQ), 0);
        assert_eq!(e.masked_sum(dep::SCHED | dep::MEM), 2);
        assert_eq!(e.total(), 2);
    }

    #[test]
    fn masked_sum_equality_implies_component_equality() {
        // Monotonicity makes sum collisions impossible for a fixed mask:
        // any bump strictly increases the sum of a mask containing it.
        let mut e = SubsystemEpochs::default();
        let mask = dep::CLOCK | dep::NET;
        let s0 = e.masked_sum(mask);
        e.bump(dep::PROCESS); // outside the mask
        assert_eq!(e.masked_sum(mask), s0);
        e.bump(dep::NET);
        assert!(e.masked_sum(mask) > s0);
    }

    #[test]
    fn cache_round_trip_and_view_isolation() {
        let mut c = RenderCache::default();
        c.store(
            1,
            "/proc/stat",
            CacheEntry {
                mask: dep::SCHED,
                dep_sum: 0,
                payload: CachePayload::Bytes(Arc::new("cpu 0".into())),
            },
        );
        assert!(c.get(1, "/proc/stat").is_some());
        assert!(c.get(2, "/proc/stat").is_none());
        assert!(c.get(1, "/proc/uptime").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn mask_names_renders_bits() {
        assert_eq!(dep::mask_names(dep::SCHED | dep::CLOCK), "clock+sched");
        assert_eq!(dep::mask_names(0), "(none)");
    }

    #[test]
    fn bits_are_index_ordered_and_names_round_trip() {
        for (i, bit) in dep::BITS.iter().enumerate() {
            assert_eq!(*bit, 1 << i);
            assert_eq!(dep::from_name(dep::name(*bit)), Some(*bit));
        }
        assert_eq!(dep::BITS.iter().fold(0, |m, b| m | b), dep::ALL);
        assert_eq!(dep::from_name("quantum"), None);
    }

    #[test]
    fn accessor_bits_cover_the_render_surface() {
        assert_eq!(dep::accessor_bit("namespaces"), Some(dep::NS));
        assert_eq!(dep::accessor_bit("total_idle_ns"), Some(dep::SCHED));
        assert_eq!(dep::accessor_bit("boot_id"), Some(dep::FS));
        assert_eq!(dep::accessor_bit("config"), Some(0));
        assert_eq!(dep::accessor_bit("tracer"), None);
    }
}
