//! Fair-share fluid scheduler with per-CPU accounting.
//!
//! Rather than simulating individual context switches (prohibitively slow
//! for the paper's week-long power traces), each tick divides every CPU's
//! capacity among the runnable tasks assigned to it, weighted by their
//! demand — the fluid limit of CFS. All the accounting the leakage channels
//! need falls out: per-CPU busy/idle/user/system time (`/proc/stat`),
//! run/wait time (`/proc/schedstat`), runqueue contents and vruntime
//! (`/proc/sched_debug`), context-switch estimates (`ctxt`), and the
//! 1/5/15-minute load averages (`/proc/loadavg`).

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::cgroup::{CgroupForest, PerfCounters};
use crate::process::{HostPid, ProcState, ProcessTable};
use crate::time::NANOS_PER_SEC;

/// Default CFS scheduling period used for context-switch estimation.
const SCHED_PERIOD_NS: u64 = 10_000_000;

/// Per-CPU scheduler accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CpuSchedStats {
    /// Nanoseconds executing user code.
    pub user_ns: u64,
    /// Nanoseconds executing kernel code on behalf of tasks.
    pub system_ns: u64,
    /// Nanoseconds idle.
    pub idle_ns: u64,
    /// Nanoseconds idle while IO was pending.
    pub iowait_ns: u64,
    /// Context switches performed by this CPU.
    pub switches: u64,
    /// schedstat: total time tasks ran on this CPU.
    pub run_time_ns: u64,
    /// schedstat: total time tasks waited on this CPU's runqueue.
    pub wait_time_ns: u64,
    /// schedstat: number of timeslices handed out.
    pub timeslices: u64,
    /// `max_newidle_lb_cost` of this CPU's scheduling domain — fluctuates
    /// with load-balancing activity (a variation-only channel in Table II).
    pub max_newidle_lb_cost_ns: u64,
}

/// What one tick of scheduling produced on one CPU (consumed by the power
/// and interrupt models).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuTickLoad {
    /// Nanoseconds the CPU was busy this tick.
    pub busy_ns: u64,
    /// Retired instructions this tick.
    pub instructions: u64,
    /// Cache misses this tick.
    pub cache_misses: u64,
    /// Branch misses this tick.
    pub branch_misses: u64,
    /// Floating-point instructions this tick.
    pub fp_instructions: u64,
    /// Number of distinct tasks that ran this tick.
    pub tasks_ran: u32,
    /// Syscalls issued this tick.
    pub syscalls: u64,
    /// IO bytes issued this tick.
    pub io_bytes: u64,
}

/// Result of one scheduler tick across the machine.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Per-CPU load aggregates.
    pub per_cpu: Vec<CpuTickLoad>,
    /// Processes that finished their workload this tick.
    pub exited: Vec<HostPid>,
    /// Context switches performed this tick (whole machine).
    pub switches: u64,
}

/// Reusable buffers for [`Scheduler::tick_into`]. Week-long traces run
/// millions of ticks; keeping these across ticks takes every per-tick
/// allocation off the steady-state path.
#[derive(Debug, Default)]
pub struct SchedScratch {
    assignment: Vec<Vec<(HostPid, f64)>>,
    loads: Vec<u32>,
    once_candidates: Vec<HostPid>,
}

/// The scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    percpu: Vec<CpuSchedStats>,
    loadavg: [f64; 3],
    total_switches: u64,
    freq_hz: u64,
}

impl Scheduler {
    /// Creates a scheduler for `ncpus` CPUs at `freq_hz`.
    pub fn new(ncpus: usize, freq_hz: u64) -> Self {
        Scheduler {
            percpu: vec![CpuSchedStats::default(); ncpus],
            loadavg: [0.0; 3],
            total_switches: 0,
            freq_hz,
        }
    }

    /// Per-CPU accounting snapshot.
    pub fn cpu_stats(&self) -> &[CpuSchedStats] {
        &self.percpu
    }

    /// Total context switches since boot.
    pub fn total_switches(&self) -> u64 {
        self.total_switches
    }

    /// The 1/5/15-minute load averages.
    pub fn loadavg(&self) -> [f64; 3] {
        self.loadavg
    }

    /// Runs one tick of length `dt_ns`, mutating process accounting and
    /// charging cgroups. Returns per-CPU load aggregates.
    ///
    /// Convenience wrapper over [`Scheduler::tick_into`] that allocates
    /// fresh buffers; hot loops should hold a [`SchedScratch`] and a
    /// [`TickReport`] and call `tick_into` directly.
    pub fn tick(
        &mut self,
        dt_ns: u64,
        procs: &mut ProcessTable,
        cgroups: &mut CgroupForest,
        rng: &mut StdRng,
    ) -> TickReport {
        let mut scratch = SchedScratch::default();
        let mut report = TickReport::default();
        self.tick_into(dt_ns, procs, cgroups, rng, &mut scratch, &mut report);
        report
    }

    /// Allocation-free form of [`Scheduler::tick`]: writes the result into
    /// `report` and keeps working buffers in `scratch`, both reused across
    /// ticks. Produces bit-identical results to `tick`.
    pub fn tick_into(
        &mut self,
        dt_ns: u64,
        procs: &mut ProcessTable,
        cgroups: &mut CgroupForest,
        rng: &mut StdRng,
        scratch: &mut SchedScratch,
        report: &mut TickReport,
    ) {
        let ncpus = self.percpu.len();
        report.per_cpu.clear();
        report.per_cpu.resize(ncpus, CpuTickLoad::default());
        report.exited.clear();
        report.switches = 0;

        // 1. Assign runnable tasks to CPUs: explicit affinity wins; others
        //    go to the least-loaded candidate, preferring their last CPU.
        //    The single pass over the table also records each task's phase
        //    demand (its cursor cannot move before step 2 divides capacity)
        //    and the Once workloads that step 3 may need to reap.
        scratch.assignment.resize_with(ncpus, Vec::new);
        for a in scratch.assignment.iter_mut() {
            a.clear();
        }
        scratch.loads.clear();
        scratch.loads.resize(ncpus, 0);
        scratch.once_candidates.clear();
        for p in procs.iter().filter(|p| p.state == ProcState::Runnable) {
            if matches!(p.workload.repeat(), workloads::Repeat::Once) {
                scratch.once_candidates.push(p.host_pid);
            }
            let last = p.last_cpu as usize;
            let loads = &scratch.loads;
            let best = match p.affinity.as_deref() {
                Some(cpus) => cpus
                    .iter()
                    .map(|c| *c as usize)
                    .filter(|c| *c < ncpus)
                    .min_by_key(|&c| (loads[c], usize::from(c != last), c)),
                None => {
                    // Least-loaded, preferring the last CPU, then the lowest
                    // index — the two cheap scans match the lexicographic
                    // minimum of (load, c != last, c) over all CPUs.
                    let min = loads.iter().copied().min().unwrap_or(0);
                    if last < ncpus && loads[last] == min {
                        Some(last)
                    } else {
                        loads.iter().position(|&l| l == min)
                    }
                }
            };
            let Some(best) = best else { continue };
            scratch.loads[best] += 1;
            let demand = p.cursor.current_phase(&p.workload).cpu_demand;
            scratch.assignment[best].push((p.host_pid, demand));
        }

        // 2. Divide each CPU's capacity among its tasks by demand.
        for (cpu, tasks) in scratch.assignment.iter().enumerate() {
            // Kernel housekeeping (kworkers, RCU, timers) consumes a small
            // slice of every CPU regardless of user tasks — this is what
            // makes /proc/stat's system time and /proc/schedstat's run
            // time accumulate (and diverge across hosts) even when idle.
            let hk = dt_ns / 500 + rng.random_range(0..dt_ns / 2000 + 1);
            self.percpu[cpu].system_ns += hk;
            self.percpu[cpu].run_time_ns += hk;
            if tasks.is_empty() {
                self.percpu[cpu].idle_ns += dt_ns;
                continue;
            }
            let total_demand: f64 = tasks.iter().map(|(_, d)| d).sum();
            let scale = if total_demand > 1.0 {
                1.0 / total_demand
            } else {
                1.0
            };
            let mut busy_ns_total = 0u64;
            for (pid, demand) in tasks.iter() {
                let ran_ns = (dt_ns as f64 * demand * scale) as u64;
                if ran_ns == 0 {
                    continue;
                }
                busy_ns_total += ran_ns;
                let waited_ns = if total_demand > 1.0 {
                    ((dt_ns as f64 * demand) as u64).saturating_sub(ran_ns)
                } else {
                    0
                };
                self.account_task(*pid, cpu, ran_ns, waited_ns, procs, cgroups, report);
            }
            let busy_ns_total = busy_ns_total.min(dt_ns);
            let stats = &mut self.percpu[cpu];
            stats.idle_ns += dt_ns - busy_ns_total;
            stats.timeslices += (busy_ns_total / SCHED_PERIOD_NS).max(tasks.len() as u64);

            // Context-switch estimate: each scheduling period with more than
            // one task costs one switch; single tasks still switch at a low
            // background rate (timer ticks, kworkers).
            let periods = dt_ns / SCHED_PERIOD_NS;
            let switches = if tasks.len() > 1 {
                periods.max(1) * tasks.len() as u64
            } else {
                (dt_ns * 30 / NANOS_PER_SEC).max(1)
            };
            stats.switches += switches;
            report.switches += switches;
            report.per_cpu[cpu].tasks_ran = tasks.len() as u32;

            // Load-balancer cost fluctuates with contention plus jitter.
            stats.max_newidle_lb_cost_ns =
                4_000 + tasks.len() as u64 * 800 + rng.random_range(0..400);
        }
        self.total_switches += report.switches;

        // 3. Reap processes whose Once workloads completed.
        for pid in &scratch.once_candidates {
            if let Some(p) = procs.get(*pid) {
                if p.cursor.advance_peek_done(&p.workload) {
                    report.exited.push(*pid);
                }
            }
        }
        for pid in &report.exited {
            if let Some(p) = procs.get_mut(*pid) {
                p.state = ProcState::Exited;
            }
        }

        // 4. Load averages (exponentially-weighted, Linux style).
        let n = procs.runnable() as f64;
        let dt_s = dt_ns as f64 / NANOS_PER_SEC as f64;
        for (i, window) in [60.0f64, 300.0, 900.0].iter().enumerate() {
            let decay = (-dt_s / window).exp();
            self.loadavg[i] = self.loadavg[i] * decay + n * (1.0 - decay);
        }
    }

    /// Jumps this scheduler to its quiescent-state value `rel_ns` after
    /// `anchor` was captured: no runnable tasks, so every CPU idles apart
    /// from deterministic kernel housekeeping, and the load averages decay
    /// toward zero. Pure in (anchor, rel_ns) and draws no RNG, so any
    /// subdivision of a quiescent span lands on byte-identical state.
    pub fn idle_eval(&mut self, anchor: &Scheduler, rel_ns: u64) {
        let hk = rel_ns / 500;
        for (cur, base) in self.percpu.iter_mut().zip(anchor.percpu.iter()) {
            cur.clone_from(base);
            cur.system_ns += hk;
            cur.run_time_ns += hk;
            cur.idle_ns += rel_ns;
        }
        let rel_s = rel_ns as f64 / NANOS_PER_SEC as f64;
        for (i, window) in [60.0f64, 300.0, 900.0].iter().enumerate() {
            self.loadavg[i] = anchor.loadavg[i] * (-rel_s / window).exp();
        }
        self.total_switches = anchor.total_switches;
    }

    #[allow(clippy::too_many_arguments)]
    fn account_task(
        &mut self,
        pid: HostPid,
        cpu: usize,
        ran_ns: u64,
        waited_ns: u64,
        procs: &mut ProcessTable,
        cgroups: &mut CgroupForest,
        report: &mut TickReport,
    ) {
        let freq = self.freq_hz;
        let p = procs.get_mut(pid).expect("task exists");
        let phase = p.cursor.current_phase(&p.workload).clone();

        let cycles = (ran_ns as u128 * freq as u128 / NANOS_PER_SEC as u128) as u64;
        let instructions = (cycles as f64 * phase.instructions_per_cycle) as u64;
        let cache_misses = (instructions as f64 * phase.cache_miss_per_kilo_instr / 1000.0) as u64;
        let branch_misses =
            (instructions as f64 * phase.branch_miss_per_kilo_instr / 1000.0) as u64;
        let fp_instructions = (instructions as f64 * phase.fp_ratio) as u64;
        let syscalls = (phase.syscalls_per_sec * ran_ns as f64 / NANOS_PER_SEC as f64) as u64;
        let io_bytes = (phase.io_bytes_per_sec * ran_ns as f64 / NANOS_PER_SEC as f64) as u64;

        // User/system split: syscall-heavy phases spend more in the kernel.
        let sys_frac = (phase.syscalls_per_sec * 1.5e-6).clamp(0.005, 0.35);
        let stime = (ran_ns as f64 * sys_frac) as u64;
        let utime = ran_ns - stime;

        p.utime_ns += utime;
        p.stime_ns += stime;
        p.vruntime_ns += ran_ns;
        p.last_cpu = cpu as u16;
        let delta = PerfCounters {
            instructions,
            cache_misses,
            branch_misses,
            cycles,
        };
        p.counters.add(&delta);
        p.io_read_bytes += io_bytes / 3;
        p.io_write_bytes += io_bytes - io_bytes / 3;
        p.syscalls += syscalls;
        p.cursor.advance(&p.workload, ran_ns);
        let cg = p.cgroups;

        cgroups.charge_cpu(cg.cpuacct, cpu, ran_ns);
        cgroups.charge_perf(cg.perf_event, &delta);

        let stats = &mut self.percpu[cpu];
        stats.user_ns += utime;
        stats.system_ns += stime;
        stats.run_time_ns += ran_ns;
        stats.wait_time_ns += waited_ns;
        if io_bytes > 0 {
            stats.iowait_ns += (ran_ns / 20).min(1_000_000);
        }

        let load = &mut report.per_cpu[cpu];
        load.busy_ns += ran_ns;
        load.instructions += instructions;
        load.cache_misses += cache_misses;
        load.branch_misses += branch_misses;
        load.fp_instructions += fp_instructions;
        load.syscalls += syscalls;
        load.io_bytes += io_bytes;
    }
}

/// Extension used by the scheduler to check completion without advancing.
trait CursorPeek {
    fn advance_peek_done(&self, spec: &workloads::WorkloadSpec) -> bool;
}

impl CursorPeek for workloads::PhaseCursor {
    fn advance_peek_done(&self, spec: &workloads::WorkloadSpec) -> bool {
        matches!(spec.repeat(), workloads::Repeat::Once)
            && self.consumed_cpu_ns() >= spec.pass_duration_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupKind;
    use crate::ns::NamespaceRegistry;
    use crate::process::{CgroupMembership, Process};
    use rand::SeedableRng;
    use workloads::{models, PhaseCursor};

    struct Fixture {
        sched: Scheduler,
        procs: ProcessTable,
        cgroups: CgroupForest,
        rng: StdRng,
    }

    fn fixture(ncpus: usize) -> Fixture {
        Fixture {
            sched: Scheduler::new(ncpus, 2_000_000_000),
            procs: ProcessTable::new(),
            cgroups: CgroupForest::new(ncpus, &["lo".into()]),
            rng: StdRng::seed_from_u64(7),
        }
    }

    fn spawn(
        f: &mut Fixture,
        name: &str,
        w: workloads::WorkloadSpec,
        affinity: Option<Vec<u16>>,
    ) -> HostPid {
        let reg = NamespaceRegistry::new("h");
        let pid = f.procs.allocate_pid();
        f.procs.insert(Process {
            host_pid: pid,
            name: name.into(),
            ns: reg.host_set(),
            ns_pid: pid.0,
            cgroups: CgroupMembership {
                cpuacct: f.cgroups.root(CgroupKind::Cpuacct),
                perf_event: f.cgroups.root(CgroupKind::PerfEvent),
                net_prio: f.cgroups.root(CgroupKind::NetPrio),
                memory: f.cgroups.root(CgroupKind::Memory),
            },
            workload: w,
            cursor: PhaseCursor::new(),
            affinity,
            state: ProcState::Runnable,
            start_ns: 0,
            utime_ns: 0,
            stime_ns: 0,
            vruntime_ns: 0,
            counters: PerfCounters::default(),
            last_cpu: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            syscalls: 0,
        });
        pid
    }

    #[test]
    fn single_task_uses_one_cpu_fully() {
        let mut f = fixture(2);
        let pid = spawn(&mut f, "prime", models::prime(), None);
        let dt = NANOS_PER_SEC;
        let r = f.sched.tick(dt, &mut f.procs, &mut f.cgroups, &mut f.rng);
        let busy: u64 = r.per_cpu.iter().map(|c| c.busy_ns).sum();
        assert!(busy >= dt * 99 / 100, "busy {busy} < {dt}");
        let p = f.procs.get(pid).unwrap();
        assert!(p.cpu_time_ns() >= dt * 99 / 100);
        // One CPU busy, the other idle.
        let idles: Vec<u64> = f.sched.cpu_stats().iter().map(|c| c.idle_ns).collect();
        assert!(idles.iter().any(|i| *i >= dt * 99 / 100));
    }

    #[test]
    fn cpu_time_is_conserved_under_contention() {
        // 4 full-demand tasks pinned on 1 CPU share it equally.
        let mut f = fixture(1);
        let pids: Vec<HostPid> = (0..4)
            .map(|i| spawn(&mut f, &format!("t{i}"), models::prime(), Some(vec![0])))
            .collect();
        let dt = NANOS_PER_SEC;
        let r = f.sched.tick(dt, &mut f.procs, &mut f.cgroups, &mut f.rng);
        let busy = r.per_cpu[0].busy_ns;
        assert!(busy <= dt, "cannot exceed capacity");
        assert!(busy >= dt * 95 / 100);
        for pid in pids {
            let t = f.procs.get(pid).unwrap().cpu_time_ns();
            let share = dt / 4;
            assert!(
                (t as i64 - share as i64).unsigned_abs() < share / 10,
                "unfair share: {t} vs {share}"
            );
        }
    }

    #[test]
    fn affinity_is_respected() {
        let mut f = fixture(4);
        let pid = spawn(&mut f, "pinned", models::prime(), Some(vec![3]));
        let r = f
            .sched
            .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
        assert!(r.per_cpu[3].busy_ns > 0);
        assert_eq!(r.per_cpu[0].busy_ns, 0);
        assert_eq!(f.procs.get(pid).unwrap().last_cpu(), 3);
    }

    #[test]
    fn tasks_spread_across_cpus() {
        let mut f = fixture(4);
        for i in 0..4 {
            spawn(&mut f, &format!("t{i}"), models::prime(), None);
        }
        let r = f
            .sched
            .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
        for c in 0..4 {
            assert!(
                r.per_cpu[c].busy_ns > NANOS_PER_SEC * 9 / 10,
                "cpu {c} underused"
            );
        }
    }

    #[test]
    fn instructions_scale_with_ipc() {
        let mut f = fixture(2);
        spawn(&mut f, "prime", models::prime(), Some(vec![0]));
        spawn(&mut f, "mcf", models::mcf(), Some(vec![1]));
        let r = f
            .sched
            .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
        // prime IPC 2.4 vs mcf IPC 0.35: ~7x instruction difference.
        assert!(r.per_cpu[0].instructions > r.per_cpu[1].instructions * 5);
        // mcf cache-miss rate vastly higher per instruction.
        let prime_rate = r.per_cpu[0].cache_misses as f64 / r.per_cpu[0].instructions as f64;
        let mcf_rate = r.per_cpu[1].cache_misses as f64 / r.per_cpu[1].instructions as f64;
        assert!(mcf_rate > prime_rate * 50.0);
    }

    #[test]
    fn once_workloads_exit() {
        let mut f = fixture(1);
        // 120-second benchmark on one CPU.
        let pid = spawn(&mut f, "bzip2", models::bzip2(), None);
        let mut exited = false;
        for _ in 0..125 {
            let r = f
                .sched
                .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
            if r.exited.contains(&pid) {
                exited = true;
                break;
            }
        }
        assert!(exited, "benchmark never finished");
        assert_eq!(f.procs.get(pid).unwrap().state(), ProcState::Exited);
    }

    #[test]
    fn loadavg_rises_toward_runnable_count() {
        let mut f = fixture(2);
        for i in 0..4 {
            spawn(&mut f, &format!("t{i}"), models::prime(), None);
        }
        for _ in 0..120 {
            f.sched
                .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
        }
        let [one, five, fifteen] = f.sched.loadavg();
        assert!(one > 3.0, "1-min load {one} too low");
        assert!(
            one > five && five > fifteen,
            "windows should lag: {one} {five} {fifteen}"
        );
    }

    #[test]
    fn contended_cpu_accumulates_wait_time() {
        let mut f = fixture(1);
        spawn(&mut f, "a", models::prime(), None);
        spawn(&mut f, "b", models::prime(), None);
        f.sched
            .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
        assert!(f.sched.cpu_stats()[0].wait_time_ns > 0);
        assert!(f.sched.total_switches() > 0);
    }

    #[test]
    fn partial_demand_leaves_idle_time() {
        let mut f = fixture(1);
        spawn(&mut f, "web", models::web_service(0.25), None);
        let r = f
            .sched
            .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
        let busy = r.per_cpu[0].busy_ns as f64 / NANOS_PER_SEC as f64;
        assert!((busy - 0.25).abs() < 0.05, "busy {busy}");
    }

    #[test]
    fn cgroup_charging_happens() {
        let mut f = fixture(1);
        spawn(&mut f, "t", models::prime(), None);
        let root_perf = f.cgroups.root(CgroupKind::PerfEvent);
        f.cgroups.set_perf_monitoring(root_perf, true).unwrap();
        f.sched
            .tick(NANOS_PER_SEC, &mut f.procs, &mut f.cgroups, &mut f.rng);
        let root_acct = f.cgroups.root(CgroupKind::Cpuacct);
        assert!(f.cgroups.cpuacct_usage_ns(root_acct).unwrap() > 0);
        assert!(f.cgroups.perf_counters(root_perf).unwrap().instructions > 0);
    }
}
