//! Kernel timer list (`/proc/timer_list`).
//!
//! The file dumps every armed hrtimer on the host with the owning process's
//! *comm* and host pid — one of the paper's directly-manipulable channels
//! (§III-C group 2): a tenant starts a process with a crafted name whose
//! `tick_sched_timer`/custom timer then appears in every co-resident
//! container's view. The experiment in §IV-C uses exactly this channel to
//! aggregate attack containers onto one physical server.

use serde::Serialize;

use crate::process::HostPid;
#[cfg(test)]
use crate::time::NANOS_PER_SEC;

/// One armed timer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct KernelTimer {
    /// Owning process.
    pub pid: HostPid,
    /// Owning process's comm at arm time.
    pub comm: String,
    /// Expiry, nanoseconds since boot.
    pub expires_ns: u64,
    /// Callback symbol rendered in the dump.
    pub function: &'static str,
    /// Recurrence period (0 = one-shot); recurring timers re-arm when
    /// rendered past expiry.
    pub period_ns: u64,
}

/// The host-global timer list.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TimerList {
    timers: Vec<KernelTimer>,
}

impl TimerList {
    /// Creates an empty list.
    pub fn new() -> Self {
        TimerList::default()
    }

    /// Arms the per-task scheduler tick timer every process carries.
    pub fn arm_sched_timer(&mut self, pid: HostPid, comm: &str, now_ns: u64) {
        simtrace::counters::add("timers.sched_armed", 1);
        self.timers.push(KernelTimer {
            pid,
            comm: comm.to_string(),
            expires_ns: now_ns + 4_000_000,
            function: "tick_sched_timer",
            period_ns: 4_000_000,
        });
    }

    /// Arms a user-created timer (the manipulation primitive: `comm` is
    /// fully attacker-controlled).
    pub fn arm_user_timer(&mut self, pid: HostPid, comm: &str, now_ns: u64, interval_ns: u64) {
        simtrace::counters::add("timers.user_armed", 1);
        self.timers.push(KernelTimer {
            pid,
            comm: comm.to_string(),
            expires_ns: now_ns + interval_ns,
            function: "hrtimer_wakeup",
            period_ns: interval_ns,
        });
    }

    /// Arms a one-shot timer expiring at `expires_ns`. One-shots are the
    /// timers that genuinely constrain coalescing (see
    /// [`TimerList::next_event_after`]), so tests drive this directly.
    pub fn arm_oneshot(&mut self, pid: HostPid, comm: &str, expires_ns: u64) {
        simtrace::counters::add("timers.oneshot_armed", 1);
        self.timers.push(KernelTimer {
            pid,
            comm: comm.to_string(),
            expires_ns,
            function: "hrtimer_wakeup",
            period_ns: 0,
        });
    }

    /// Drops every timer owned by `pid` (process exit).
    pub fn drop_timers_of(&mut self, pid: HostPid) {
        self.timers.retain(|t| t.pid != pid);
    }

    /// Re-arms expired periodic timers against the current clock so the
    /// rendered expiries always sit in the near future, as in a live
    /// `/proc/timer_list`.
    pub fn refresh(&mut self, now_ns: u64) {
        for t in &mut self.timers {
            if t.period_ns > 0 && t.expires_ns <= now_ns {
                let periods = (now_ns - t.expires_ns) / t.period_ns + 1;
                t.expires_ns += periods * t.period_ns;
            }
        }
    }

    /// The earliest *one-shot* expiry strictly after `now_ns`, if any.
    ///
    /// Periodic timers are excluded on purpose: [`TimerList::refresh`] is
    /// composable for them (re-arming at any later instant lands on the
    /// same phase-preserving expiry), so they never constrain how far a
    /// quiescent kernel may coalesce time. One-shot expiries, in contrast,
    /// are genuine events a coalesced step must not jump across. This is
    /// the allocation-free replacement for scanning [`TimerList::timers`].
    pub fn next_event_after(&self, now_ns: u64) -> Option<u64> {
        self.timers
            .iter()
            .filter(|t| t.period_ns == 0 && t.expires_ns > now_ns)
            .map(|t| t.expires_ns)
            .min()
    }

    /// All armed timers, soonest first.
    pub fn timers(&self) -> Vec<&KernelTimer> {
        let mut v: Vec<&KernelTimer> = self.timers.iter().collect();
        v.sort_by_key(|t| (t.expires_ns, t.pid));
        v
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.timers.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }

    /// Whether any timer's comm contains `needle` — the co-residence
    /// verification primitive used by `leakscan`.
    pub fn contains_comm(&self, needle: &str) -> bool {
        self.timers.iter().any(|t| t.comm.contains(needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_timer_armed_per_process() {
        let mut tl = TimerList::new();
        tl.arm_sched_timer(HostPid(300), "bash", 0);
        tl.arm_sched_timer(HostPid(301), "prime", 0);
        assert_eq!(tl.len(), 2);
        assert!(tl.contains_comm("prime"));
    }

    #[test]
    fn crafted_name_is_searchable() {
        let mut tl = TimerList::new();
        tl.arm_user_timer(HostPid(400), "coresig-8f3a91", 0, NANOS_PER_SEC);
        assert!(tl.contains_comm("coresig-8f3a91"));
        assert!(!tl.contains_comm("coresig-other"));
    }

    #[test]
    fn exit_drops_timers() {
        let mut tl = TimerList::new();
        tl.arm_sched_timer(HostPid(300), "a", 0);
        tl.arm_user_timer(HostPid(300), "a-extra", 0, 1);
        tl.arm_sched_timer(HostPid(301), "b", 0);
        tl.drop_timers_of(HostPid(300));
        assert_eq!(tl.len(), 1);
        assert!(!tl.contains_comm("a-extra"));
    }

    #[test]
    fn refresh_rearms_periodic_timers() {
        let mut tl = TimerList::new();
        tl.arm_sched_timer(HostPid(300), "a", 0);
        tl.refresh(NANOS_PER_SEC);
        let t = tl.timers()[0];
        assert!(t.expires_ns > NANOS_PER_SEC);
        assert!(t.expires_ns <= NANOS_PER_SEC + t.period_ns);
    }

    #[test]
    fn next_event_skips_periodic_and_past_timers() {
        let mut tl = TimerList::new();
        tl.arm_sched_timer(HostPid(300), "a", 0); // periodic, excluded
        assert_eq!(tl.next_event_after(0), None);
        tl.timers.push(KernelTimer {
            pid: HostPid(301),
            comm: "oneshot".into(),
            expires_ns: 5 * NANOS_PER_SEC,
            function: "hrtimer_wakeup",
            period_ns: 0,
        });
        assert_eq!(tl.next_event_after(0), Some(5 * NANOS_PER_SEC));
        assert_eq!(
            tl.next_event_after(5 * NANOS_PER_SEC - 1),
            Some(5 * NANOS_PER_SEC)
        );
        assert_eq!(tl.next_event_after(5 * NANOS_PER_SEC), None);
    }

    #[test]
    fn oneshot_arms_without_a_period_and_never_rearms() {
        let mut tl = TimerList::new();
        tl.arm_oneshot(HostPid(1), "alarm", 3 * NANOS_PER_SEC);
        assert_eq!(tl.next_event_after(0), Some(3 * NANOS_PER_SEC));
        tl.refresh(10 * NANOS_PER_SEC);
        assert_eq!(tl.next_event_after(3 * NANOS_PER_SEC), None);
        assert_eq!(tl.timers()[0].expires_ns, 3 * NANOS_PER_SEC);
    }

    #[test]
    fn timers_sorted_by_expiry() {
        let mut tl = TimerList::new();
        tl.arm_user_timer(HostPid(1), "late", 0, 10 * NANOS_PER_SEC);
        tl.arm_user_timer(HostPid(2), "soon", 0, NANOS_PER_SEC);
        let order: Vec<&str> = tl.timers().iter().map(|t| t.comm.as_str()).collect();
        assert_eq!(order, vec!["soon", "late"]);
    }
}
