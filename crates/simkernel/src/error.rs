//! Kernel error type.

use std::error::Error;
use std::fmt;

use crate::cgroup::CgroupId;
use crate::ns::NsId;
use crate::process::HostPid;

/// Errors returned by kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// The referenced process does not exist (or has exited).
    NoSuchProcess(HostPid),
    /// The referenced namespace does not exist.
    NoSuchNamespace(NsId),
    /// The referenced cgroup does not exist.
    NoSuchCgroup(CgroupId),
    /// A namespace of the wrong kind was supplied.
    NamespaceKindMismatch {
        /// What the operation required.
        expected: crate::ns::NamespaceKind,
        /// What was supplied.
        actual: crate::ns::NamespaceKind,
    },
    /// Not enough free memory to admit the process.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// A CPU index outside the machine's topology.
    NoSuchCpu(u16),
    /// The operation is invalid in the current state.
    InvalidOperation(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            KernelError::NoSuchNamespace(id) => write!(f, "no such namespace: {id}"),
            KernelError::NoSuchCgroup(id) => write!(f, "no such cgroup: {id}"),
            KernelError::NamespaceKindMismatch { expected, actual } => {
                write!(
                    f,
                    "namespace kind mismatch: expected {expected:?}, got {actual:?}"
                )
            }
            KernelError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of memory: requested {requested} bytes, {available} available"
            ),
            KernelError::NoSuchCpu(c) => write!(f, "no such cpu: {c}"),
            KernelError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<KernelError> = vec![
            KernelError::NoSuchProcess(HostPid(42)),
            KernelError::NoSuchNamespace(NsId(7)),
            KernelError::NoSuchCgroup(CgroupId(3)),
            KernelError::OutOfMemory {
                requested: 10,
                available: 5,
            },
            KernelError::NoSuchCpu(99),
            KernelError::InvalidOperation("x".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
