//! Scoped-thread fan-out over independent simulation state.
//!
//! Every [`Kernel`](crate::Kernel) owns its seeded RNG and all of its
//! mutable state, so stepping *disjoint* kernels on different threads is
//! bitwise deterministic: there is no shared mutable state, and each
//! kernel draws exactly the random sequence it would have drawn serially,
//! regardless of how the OS schedules the worker threads. Fleet types
//! (clouds, labs, defended fleets) use [`par_for_each_mut`] to step their
//! hosts concurrently without giving up reproducibility.

use std::num::NonZeroUsize;

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every element of `items`, fanning contiguous chunks
/// across at most `threads` scoped threads. `threads <= 1` (or a
/// single-element slice) degenerates to the plain serial loop on the
/// caller's thread, byte-for-byte reproducing the historical order.
///
/// The caller promises the elements are independent: `f` must not rely
/// on cross-element ordering for its results. Mutations within one
/// element happen in program order as usual.
pub fn par_for_each_mut_threads<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for part in items.chunks_mut(chunk) {
            s.spawn(move || {
                for item in part {
                    f(item);
                }
            });
        }
    });
}

/// [`par_for_each_mut_threads`] with [`default_threads`] workers.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    par_for_each_mut_threads(items, default_threads(), f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let mut a: Vec<u64> = (0..97).collect();
        let mut b = a.clone();
        let step = |x: &mut u64| {
            for _ in 0..1000 {
                *x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
        };
        par_for_each_mut_threads(&mut a, 1, step);
        par_for_each_mut_threads(&mut b, 8, step);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        par_for_each_mut(&mut empty, |_| unreachable!());
        let mut one = vec![1u32];
        par_for_each_mut(&mut one, |x| *x += 1);
        assert_eq!(one, vec![2]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let mut items = vec![0u32; 3];
        par_for_each_mut_threads(&mut items, 64, |x| *x += 1);
        assert_eq!(items, vec![1, 1, 1]);
    }
}
