//! Persistent worker-pool fan-out over independent simulation state.
//!
//! Every [`Kernel`](crate::Kernel) owns its seeded RNG and all of its
//! mutable state, so stepping *disjoint* kernels on different threads is
//! bitwise deterministic: there is no shared mutable state, and each
//! kernel draws exactly the random sequence it would have drawn serially,
//! regardless of how the OS schedules the worker threads. Fleet types
//! (clouds, labs, defended fleets) use [`par_for_each_mut`] to step their
//! hosts concurrently without giving up reproducibility.
//!
//! The workers are spawned once, lazily, and between calls they briefly
//! busy-poll their queue before parking on a blocking channel receive —
//! fleet advance loops that fan out every simulated tick pay neither
//! thread spawn/join cost nor a futex sleep/wake round-trip per call. The
//! calling thread participates too: it runs the first batch itself while
//! the workers run theirs. Work is distributed round-robin by element
//! index, so the element→worker assignment is a pure function of
//! `(len, workers)` and never depends on OS scheduling. `threads <= 1`, a single element, or a nested call from
//! inside a pool worker all degenerate to the plain serial loop on the
//! caller's thread, byte-for-byte reproducing the historical order (and,
//! for the nested case, making self-deadlock impossible).

use std::any::Any;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, OnceLock};

/// How many `try_recv` rounds to busy-poll before falling back to a
/// blocking `recv`. Fleet loops dispatch every few tens of microseconds
/// and each host's step is only a handful of microseconds, so a futex
/// sleep/wake round-trip would cost more than the work itself; a short
/// spin keeps the steady-state path hot while still parking idle workers.
const SPIN_ROUNDS: u32 = 4096;

/// How many spin rounds a receive should use for the given machine
/// parallelism. Spinning only helps when another core can make progress
/// while this thread polls; on a single-core machine the spin burns the
/// very quantum the producer needs (and makes wall time a scheduler
/// lottery), so there the poll falls straight through to the blocking
/// receive.
fn spin_rounds_for(parallelism: usize) -> u32 {
    if parallelism > 1 {
        SPIN_ROUNDS
    } else {
        0
    }
}

/// Busy-polls `rx` for a bounded number of rounds, then blocks. Returns
/// `None` when every sender is gone.
fn recv_spin<T>(rx: &Receiver<T>) -> Option<T> {
    recv_spin_rounds(rx, spin_rounds_for(default_threads()))
}

fn recv_spin_rounds<T>(rx: &Receiver<T>, rounds: u32) -> Option<T> {
    for round in 0..rounds {
        match rx.try_recv() {
            Ok(v) => return Some(v),
            Err(TryRecvError::Empty) => {
                // Yield periodically so an oversubscribed machine
                // (more workers than CPUs) lets the producer run.
                if round % 64 == 63 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            Err(TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

/// Default worker count: the machine's available parallelism. Cached —
/// `available_parallelism` re-reads the cgroup CPU quota files on every
/// call, which costs more than a whole host tick in fleet advance loops.
pub fn default_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

type Job = Box<dyn FnOnce() + Send>;

/// The persistent worker pool; grows monotonically to the largest worker
/// count ever requested and is never torn down.
static POOL: Mutex<Vec<Sender<Job>>> = Mutex::new(Vec::new());

/// Number of persistent pool workers spawned so far. Grows monotonically
/// with the largest fan-out ever requested (the caller's thread is not
/// counted: a `--jobs 4` run keeps 3 workers).
pub fn pool_len() -> usize {
    match POOL.lock() {
        Ok(guard) => guard.len(),
        Err(poisoned) => poisoned.into_inner().len(),
    }
}

thread_local! {
    /// Set once on pool threads; nested fan-outs from a worker run serial
    /// inline instead of queueing onto the (busy) pool.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Returns senders for `n` persistent workers, spawning any that do not
/// exist yet. The pool grows to the largest count ever requested — an
/// explicit `--jobs N` must actually fan out N ways even on a smaller
/// machine, or the cross-worker-count determinism gates would silently
/// compare a serial run against itself. Returns fewer than `n` senders
/// only when thread spawning fails.
fn pool_senders(n: usize) -> Vec<Sender<Job>> {
    let mut pool = match POOL.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    while pool.len() < n {
        let i = pool.len();
        let (tx, rx) = channel::<Job>();
        let spawned = std::thread::Builder::new()
            .name(format!("sim-pool-{i}"))
            .spawn(move || {
                IS_POOL_WORKER.set(true);
                while let Some(job) = recv_spin(&rx) {
                    job();
                }
            });
        if spawned.is_ok() {
            simtrace::counters::add_exec("pool.workers_spawned", 1);
            pool.push(tx);
        } else {
            break;
        }
    }
    pool.iter().take(n).cloned().collect()
}

/// Applies `f` to every element of `items`, fanning round-robin batches
/// across `threads` lanes: the calling thread plus `threads - 1`
/// persistent pool workers. The lane count is capped at the element
/// count; `threads <= 1` (or a single-element vector) degenerates to the
/// plain serial loop on the caller's thread.
///
/// The caller promises the elements are independent: `f` must not rely
/// on cross-element ordering for its results. Mutations within one
/// element happen in program order as usual. Element order in `items` is
/// preserved. A panic inside `f` is propagated to the caller after every
/// batch has been collected back, so the surviving elements keep their
/// state.
pub fn par_for_each_mut_threads<T, F>(items: &mut Vec<T>, threads: usize, f: F)
where
    T: Send + 'static,
    F: Fn(&mut T) + Send + Sync + 'static,
{
    let workers = if IS_POOL_WORKER.get() {
        1
    } else {
        threads.min(items.len())
    };
    if workers <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    // Slot 0 runs on the calling thread; only workers - 1 pool threads
    // are needed.
    let senders = pool_senders(workers - 1);
    let workers = senders.len() + 1;
    if workers <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }

    simtrace::counters::add_exec("pool.fanouts", 1);
    simtrace::counters::add_exec("pool.batches", workers as u64);

    let n = items.len();
    let mut batches: Vec<Vec<(usize, T)>> = (0..workers)
        .map(|w| Vec::with_capacity(n / workers + usize::from(w < n % workers)))
        .collect();
    for (i, item) in items.drain(..).enumerate() {
        batches[i % workers].push((i, item));
    }

    type BatchResult<T> = (Vec<(usize, T)>, Option<(usize, Box<dyn Any + Send>)>);
    let (tx, rx) = channel::<BatchResult<T>>();
    let f = Arc::new(f);
    let mut batch0: Vec<(usize, T)> = Vec::new();
    for (slot, mut batch) in batches.into_iter().enumerate() {
        // The caller participates: batch 0 runs inline after the others
        // are dispatched, saving one worker wake-up per call and keeping
        // this thread busy instead of parked on the result channel.
        if slot == 0 {
            batch0 = batch;
            continue;
        }
        let tx = tx.clone();
        let f = Arc::clone(&f);
        let job: Job = Box::new(move || {
            let payload = catch_unwind(AssertUnwindSafe(|| {
                for (_, item) in batch.iter_mut() {
                    f(item);
                }
            }))
            .err();
            let _ = tx.send((batch, payload.map(|p| (slot, p))));
        });
        if let Err(returned) = senders[slot - 1].send(job) {
            // The worker is gone (shutdown race): run its batch inline.
            (returned.0)();
        }
    }
    drop(tx);

    let mut returned: Vec<(usize, T)> = Vec::with_capacity(n);
    let mut panics: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
    let payload = catch_unwind(AssertUnwindSafe(|| {
        for (_, item) in batch0.iter_mut() {
            f(item);
        }
    }))
    .err();
    returned.extend(batch0);
    if let Some(p) = payload {
        panics.push((0, p));
    }
    while let Some((batch, payload)) = recv_spin(&rx) {
        returned.extend(batch);
        if let Some(p) = payload {
            panics.push(p);
        }
    }
    returned.sort_unstable_by_key(|(i, _)| *i);
    items.extend(returned.into_iter().map(|(_, v)| v));
    // Deterministic propagation: the lowest batch's panic wins.
    if let Some((_, p)) = panics.into_iter().min_by_key(|(s, _)| *s) {
        resume_unwind(p);
    }
}

/// [`par_for_each_mut_threads`] with [`default_threads`] workers.
pub fn par_for_each_mut<T, F>(items: &mut Vec<T>, f: F)
where
    T: Send + 'static,
    F: Fn(&mut T) + Send + Sync + 'static,
{
    par_for_each_mut_threads(items, default_threads(), f);
}

/// Contiguous home block of lane `lane` when `n` items are split across
/// `lanes` lanes: `[n*lane/lanes, n*(lane+1)/lanes)`. A pure function of
/// `(n, lanes)`, so the item→home-lane assignment never depends on OS
/// scheduling.
fn home_block(n: usize, lanes: usize, lane: usize) -> (usize, usize) {
    (n * lane / lanes, n * (lane + 1) / lanes)
}

/// One lane of [`par_claim_mut_threads`]: drains its own home block via
/// the block's shared claim cursor, then steals whole items from the
/// other lanes' cursors round-robin. `fetch_add` hands every index to
/// exactly one lane; which lane runs an item can vary run to run, but
/// `f` only ever sees `&mut` of one item at a time, so results cannot.
#[allow(clippy::type_complexity)]
fn claim_lane_run<T, F>(
    lane: usize,
    lanes: usize,
    slots: &[Mutex<Option<T>>],
    cursors: &[std::sync::atomic::AtomicUsize],
    f: &F,
) -> (u64, u64, Option<(usize, Box<dyn Any + Send>)>)
where
    F: Fn(usize, &mut T),
{
    use std::sync::atomic::Ordering;
    let n = slots.len();
    let mut claims = 0u64;
    let mut steals = 0u64;
    let mut panic: Option<(usize, Box<dyn Any + Send>)> = None;
    let mut run = |idx: usize, stolen: bool| {
        let mut guard = match slots[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(item) = guard.as_mut() {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(idx, item))) {
                if panic.as_ref().is_none_or(|(i, _)| idx < *i) {
                    panic = Some((idx, p));
                }
            }
        }
        if stolen {
            steals += 1;
        } else {
            claims += 1;
        }
    };
    for victim in 0..lanes {
        let victim_lane = (lane + victim) % lanes;
        let (_, end) = home_block(n, lanes, victim_lane);
        loop {
            let idx = cursors[victim_lane].fetch_add(1, Ordering::Relaxed);
            if idx >= end {
                break;
            }
            run(idx, victim != 0);
        }
    }
    (claims, steals, panic)
}

/// Applies `f(index, &mut item)` to every element, fanning across
/// `threads` lanes (the caller plus persistent pool workers) with
/// **whole-item work stealing**: each lane first drains a contiguous home
/// block of items through an atomic claim cursor, then steals items one
/// at a time from the other lanes' blocks. Designed for *shards* — coarse
/// units whose internal work varies wildly (one shard may pop a dozen
/// calendar events while its neighbors fast-forward in closed form) — so
/// an idle lane picks up a whole remaining shard instead of splitting
/// one.
///
/// Determinism contract: identical to [`par_for_each_mut_threads`] — `f`
/// must confine its effects to the claimed item (plus commutative trace
/// counters), so which lane runs a shard is unobservable in the results.
/// Item order in `items` is preserved; a panic propagates after every
/// item has been collected back, lowest item index winning.
pub fn par_claim_mut_threads<T, F>(items: &mut Vec<T>, threads: usize, f: F)
where
    T: Send + 'static,
    F: Fn(usize, &mut T) + Send + Sync + 'static,
{
    use std::sync::atomic::AtomicUsize;
    let lanes = if IS_POOL_WORKER.get() {
        1
    } else {
        threads.min(items.len())
    };
    if lanes <= 1 {
        for (idx, item) in items.iter_mut().enumerate() {
            f(idx, item);
        }
        return;
    }
    let senders = pool_senders(lanes - 1);
    let lanes = senders.len() + 1;
    if lanes <= 1 {
        for (idx, item) in items.iter_mut().enumerate() {
            f(idx, item);
        }
        return;
    }

    simtrace::counters::add_exec("pool.claim_fanouts", 1);

    let n = items.len();
    let slots: Arc<Vec<Mutex<Option<T>>>> =
        Arc::new(items.drain(..).map(|t| Mutex::new(Some(t))).collect());
    let cursors: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..lanes)
            .map(|lane| AtomicUsize::new(home_block(n, lanes, lane).0))
            .collect(),
    );
    type LaneResult = (u64, u64, Option<(usize, Box<dyn Any + Send>)>);
    let (tx, rx) = channel::<LaneResult>();
    let f = Arc::new(f);
    for lane in 1..lanes {
        let tx = tx.clone();
        let f = Arc::clone(&f);
        let slots = Arc::clone(&slots);
        let cursors = Arc::clone(&cursors);
        let job: Job = Box::new(move || {
            let _ = tx.send(claim_lane_run(lane, lanes, &slots, &cursors, &*f));
        });
        if let Err(returned) = senders[lane - 1].send(job) {
            // The worker is gone (shutdown race): run its lane inline —
            // the cursors make this safe; the lane just claims nothing
            // anyone else already took.
            (returned.0)();
        }
    }
    drop(tx);

    let mut results = vec![claim_lane_run(0, lanes, &slots, &cursors, &*f)];
    while let Some(r) = recv_spin(&rx) {
        results.push(r);
    }
    // Every lane has reported, so no lane touches the slots again; the
    // worker may still be dropping its `Arc` clones, so items are taken
    // out of the slots rather than unwrapping the `Arc` itself.
    items.extend(slots.iter().map(|m| {
        match m.lock() {
            Ok(mut guard) => guard.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
        .expect("every claimed item is returned to its slot")
    }));
    let mut claims = 0u64;
    let mut steals = 0u64;
    let mut panic: Option<(usize, Box<dyn Any + Send>)> = None;
    for (c, s, p) in results {
        claims += c;
        steals += s;
        if let Some((idx, payload)) = p {
            if panic.as_ref().is_none_or(|(i, _)| idx < *i) {
                panic = Some((idx, payload));
            }
        }
    }
    if claims > 0 {
        simtrace::counters::add_exec("pool.shard_claims", claims);
    }
    if steals > 0 {
        simtrace::counters::add_exec("pool.shard_steals", steals);
    }
    // Deterministic propagation: the lowest item index's panic wins.
    if let Some((_, p)) = panic {
        resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let mut a: Vec<u64> = (0..97).collect();
        let mut b = a.clone();
        let step = |x: &mut u64| {
            for _ in 0..1000 {
                *x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
        };
        par_for_each_mut_threads(&mut a, 1, step);
        par_for_each_mut_threads(&mut b, 8, step);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        par_for_each_mut(&mut empty, |_| unreachable!());
        let mut one = vec![1u32];
        par_for_each_mut(&mut one, |x| *x += 1);
        assert_eq!(one, vec![2]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let mut items = vec![0u32; 3];
        par_for_each_mut_threads(&mut items, 64, |x| *x += 1);
        assert_eq!(items, vec![1, 1, 1]);
    }

    #[test]
    fn order_is_preserved_across_the_pool() {
        let mut items: Vec<usize> = (0..31).collect();
        par_for_each_mut_threads(&mut items, 4, |x| *x *= 2);
        assert_eq!(items, (0..31).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        let mut items = vec![0u64; 16];
        for _ in 0..200 {
            par_for_each_mut_threads(&mut items, 8, |x| *x += 1);
        }
        assert!(items.iter().all(|&x| x == 200), "{items:?}");
    }

    #[test]
    fn nested_calls_run_serial_without_deadlock() {
        let mut outer: Vec<Vec<u32>> = (0..8).map(|_| vec![0u32; 8]).collect();
        par_for_each_mut_threads(&mut outer, 4, |inner| {
            par_for_each_mut_threads(inner, 4, |x| *x += 1);
        });
        assert!(outer.iter().flatten().all(|&x| x == 1));
    }

    #[test]
    fn pool_grows_to_largest_requested_jobs() {
        let mut items = vec![0u32; 12];
        par_for_each_mut_threads(&mut items, 3, |x| *x += 1);
        // 3 lanes = caller + 2 workers.
        let after_three = pool_len();
        assert!(after_three >= 2, "pool holds {after_three} after --jobs 3");
        par_for_each_mut_threads(&mut items, 6, |x| *x += 1);
        let after_six = pool_len();
        assert!(after_six >= 5, "pool holds {after_six} after --jobs 6");
        // Shrinking the request never shrinks the pool.
        par_for_each_mut_threads(&mut items, 2, |x| *x += 1);
        assert!(pool_len() >= after_six, "pool must grow monotonically");
    }

    #[test]
    fn single_core_machines_skip_the_spin() {
        assert_eq!(spin_rounds_for(1), 0);
        assert_eq!(spin_rounds_for(0), 0);
        assert_eq!(spin_rounds_for(2), SPIN_ROUNDS);
        assert_eq!(spin_rounds_for(64), SPIN_ROUNDS);
        // With zero rounds the receive must fall straight through to the
        // blocking path and still deliver queued values and disconnects.
        let (tx, rx) = channel::<u32>();
        tx.send(7).unwrap();
        assert_eq!(recv_spin_rounds(&rx, 0), Some(7));
        drop(tx);
        assert_eq!(recv_spin_rounds(&rx, 0), None);
        let (tx, rx) = channel::<u32>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(recv_spin_rounds(&rx, SPIN_ROUNDS), Some(9));
        assert_eq!(recv_spin_rounds(&rx, SPIN_ROUNDS), None);
    }

    #[test]
    fn jobs_one_runs_every_element_on_the_caller() {
        let caller = std::thread::current().id();
        let mut seen: Vec<std::thread::ThreadId> = (0..6).map(|_| caller).collect();
        par_for_each_mut_threads(&mut seen, 1, |slot| {
            *slot = std::thread::current().id();
        });
        assert!(
            seen.iter().all(|&id| id == caller),
            "--jobs 1 must bypass the pool entirely"
        );
    }

    #[test]
    fn claim_serial_and_stolen_agree() {
        let step = |i: usize, x: &mut u64| {
            // Deliberately skewed per-item cost so lanes actually steal.
            for _ in 0..(i % 7) * 400 + 1 {
                *x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407 + i as u64);
            }
        };
        let mut a: Vec<u64> = (0..53).collect();
        let mut b = a.clone();
        par_claim_mut_threads(&mut a, 1, step);
        par_claim_mut_threads(&mut b, 8, step);
        assert_eq!(a, b);
    }

    #[test]
    fn claim_runs_every_item_exactly_once() {
        for lanes in [1usize, 2, 3, 5, 16] {
            let mut items = vec![0u32; 37];
            par_claim_mut_threads(&mut items, lanes, |_, x| *x += 1);
            assert_eq!(items, vec![1u32; 37], "lanes={lanes}");
        }
    }

    #[test]
    fn claim_preserves_order_and_index_mapping() {
        let mut items: Vec<usize> = vec![0; 29];
        par_claim_mut_threads(&mut items, 4, |i, slot| *slot = i * 3);
        assert_eq!(items, (0..29).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn home_blocks_partition_the_items() {
        for n in [0usize, 1, 7, 16, 53] {
            for lanes in [1usize, 2, 3, 8] {
                let mut covered = Vec::new();
                for lane in 0..lanes {
                    let (s, e) = home_block(n, lanes, lane);
                    covered.extend(s..e);
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} lanes={lanes}");
            }
        }
    }

    #[test]
    fn claim_panics_propagate_lowest_index_and_preserve_items() {
        let mut items: Vec<u32> = (0..9).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_claim_mut_threads(&mut items, 3, |_, x| {
                if *x % 4 == 3 {
                    panic!("boom at {x}");
                }
                *x += 100;
            });
        }));
        let msg = *caught
            .expect_err("must propagate")
            .downcast::<String>()
            .expect("string payload");
        assert_eq!(msg, "boom at 3", "lowest panicking index wins");
        assert_eq!(items.len(), 9, "items survive a lane panic");
        assert_eq!(items[0], 100);
        assert_eq!(items[3], 3, "panicking item keeps its prior state");
    }

    #[test]
    fn claim_nested_from_a_pool_worker_runs_serial() {
        let mut outer: Vec<Vec<u32>> = (0..6).map(|_| vec![0u32; 6]).collect();
        par_claim_mut_threads(&mut outer, 3, |_, inner| {
            par_claim_mut_threads(inner, 3, |_, x| *x += 1);
        });
        assert!(outer.iter().flatten().all(|&x| x == 1));
    }

    #[test]
    fn panics_propagate_and_preserve_elements() {
        let mut items: Vec<u32> = (0..8).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_for_each_mut_threads(&mut items, 4, |x| {
                if *x == 5 {
                    panic!("boom");
                }
                *x += 100;
            });
        }));
        assert!(caught.is_err());
        assert_eq!(items.len(), 8, "elements survive a worker panic");
        assert_eq!(items[0], 100);
        assert_eq!(items[5], 5, "panicking element keeps its prior state");
    }
}
