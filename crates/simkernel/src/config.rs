//! Machine configuration.

use serde::{Deserialize, Serialize};

/// Static description of the simulated physical machine.
///
/// Everything here is visible through one leakage channel or another:
/// `/proc/cpuinfo` renders the CPU model, `/proc/meminfo` the memory size,
/// `/proc/modules` the module list, `/proc/version` the kernel build string,
/// and the sysfs trees render the RAPL/coretemp/cpuidle topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Host name (UTS namespace root value).
    pub hostname: String,
    /// Number of logical CPUs.
    pub cpus: u16,
    /// Number of physical packages (RAPL domains).
    pub packages: u16,
    /// Number of NUMA nodes.
    pub numa_nodes: u16,
    /// Nominal core frequency in Hz.
    pub freq_hz: u64,
    /// Total RAM in bytes.
    pub mem_bytes: u64,
    /// Swap in bytes.
    pub swap_bytes: u64,
    /// CPU model string for `/proc/cpuinfo`.
    pub cpu_model: String,
    /// Kernel release (e.g. `4.7.0`).
    pub kernel_release: String,
    /// GCC version in the build banner.
    pub gcc_version: String,
    /// Distribution tag in the build banner.
    pub distro: String,
    /// Loaded kernel modules (name, size in bytes, refcount).
    pub modules: Vec<(String, u64, u32)>,
    /// Whether the package supports RAPL (pre-Sandy-Bridge and most AMD
    /// parts in the paper's clouds do not — those clouds show `○` in the
    /// RAPL row of Table I).
    pub has_rapl: bool,
    /// Whether coretemp DTS sensors are exposed.
    pub has_coretemp: bool,
    /// Block devices (name, size in bytes) backing the ext4 channels.
    pub disks: Vec<(String, u64)>,
    /// Wall-clock boot time (seconds since the Unix epoch).
    pub boot_wall_secs: u64,
    /// Scheduler tick rate (`CONFIG_HZ`).
    pub hz: u32,
}

impl MachineConfig {
    /// The paper's local testbed: Intel i7-6700 @ 3.40 GHz, 8 logical
    /// cores, 16 GB RAM, Ubuntu 16.04, kernel 4.7.0.
    pub fn testbed_i7_6700() -> Self {
        MachineConfig {
            hostname: "testbed".into(),
            cpus: 8,
            packages: 1,
            numa_nodes: 1,
            freq_hz: 3_400_000_000,
            mem_bytes: 16 << 30,
            swap_bytes: 8 << 30,
            cpu_model: "Intel(R) Core(TM) i7-6700 CPU @ 3.40GHz".into(),
            kernel_release: "4.7.0".into(),
            gcc_version: "5.4.0 20160609".into(),
            distro: "Ubuntu 16.04".into(),
            modules: default_modules(),
            has_rapl: true,
            has_coretemp: true,
            disks: vec![("sda".into(), 512 << 30)],
            boot_wall_secs: 1_478_000_000,
            hz: 250,
        }
    }

    /// A dual-socket cloud server of the kind behind the paper's CC1–CC5
    /// measurements: 16 logical cores, 64 GB RAM, 2 NUMA nodes.
    pub fn cloud_server() -> Self {
        MachineConfig {
            hostname: "node".into(),
            cpus: 16,
            packages: 2,
            numa_nodes: 2,
            freq_hz: 2_600_000_000,
            mem_bytes: 64 << 30,
            swap_bytes: 0,
            cpu_model: "Intel(R) Xeon(R) CPU E5-2650 v2 @ 2.60GHz".into(),
            kernel_release: "4.4.0".into(),
            gcc_version: "5.4.0 20160609".into(),
            distro: "Ubuntu 16.04".into(),
            modules: default_modules(),
            has_rapl: true,
            has_coretemp: true,
            disks: vec![("sda".into(), 2 << 40)],
            boot_wall_secs: 1_470_000_000,
            hz: 250,
        }
    }

    /// A small 4-core server for fast unit tests.
    pub fn small_server() -> Self {
        MachineConfig {
            hostname: "small".into(),
            cpus: 4,
            packages: 1,
            numa_nodes: 1,
            freq_hz: 2_000_000_000,
            mem_bytes: 8 << 30,
            swap_bytes: 0,
            cpu_model: "Intel(R) Xeon(R) CPU E3-1220 v3 @ 3.10GHz".into(),
            kernel_release: "4.7.0".into(),
            gcc_version: "5.4.0 20160609".into(),
            distro: "Ubuntu 16.04".into(),
            modules: default_modules(),
            has_rapl: true,
            has_coretemp: true,
            disks: vec![("sda".into(), 256 << 30)],
            boot_wall_secs: 1_475_000_000,
            hz: 250,
        }
    }

    /// A pre-Sandy-Bridge host without RAPL or DTS, modelling the clouds
    /// where the power channels are absent for hardware reasons.
    pub fn legacy_server_no_rapl() -> Self {
        MachineConfig {
            has_rapl: false,
            has_coretemp: false,
            cpu_model: "Intel(R) Xeon(R) CPU X5650 @ 2.67GHz".into(),
            ..Self::cloud_server()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (zero CPUs, more
    /// packages/nodes than CPUs, zero memory or frequency).
    pub fn validate(&self) -> Result<(), String> {
        if self.cpus == 0 {
            return Err("machine must have at least one cpu".into());
        }
        if self.packages == 0 || self.packages > self.cpus {
            return Err(format!("invalid package count {}", self.packages));
        }
        if self.numa_nodes == 0 || self.numa_nodes > self.cpus {
            return Err(format!("invalid numa node count {}", self.numa_nodes));
        }
        if self.mem_bytes == 0 {
            return Err("machine must have memory".into());
        }
        if self.freq_hz == 0 {
            return Err("cpu frequency must be positive".into());
        }
        if self.hz == 0 {
            return Err("scheduler hz must be positive".into());
        }
        Ok(())
    }

    /// Logical CPUs per package (assumes an even split).
    pub fn cpus_per_package(&self) -> u16 {
        self.cpus / self.packages.max(1)
    }
}

fn default_modules() -> Vec<(String, u64, u32)> {
    [
        ("veth", 16384, 0),
        ("xt_nat", 16384, 2),
        ("xt_conntrack", 16384, 1),
        ("iptable_filter", 16384, 1),
        ("br_netfilter", 24576, 0),
        ("bridge", 126_976, 1),
        ("overlay", 49152, 1),
        ("nf_nat", 24576, 2),
        ("nf_conntrack", 106_496, 4),
        ("intel_rapl", 20480, 0),
        ("x86_pkg_temp_thermal", 16384, 0),
        ("coretemp", 16384, 0),
        ("kvm_intel", 172_032, 0),
        ("kvm", 544_768, 1),
        ("ext4", 585_728, 1),
        ("sd_mod", 45056, 3),
        ("ahci", 36864, 2),
        ("e1000e", 245_760, 0),
    ]
    .iter()
    .map(|(n, s, r)| (n.to_string(), *s, *r))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::testbed_i7_6700().validate().unwrap();
        MachineConfig::cloud_server().validate().unwrap();
        MachineConfig::small_server().validate().unwrap();
        MachineConfig::legacy_server_no_rapl().validate().unwrap();
    }

    #[test]
    fn legacy_server_lacks_power_hardware() {
        let c = MachineConfig::legacy_server_no_rapl();
        assert!(!c.has_rapl);
        assert!(!c.has_coretemp);
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut c = MachineConfig::small_server();
        c.cpus = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::small_server();
        c.packages = 10;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::small_server();
        c.numa_nodes = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::small_server();
        c.mem_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cpus_per_package_splits_evenly() {
        let c = MachineConfig::cloud_server();
        assert_eq!(c.cpus_per_package(), 8);
    }

    #[test]
    fn testbed_matches_paper_hardware() {
        let c = MachineConfig::testbed_i7_6700();
        assert_eq!(c.cpus, 8);
        assert_eq!(c.mem_bytes, 16 << 30);
        assert!(c.cpu_model.contains("i7-6700"));
        assert_eq!(c.kernel_release, "4.7.0");
    }
}
