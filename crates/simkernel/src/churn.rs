//! Randomized container-environment churn driver.
//!
//! Adopts the HCBS-Test-Suite stress idiom — a seeded RNG walking a loop
//! of create → attach work → run → kill → destroy over cgroup/namespace
//! environments — directly at the kernel layer, so the exact teardown
//! paths ([`Kernel::kill`], [`Kernel::destroy_container_env`], namespace
//! pid release, cgroup removal, veth unregistration) get exercised at
//! fuzzable rates instead of only in hand-written lifecycles.
//!
//! Every decision is drawn from the injected [`StdRng`], so a plan is a
//! pure function of its seed: two kernels driven by the same plan make
//! identical calls in identical order, which is what lets the campaign's
//! churn-soundness oracle compare a render-caching kernel byte-for-byte
//! against an uncached twin after every event.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use workloads::models;

use crate::kernel::{ContainerEnv, Kernel, ProcessSpec};
use crate::process::HostPid;
use crate::time::NANOS_PER_SEC;

/// Tuning knobs for one churn run. All fields are plain data so a plan
/// can be derived from a campaign scenario and embedded in its repro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnPlan {
    /// RNG seed; the entire event sequence is a pure function of it.
    pub seed: u64,
    /// Number of churn cycles ([`ChurnDriver::step`] calls) to run.
    pub cycles: u32,
    /// Ceiling on concurrently live container environments.
    pub max_live: usize,
    /// Processes spawned into each freshly created environment.
    pub procs_per_env: usize,
    /// Upper bound on the simulated time advanced after each cycle,
    /// milliseconds (each cycle draws uniformly from `1..=` this).
    pub advance_max_ms: u64,
}

impl ChurnPlan {
    /// A moderate default plan: 24 cycles, up to 4 live environments,
    /// 2 processes each, up to 250 simulated ms between events.
    pub fn new(seed: u64) -> Self {
        ChurnPlan {
            seed,
            cycles: 24,
            max_live: 4,
            procs_per_env: 2,
            advance_max_ms: 250,
        }
    }

    /// Sets the cycle count.
    #[must_use]
    pub fn cycles(mut self, n: u32) -> Self {
        self.cycles = n;
        self
    }

    /// Sets the live-environment ceiling (min 1).
    #[must_use]
    pub fn max_live(mut self, n: usize) -> Self {
        self.max_live = n.max(1);
        self
    }
}

/// Counts of the lifecycle events one churn run performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Container environments created.
    pub created: u64,
    /// Container environments destroyed.
    pub destroyed: u64,
    /// Processes spawned (initial and late attaches).
    pub spawned: u64,
    /// Processes killed individually (not via environment teardown).
    pub killed: u64,
    /// Total simulated nanoseconds advanced between events.
    pub advanced_ns: u64,
}

/// What a single churn cycle did — callers interleave probes on the
/// events they care about (e.g. re-read the pseudo-fs surface after
/// every teardown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A fresh environment was created (index into [`ChurnDriver::live`]).
    Created(usize),
    /// An extra process was spawned into a live environment.
    Spawned(usize),
    /// One process in a live environment was killed.
    Killed(usize),
    /// A live environment was destroyed (index it held before removal).
    Destroyed(usize),
}

/// The driver: owns the RNG, the live environment table, and the stats.
#[derive(Debug)]
pub struct ChurnDriver {
    plan: ChurnPlan,
    rng: StdRng,
    generation: u64,
    live: Vec<(ContainerEnv, Vec<HostPid>)>,
    stats: ChurnStats,
}

impl ChurnDriver {
    /// Creates a driver for `plan`. No kernel calls happen until
    /// [`ChurnDriver::step`].
    pub fn new(plan: ChurnPlan) -> Self {
        ChurnDriver {
            plan,
            rng: StdRng::seed_from_u64(plan.seed ^ 0xc4a2_11e5_c417_u64),
            generation: 0,
            live: Vec::new(),
            stats: ChurnStats::default(),
        }
    }

    /// The live environments with the host pids spawned into them.
    pub fn live(&self) -> &[(ContainerEnv, Vec<HostPid>)] {
        &self.live
    }

    /// Event counts so far.
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// The monotone per-driver container generation counter (names are
    /// `churn-<generation>`, so recreated containers never alias).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn long_lived_workload(&mut self) -> workloads::WorkloadSpec {
        // Only non-terminating workloads: a self-exiting process would
        // make the live table depend on how far the kernel has ticked,
        // entangling the event sequence with timing.
        match self.rng.random_range(0..3u32) {
            0 => models::sleeper(),
            1 => models::idle_loop(),
            _ => models::web_service(0.1 + 0.3 * self.rng.random::<f64>()),
        }
    }

    fn create(&mut self, k: &mut Kernel) -> ChurnEvent {
        self.generation += 1;
        let name = format!("churn-{}", self.generation);
        let env = k
            .create_container_env(&name)
            .expect("churn container creation");
        let mut pids = Vec::new();
        for i in 0..self.plan.procs_per_env {
            let w = self.long_lived_workload();
            let spec = ProcessSpec::new(format!("{name}-p{i}"), w).in_container(&env);
            if let Ok(pid) = k.spawn(spec) {
                pids.push(pid);
                self.stats.spawned += 1;
            }
        }
        self.live.push((env, pids));
        self.stats.created += 1;
        simtrace::counters::add("churn.envs_created", 1);
        ChurnEvent::Created(self.live.len() - 1)
    }

    /// Runs one churn cycle: a weighted lifecycle event followed by a
    /// short randomized advance, and reports what happened.
    pub fn step(&mut self, k: &mut Kernel) -> ChurnEvent {
        let roll = self.rng.random_range(0..100u32);
        let event = if self.live.is_empty() || (roll < 35 && self.live.len() < self.plan.max_live) {
            self.create(k)
        } else if roll < 55 {
            // Kill one process out of a random environment that has any.
            let candidates: Vec<usize> = (0..self.live.len())
                .filter(|i| !self.live[*i].1.is_empty())
                .collect();
            if candidates.is_empty() {
                self.create_or_spawn(k)
            } else {
                let idx = candidates[self.rng.random_range(0..candidates.len())];
                let pids = &mut self.live[idx].1;
                let victim = pids.swap_remove(self.rng.random_range(0..pids.len()));
                let _ = k.kill(victim);
                self.stats.killed += 1;
                simtrace::counters::add("churn.kills", 1);
                ChurnEvent::Killed(idx)
            }
        } else if roll < 80 {
            let idx = self.rng.random_range(0..self.live.len());
            let (env, _pids) = self.live.swap_remove(idx);
            // destroy_container_env reaps remaining members itself.
            k.destroy_container_env(&env)
                .expect("churn container teardown");
            self.stats.destroyed += 1;
            simtrace::counters::add("churn.envs_destroyed", 1);
            ChurnEvent::Destroyed(idx)
        } else {
            self.create_or_spawn(k)
        };
        let ms = self.rng.random_range(0..self.plan.advance_max_ms) + 1;
        k.advance(ms * (NANOS_PER_SEC / 1_000));
        self.stats.advanced_ns += ms * (NANOS_PER_SEC / 1_000);
        event
    }

    fn create_or_spawn(&mut self, k: &mut Kernel) -> ChurnEvent {
        if self.live.is_empty()
            || self.live.len() < self.plan.max_live && self.rng.random::<f64>() < 0.5
        {
            return self.create(k);
        }
        let idx = self.rng.random_range(0..self.live.len());
        let w = self.long_lived_workload();
        let name = format!("churn-late-{}", self.stats.spawned);
        let spec = ProcessSpec::new(name, w).in_container(&self.live[idx].0);
        if let Ok(pid) = k.spawn(spec) {
            self.live[idx].1.push(pid);
            self.stats.spawned += 1;
        }
        simtrace::counters::add("churn.spawns", 1);
        ChurnEvent::Spawned(idx)
    }

    /// Runs the plan's full cycle budget.
    pub fn run(&mut self, k: &mut Kernel) {
        for _ in 0..self.plan.cycles {
            self.step(k);
        }
    }

    /// Destroys every remaining live environment (end-of-scenario
    /// cleanup, itself a teardown stress).
    pub fn teardown_all(&mut self, k: &mut Kernel) {
        while let Some((env, _)) = self.live.pop() {
            k.destroy_container_env(&env).expect("churn final teardown");
            self.stats.destroyed += 1;
            simtrace::counters::add("churn.envs_destroyed", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn same_plan_drives_twin_kernels_identically() {
        let plan = ChurnPlan::new(7).cycles(30);
        let mut ka = Kernel::new(MachineConfig::small_server(), 11);
        let mut kb = Kernel::new(MachineConfig::small_server(), 11);
        let mut da = ChurnDriver::new(plan);
        let mut db = ChurnDriver::new(plan);
        for _ in 0..plan.cycles {
            assert_eq!(da.step(&mut ka), db.step(&mut kb));
        }
        assert_eq!(da.stats(), db.stats());
        assert_eq!(ka.clock().since_boot_ns(), kb.clock().since_boot_ns());
        assert_eq!(da.live().len(), db.live().len());
    }

    #[test]
    fn churn_exercises_create_and_destroy() {
        let mut k = Kernel::new(MachineConfig::small_server(), 3);
        let mut d = ChurnDriver::new(ChurnPlan::new(42).cycles(60));
        d.run(&mut k);
        d.teardown_all(&mut k);
        let s = d.stats();
        assert!(s.created >= 3, "expected several creations, got {s:?}");
        assert_eq!(s.created, s.destroyed, "teardown_all must drain: {s:?}");
        assert!(d.live().is_empty());
    }

    #[test]
    fn teardown_keeps_registries_bounded() {
        let mut k = Kernel::new(MachineConfig::small_server(), 5);
        let ns_before = k.namespaces().len();
        let mut d = ChurnDriver::new(ChurnPlan::new(9).cycles(80).max_live(3));
        d.run(&mut k);
        d.teardown_all(&mut k);
        // Every container's seven namespaces must be gone again.
        assert_eq!(k.namespaces().len(), ns_before);
    }
}
