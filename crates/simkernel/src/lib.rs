//! A simulated Linux kernel substrate for the ContainerLeaks reproduction.
//!
//! The ContainerLeaks paper (DSN 2017) studies how *incomplete namespacing*
//! of Linux kernel subsystems leaks host-wide information into containers.
//! Reproducing that requires a kernel whose subsystems hold exactly the kind
//! of state the paper's leakage channels expose — interrupts, scheduler
//! debug data, memory zones, RAPL energy counters, file locks, timers — and
//! whose pseudo-file handlers may or may not consult the calling process's
//! namespaces.
//!
//! This crate is that kernel, as a deterministic discrete-time simulation:
//!
//! * [`Kernel`] owns all global state and advances via [`Kernel::advance`].
//! * [`ns`] implements the seven namespace types of Linux 4.7.
//! * [`cgroup`] implements the cgroup hierarchies containers rely on
//!   (`cpuacct`, `perf_event`, `net_prio`, `memory`).
//! * [`sched`] is a fair-share fluid scheduler with per-CPU accounting
//!   (schedstat / sched_debug / loadavg / `/proc/stat` sources).
//! * [`hw`] models the hardware the paper's channels read: RAPL energy
//!   counters, core temperature sensors, cpuidle states, NUMA nodes.
//! * [`perf`] is the perf-event subsystem the power-based-namespace defense
//!   hooks into, including the context-switch overhead model behind the
//!   paper's Table III.
//! * [`syscost`] is the kernel-operation cost model used by the
//!   UnixBench-style overhead harness.
//!
//! Everything is seeded: two kernels constructed with the same
//! ([`MachineConfig`], seed) evolve identically; kernels with different
//! seeds have distinct boot ids, energy counters and interface names —
//! the *uniqueness* property the paper's co-residence metrics rely on.
//!
//! # Example
//!
//! ```
//! use simkernel::{Kernel, MachineConfig};
//! use workloads::models;
//!
//! let mut k = Kernel::new(MachineConfig::small_server(), 42);
//! let pid = k.spawn_host_process("prime", models::prime())?;
//! k.advance_secs(5);
//! assert!(k.rapl().package_energy_uj(0) > 0);
//! assert!(k.process(pid).is_some());
//! # Ok::<(), simkernel::KernelError>(())
//! ```

pub mod cgroup;
pub mod churn;
pub mod config;
pub mod epoch;
pub mod error;
pub mod faults;
pub mod fsstate;
pub mod hw;
pub mod irq;
pub mod kernel;
pub mod mem;
pub mod net;
pub mod ns;
pub mod parallel;
pub mod perf;
pub mod process;
pub mod sched;
pub mod syscost;
pub mod time;
pub mod timers;

pub use cgroup::{CgroupForest, CgroupId, CgroupKind};
pub use churn::{ChurnDriver, ChurnEvent, ChurnPlan, ChurnStats};
pub use config::MachineConfig;
pub use epoch::{dep, SubsystemEpochs};
pub use error::KernelError;
pub use faults::{is_sensor_path, FaultPlan, FsFaultKind, SensorFaultKind};
pub use hw::{PowerModelParams, PowerSnapshot, RaplDomains};
pub use kernel::{
    coalescing_default, render_caching_default, set_coalescing_default, set_render_caching_default,
    Kernel, RenderHit,
};
pub use ns::{NamespaceKind, NamespaceSet, NsId};
pub use process::{HostPid, ProcState, Process};
pub use syscost::SysCosts;
pub use time::{Clock, NANOS_PER_SEC};
