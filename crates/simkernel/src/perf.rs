//! The perf-event subsystem.
//!
//! The power-based namespace defense (§V-B1) creates one perf event per
//! (performance-event type × CPU) at namespace initialization, attaches
//! them to the container's `perf_event` cgroup, and sets their owner to
//! `TASK_TOMBSTONE` so accounting is decoupled from any user process. The
//! cost of enabling/disabling these monitors on *inter-cgroup* context
//! switches is the dominant overhead the paper measures in Table III
//! (61.5 % on single-copy pipe-based context switching, ~1.6 % with eight
//! copies that keep switches intra-cgroup).

use serde::{Deserialize, Serialize};

use crate::cgroup::{CgroupForest, CgroupId};
use crate::error::KernelError;

/// Hardware event types collected for the power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerfEventType {
    /// Retired instructions.
    Instructions,
    /// Last-level cache misses.
    CacheMisses,
    /// Branch mispredictions.
    BranchMisses,
    /// CPU cycles.
    Cycles,
}

impl PerfEventType {
    /// All event types the defense collects.
    pub const ALL: [PerfEventType; 4] = [
        PerfEventType::Instructions,
        PerfEventType::CacheMisses,
        PerfEventType::BranchMisses,
        PerfEventType::Cycles,
    ];
}

/// One created perf event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfEventDesc {
    /// The perf_event cgroup being monitored.
    pub cgroup: CgroupId,
    /// The CPU this event counts on.
    pub cpu: u16,
    /// The counted event.
    pub event: PerfEventType,
    /// Owner is `TASK_TOMBSTONE` (decoupled from user processes).
    pub tombstone_owner: bool,
}

/// Costs the perf machinery adds to kernel paths while any cgroup
/// monitoring is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfOverheadCosts {
    /// Extra nanoseconds on a context switch that crosses perf_event
    /// cgroups (monitor disable + enable, PMU reprogramming).
    pub inter_cgroup_switch_ns: u64,
    /// Extra nanoseconds on fork (inheriting event context).
    pub fork_ns: u64,
    /// Extra nanoseconds on exec (re-attaching events).
    pub exec_ns: u64,
    /// Extra nanoseconds per syscall (rare PMU spill handling, amortized).
    pub syscall_ns: u64,
    /// Extra nanoseconds per file-copy block when accounting IO-adjacent
    /// events under memory pressure (contention path; only visible with
    /// many parallel copies).
    pub file_block_contended_ns: u64,
}

impl Default for PerfOverheadCosts {
    fn default() -> Self {
        PerfOverheadCosts {
            inter_cgroup_switch_ns: 3_100,
            fork_ns: 7_500,
            exec_ns: 18_000,
            syscall_ns: 4,
            file_block_contended_ns: 200,
        }
    }
}

/// The perf-event subsystem state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfSubsystem {
    events: Vec<PerfEventDesc>,
    costs: Option<PerfOverheadCosts>,
}

impl PerfSubsystem {
    /// Creates the subsystem with no events attached.
    pub fn new() -> Self {
        PerfSubsystem::default()
    }

    /// All created events.
    pub fn events(&self) -> &[PerfEventDesc] {
        &self.events
    }

    /// Whether any cgroup is being monitored.
    pub fn monitoring_active(&self) -> bool {
        !self.events.is_empty()
    }

    /// The overhead cost table in effect (None when no monitoring).
    pub fn overhead(&self) -> Option<&PerfOverheadCosts> {
        if self.monitoring_active() {
            self.costs.as_ref()
        } else {
            None
        }
    }

    /// Attaches monitoring to a perf_event cgroup: creates one event per
    /// (type × CPU) with a tombstone owner and enables counter accumulation
    /// in the cgroup forest.
    ///
    /// # Errors
    ///
    /// Propagates cgroup-forest errors for unknown/mistyped cgroups.
    pub fn attach_cgroup(
        &mut self,
        forest: &mut CgroupForest,
        cgroup: CgroupId,
        ncpus: u16,
        costs: PerfOverheadCosts,
    ) -> Result<(), KernelError> {
        forest.set_perf_monitoring(cgroup, true)?;
        for cpu in 0..ncpus {
            for event in PerfEventType::ALL {
                self.events.push(PerfEventDesc {
                    cgroup,
                    cpu,
                    event,
                    tombstone_owner: true,
                });
            }
        }
        self.costs.get_or_insert(costs);
        Ok(())
    }

    /// Detaches monitoring from a cgroup (container teardown).
    ///
    /// # Errors
    ///
    /// Propagates cgroup-forest errors for unknown/mistyped cgroups.
    pub fn detach_cgroup(
        &mut self,
        forest: &mut CgroupForest,
        cgroup: CgroupId,
    ) -> Result<(), KernelError> {
        forest.set_perf_monitoring(cgroup, false)?;
        self.events.retain(|e| e.cgroup != cgroup);
        if self.events.is_empty() {
            self.costs = None;
        }
        Ok(())
    }

    /// The extra cost of a context switch from a task in `from` to a task
    /// in `to` (perf_event cgroup ids). Zero when monitoring is off or the
    /// switch stays within one cgroup — the asymmetry behind Table III's
    /// 1-copy vs 8-copy pipe results.
    pub fn switch_cost_ns(&self, from: CgroupId, to: CgroupId) -> u64 {
        match self.overhead() {
            Some(c) if from != to => c.inter_cgroup_switch_ns,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupKind;

    fn setup() -> (CgroupForest, PerfSubsystem, CgroupId, CgroupId) {
        let mut f = CgroupForest::new(4, &["lo".into()]);
        let root = f.root(CgroupKind::PerfEvent);
        let a = f.create_child(root, "a", &[]).unwrap();
        let b = f.create_child(root, "b", &[]).unwrap();
        (f, PerfSubsystem::new(), a, b)
    }

    #[test]
    fn attach_creates_events_per_type_and_cpu() {
        let (mut f, mut p, a, _) = setup();
        p.attach_cgroup(&mut f, a, 4, PerfOverheadCosts::default())
            .unwrap();
        assert_eq!(p.events().len(), 16);
        assert!(p.events().iter().all(|e| e.tombstone_owner));
        assert!(f.perf_monitoring(a));
        assert!(p.monitoring_active());
    }

    #[test]
    fn switch_cost_only_across_cgroups() {
        let (mut f, mut p, a, b) = setup();
        assert_eq!(p.switch_cost_ns(a, b), 0, "no cost before attach");
        p.attach_cgroup(&mut f, a, 2, PerfOverheadCosts::default())
            .unwrap();
        assert!(p.switch_cost_ns(a, b) > 0);
        assert_eq!(p.switch_cost_ns(a, a), 0);
    }

    #[test]
    fn detach_disables_everything() {
        let (mut f, mut p, a, b) = setup();
        p.attach_cgroup(&mut f, a, 2, PerfOverheadCosts::default())
            .unwrap();
        p.detach_cgroup(&mut f, a).unwrap();
        assert!(!p.monitoring_active());
        assert!(p.overhead().is_none());
        assert_eq!(p.switch_cost_ns(a, b), 0);
        assert!(!f.perf_monitoring(a));
    }

    #[test]
    fn attach_rejects_wrong_hierarchy() {
        let mut f = CgroupForest::new(2, &[]);
        let mem_root = f.root(CgroupKind::Memory);
        let mut p = PerfSubsystem::new();
        assert!(p
            .attach_cgroup(&mut f, mem_root, 2, PerfOverheadCosts::default())
            .is_err());
    }
}
