//! Hardware model: RAPL energy counters, the ground-truth power model,
//! core temperature sensors (coretemp DTS), and cpuidle states.
//!
//! This is the "physics" the paper's power channels observe and its defense
//! calibrates against. The ground-truth model makes package/core energy an
//! affine function of retired instructions whose slope depends on the
//! workload's cache-miss/branch-miss/FP mix — exactly the structure the
//! paper measures in Fig. 6 — and DRAM energy linear in cache misses
//! (Fig. 7). A small multiplicative noise term keeps the defense's
//! regression honest (nonzero Fig. 8 error).

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::sched::CpuTickLoad;
use crate::time::NANOS_PER_SEC;

/// Intel's RAPL energy-counter wrap point (`max_energy_range_uj`).
pub const RAPL_WRAP_UJ: u64 = 262_143_328_850;

/// Ground-truth power model parameters.
///
/// Calibrated so that magnitudes match the paper's observations: an idle
/// cloud server draws ≈ 110 W at the wall, a 4-core Prime95 container adds
/// ≈ 40 W (Fig. 4), and 8 servers of mixed benign load span ≈ 900–1200 W
/// (Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModelParams {
    /// Platform baseline (fans, disks, VRs, PSU) in watts.
    pub platform_idle_w: f64,
    /// Per-package uncore constant, watts.
    pub pkg_uncore_w: f64,
    /// Per-core idle leakage, watts.
    pub core_idle_w: f64,
    /// Per-core additional power when fully busy, watts.
    pub core_active_w: f64,
    /// Core energy per retired instruction, picojoules.
    pub energy_per_instr_pj: f64,
    /// Extra core energy per cache miss (stall/replay), picojoules.
    pub energy_per_cache_miss_pj: f64,
    /// Extra core energy per branch miss (flush), picojoules.
    pub energy_per_branch_miss_pj: f64,
    /// Multiplier applied to instruction energy for the FP fraction
    /// (an FP-heavy instruction stream draws more per instruction).
    pub fp_energy_factor: f64,
    /// Per-package DRAM idle (refresh) power, watts.
    pub dram_idle_w: f64,
    /// DRAM energy per cache miss serviced, picojoules.
    pub energy_per_dram_access_pj: f64,
    /// PSU efficiency (wall power = DC power / efficiency).
    pub psu_efficiency: f64,
    /// Multiplicative measurement/model noise per tick (std-dev fraction).
    pub noise_frac: f64,
}

impl Default for PowerModelParams {
    fn default() -> Self {
        PowerModelParams {
            platform_idle_w: 58.0,
            pkg_uncore_w: 9.0,
            core_idle_w: 1.3,
            core_active_w: 4.6,
            energy_per_instr_pj: 420.0,
            energy_per_cache_miss_pj: 9_000.0,
            energy_per_branch_miss_pj: 2_500.0,
            fp_energy_factor: 0.55,
            dram_idle_w: 2.2,
            energy_per_dram_access_pj: 31_000.0,
            psu_efficiency: 0.90,
            noise_frac: 0.008,
        }
    }
}

/// Accumulated RAPL counters for one package.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PackageEnergy {
    /// Package-domain energy, microjoules (unwrapped).
    pub package_uj: f64,
    /// Core (PP0) domain energy, microjoules (unwrapped).
    pub core_uj: f64,
    /// DRAM domain energy, microjoules (unwrapped).
    pub dram_uj: f64,
}

/// The RAPL interface: per-package accumulated energy counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaplDomains {
    present: bool,
    packages: Vec<PackageEnergy>,
}

impl RaplDomains {
    /// Creates counters for `packages` packages; `present` mirrors whether
    /// the CPU generation exposes RAPL at all.
    pub fn new(packages: usize, present: bool) -> Self {
        RaplDomains {
            present,
            packages: vec![PackageEnergy::default(); packages],
        }
    }

    /// Whether the hardware exposes RAPL.
    pub fn is_present(&self) -> bool {
        self.present
    }

    /// Number of packages.
    pub fn package_count(&self) -> usize {
        self.packages.len()
    }

    /// The `energy_uj` value for a package domain, with hardware wrap
    /// semantics. Returns 0 for out-of-range packages.
    pub fn package_energy_uj(&self, pkg: usize) -> u64 {
        self.packages
            .get(pkg)
            .map(|p| p.package_uj as u64 % RAPL_WRAP_UJ)
            .unwrap_or(0)
    }

    /// The core (PP0) domain counter, wrapped.
    pub fn core_energy_uj(&self, pkg: usize) -> u64 {
        self.packages
            .get(pkg)
            .map(|p| p.core_uj as u64 % RAPL_WRAP_UJ)
            .unwrap_or(0)
    }

    /// The DRAM domain counter, wrapped.
    pub fn dram_energy_uj(&self, pkg: usize) -> u64 {
        self.packages
            .get(pkg)
            .map(|p| p.dram_uj as u64 % RAPL_WRAP_UJ)
            .unwrap_or(0)
    }

    /// Unwrapped counters (simulation-side ground truth for tests and the
    /// defense's calibration loop).
    pub fn raw(&self, pkg: usize) -> Option<&PackageEnergy> {
        self.packages.get(pkg)
    }

    fn add(&mut self, pkg: usize, core_uj: f64, dram_uj: f64, uncore_uj: f64) {
        if let Some(p) = self.packages.get_mut(pkg) {
            p.core_uj += core_uj;
            p.dram_uj += dram_uj;
            p.package_uj += core_uj + dram_uj + uncore_uj;
        }
    }

    /// Zeroes every package's accumulators, as firmware does on reboot.
    pub fn reset(&mut self) {
        for p in &mut self.packages {
            *p = PackageEnergy::default();
        }
    }
}

/// One cpuidle state's residency counters (`/sys/devices/system/cpu/
/// cpu*/cpuidle/state*/{usage,time}`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleStateResidency {
    /// Number of entries into this state.
    pub usage: u64,
    /// Total microseconds spent in this state.
    pub time_us: u64,
}

/// cpuidle state names, shallow to deep.
pub const IDLE_STATE_NAMES: [&str; 5] = ["POLL", "C1", "C1E", "C3", "C6"];

/// Per-CPU hardware state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuHw {
    /// Core temperature in milli-degrees Celsius (coretemp format).
    pub temp_mc: f64,
    /// Idle-state residency, indexed like [`IDLE_STATE_NAMES`].
    pub idle_states: [IdleStateResidency; 5],
    /// Current operating frequency in kHz (cpufreq's `scaling_cur_freq`):
    /// races to turbo under load, parks near the floor when idle — another
    /// host-activity channel visible through sysfs.
    pub cur_freq_khz: u64,
}

/// Instantaneous power breakdown over the last tick.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerSnapshot {
    /// Wall (AC) power in watts.
    pub wall_w: f64,
    /// Per-package (package, core, dram) watts.
    pub per_package_w: Vec<(f64, f64, f64)>,
}

/// The machine's hardware: power, thermal, idle-state models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hardware {
    params: PowerModelParams,
    rapl: RaplDomains,
    cpus: Vec<CpuHw>,
    cpus_per_package: usize,
    freq_hz: u64,
    has_coretemp: bool,
    last_snapshot: PowerSnapshot,
}

const AMBIENT_MC: f64 = 35_000.0;
const MC_PER_W: f64 = 5_200.0;
const THERMAL_TAU_S: f64 = 9.0;

impl Hardware {
    /// Builds hardware for `ncpus` CPUs in `packages` packages.
    pub fn new(
        ncpus: usize,
        packages: usize,
        freq_hz: u64,
        has_rapl: bool,
        has_coretemp: bool,
        params: PowerModelParams,
    ) -> Self {
        Hardware {
            params,
            rapl: RaplDomains::new(packages, has_rapl),
            cpus: (0..ncpus)
                .map(|_| CpuHw {
                    temp_mc: AMBIENT_MC,
                    idle_states: [IdleStateResidency::default(); 5],
                    cur_freq_khz: freq_hz / 1_000 / 2,
                })
                .collect(),
            cpus_per_package: (ncpus / packages.max(1)).max(1),
            freq_hz,
            has_coretemp,
            last_snapshot: PowerSnapshot::default(),
        }
    }

    /// The RAPL counters.
    pub fn rapl(&self) -> &RaplDomains {
        &self.rapl
    }

    /// Zeroes the monotone hardware counters — RAPL energy and cpuidle
    /// residency — as a crash-reboot does. Thermal state and frequency are
    /// physical, not counters, and survive.
    pub fn reset_monotone_counters(&mut self) {
        self.rapl.reset();
        for cpu in &mut self.cpus {
            cpu.idle_states = [IdleStateResidency::default(); 5];
        }
    }

    /// Per-CPU hardware state.
    pub fn cpus(&self) -> &[CpuHw] {
        &self.cpus
    }

    /// Whether coretemp sensors exist.
    pub fn has_coretemp(&self) -> bool {
        self.has_coretemp
    }

    /// The power model parameters.
    pub fn params(&self) -> &PowerModelParams {
        &self.params
    }

    /// Power drawn over the most recent tick.
    pub fn last_power(&self) -> &PowerSnapshot {
        &self.last_snapshot
    }

    /// The package a CPU belongs to.
    pub fn package_of(&self, cpu: usize) -> usize {
        (cpu / self.cpus_per_package).min(self.rapl.package_count().saturating_sub(1))
    }

    /// Integrates one tick of load into energy counters, temperatures and
    /// idle-state residency.
    pub fn tick(&mut self, dt_ns: u64, load: &[CpuTickLoad], rng: &mut StdRng) {
        let dt_s = dt_ns as f64 / NANOS_PER_SEC as f64;
        let p = self.params.clone();
        let npkg = self.rapl.package_count();
        let mut pkg_core_w = vec![0.0f64; npkg];
        let mut pkg_dram_w = vec![0.0f64; npkg];
        // Loop-invariant pieces of the per-CPU thermal/governor models.
        let alpha = 1.0 - (-dt_s / THERMAL_TAU_S).exp();
        let base_khz = self.freq_hz as f64 / 1_000.0;

        for (cpu, l) in load.iter().enumerate().take(self.cpus.len()) {
            let busy_frac = (l.busy_ns as f64 / dt_ns as f64).min(1.0);
            let instr_rate = l.instructions as f64 / dt_s;
            let cm_rate = l.cache_misses as f64 / dt_s;
            let bm_rate = l.branch_misses as f64 / dt_s;
            let fp_frac = if l.instructions > 0 {
                l.fp_instructions as f64 / l.instructions as f64
            } else {
                0.0
            };

            // Core power: idle leakage + activity baseline + per-event
            // energies. The per-instruction term is scaled up for FP-heavy
            // streams — the workload-dependent slope of Fig. 6.
            let core_w = p.core_idle_w
                + busy_frac * p.core_active_w
                + instr_rate * p.energy_per_instr_pj * (1.0 + p.fp_energy_factor * fp_frac) * 1e-12
                + cm_rate * p.energy_per_cache_miss_pj * 1e-12
                + bm_rate * p.energy_per_branch_miss_pj * 1e-12;
            let dram_w = cm_rate * p.energy_per_dram_access_pj * 1e-12;

            let pkg = self.package_of(cpu);
            pkg_core_w[pkg] += core_w;
            pkg_dram_w[pkg] += dram_w;

            // Thermal: first-order filter toward a power-dependent target.
            let target = AMBIENT_MC + core_w * MC_PER_W;
            let hw = &mut self.cpus[cpu];
            // DTS sensors carry ~±0.25 °C of readout noise.
            hw.temp_mc += (target - hw.temp_mc) * alpha + rng.random_range(-250.0..250.0);

            // cpufreq governor: floor at ~47% of nominal when parked,
            // turbo to ~112% under full load, with dither.
            let target_khz = base_khz * (0.47 + 0.65 * busy_frac);
            hw.cur_freq_khz = (target_khz * (1.0 + rng.random_range(-0.01..0.01))) as u64;

            // cpuidle residency for the idle fraction of the tick.
            let idle_ns = dt_ns - l.busy_ns.min(dt_ns);
            if idle_ns > 0 {
                let idle_us = idle_ns / 1_000;
                // Deep idle when mostly idle; shallow when fragmented.
                let split: [(usize, f64); 3] = if busy_frac < 0.05 {
                    [(4, 0.85), (2, 0.10), (1, 0.05)]
                } else if busy_frac < 0.6 {
                    [(3, 0.50), (2, 0.30), (1, 0.20)]
                } else {
                    [(1, 0.60), (0, 0.25), (2, 0.15)]
                };
                for (state, frac) in split {
                    let t = (idle_us as f64 * frac) as u64;
                    let st = &mut hw.idle_states[state];
                    st.time_us += t;
                    // Entry count: deep states have long residencies.
                    let avg_res_us = [50u64, 200, 600, 2_000, 20_000][state];
                    st.usage += (t / avg_res_us).max(u64::from(t > 0));
                }
            }
        }

        let mut snapshot = PowerSnapshot {
            wall_w: 0.0,
            per_package_w: Vec::with_capacity(npkg),
        };
        let mut dc_w = p.platform_idle_w;
        for pkg in 0..npkg {
            let noise = 1.0 + rng.random_range(-p.noise_frac..p.noise_frac);
            let core_w = pkg_core_w[pkg] * noise;
            let dram_w = (p.dram_idle_w + pkg_dram_w[pkg]) * noise;
            let uncore_w = p.pkg_uncore_w;
            let pkg_w = core_w + dram_w + uncore_w;
            self.rapl.add(
                pkg,
                core_w * dt_s * 1e6,
                dram_w * dt_s * 1e6,
                uncore_w * dt_s * 1e6,
            );
            snapshot.per_package_w.push((pkg_w, core_w, dram_w));
            dc_w += pkg_w;
        }
        snapshot.wall_w = dc_w / p.psu_efficiency;
        self.last_snapshot = snapshot;
    }

    /// Jumps the hardware to its quiescent-state value `rel_ns` after
    /// `anchor`: every core draws idle leakage only, temperatures relax
    /// exponentially toward the idle target, frequencies park at the
    /// governor floor, and the deep-idle residency split accumulates. Pure
    /// in (anchor, rel_ns) — no measurement noise is drawn, so any
    /// subdivision of a quiescent span lands on byte-identical counters.
    pub fn idle_eval(&mut self, anchor: &Hardware, rel_ns: u64) {
        let rel_s = rel_ns as f64 / NANOS_PER_SEC as f64;
        let p = self.params.clone();
        let npkg = self.rapl.package_count();
        let idle_target_mc = AMBIENT_MC + p.core_idle_w * MC_PER_W;
        let decay = (-rel_s / THERMAL_TAU_S).exp();
        let idle_khz = (self.freq_hz as f64 / 1_000.0 * 0.47) as u64;
        let idle_us = rel_ns / 1_000;
        let cpp = self.cpus_per_package;
        let mut pkg_cores = vec![0usize; npkg];
        for (cpu, (cur, base)) in self.cpus.iter_mut().zip(anchor.cpus.iter()).enumerate() {
            cur.temp_mc = idle_target_mc + (base.temp_mc - idle_target_mc) * decay;
            cur.cur_freq_khz = idle_khz;
            cur.idle_states = base.idle_states;
            // The mostly-idle residency split from `tick` (busy < 0.05).
            for (state, frac) in [(4usize, 0.85f64), (2, 0.10), (1, 0.05)] {
                let t = (idle_us as f64 * frac) as u64;
                let avg_res_us = [50u64, 200, 600, 2_000, 20_000][state];
                let st = &mut cur.idle_states[state];
                st.time_us = base.idle_states[state].time_us + t;
                st.usage = base.idle_states[state].usage + (t / avg_res_us).max(u64::from(t > 0));
            }
            pkg_cores[(cpu / cpp).min(npkg.saturating_sub(1))] += 1;
        }

        let mut snapshot = PowerSnapshot {
            wall_w: 0.0,
            per_package_w: Vec::with_capacity(npkg),
        };
        let mut dc_w = p.platform_idle_w;
        for (pkg, cores) in pkg_cores.iter().enumerate() {
            let core_w = p.core_idle_w * *cores as f64;
            let dram_w = p.dram_idle_w;
            let uncore_w = p.pkg_uncore_w;
            let pkg_w = core_w + dram_w + uncore_w;
            let base = anchor.rapl.packages[pkg];
            let dst = &mut self.rapl.packages[pkg];
            dst.core_uj = base.core_uj + core_w * rel_s * 1e6;
            dst.dram_uj = base.dram_uj + dram_w * rel_s * 1e6;
            dst.package_uj = base.package_uj + pkg_w * rel_s * 1e6;
            snapshot.per_package_w.push((pkg_w, core_w, dram_w));
            dc_w += pkg_w;
        }
        snapshot.wall_w = dc_w / p.psu_efficiency;
        self.last_snapshot = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn idle_load(ncpus: usize, dt_ns: u64) -> Vec<CpuTickLoad> {
        vec![
            CpuTickLoad {
                busy_ns: dt_ns / 100,
                instructions: 1_000_000,
                ..CpuTickLoad::default()
            };
            ncpus
        ]
    }

    fn busy_load(ncpus: usize, dt_ns: u64) -> Vec<CpuTickLoad> {
        // Prime-like: 3.4 GHz, IPC 2.4.
        vec![
            CpuTickLoad {
                busy_ns: dt_ns,
                instructions: 8_160_000_000,
                cache_misses: 408_000,
                branch_misses: 3_264_000,
                fp_instructions: 2_856_000_000,
                tasks_ran: 1,
                ..CpuTickLoad::default()
            };
            ncpus
        ]
    }

    fn hw(ncpus: usize, pkgs: usize) -> Hardware {
        Hardware::new(
            ncpus,
            pkgs,
            3_400_000_000,
            true,
            true,
            PowerModelParams::default(),
        )
    }

    #[test]
    fn energy_counters_grow_monotonically() {
        let mut h = hw(8, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let dt = NANOS_PER_SEC;
        let mut last = 0u64;
        for _ in 0..10 {
            h.tick(dt, &busy_load(8, dt), &mut rng);
            let e = h.rapl().raw(0).unwrap().package_uj as u64;
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn idle_server_wall_power_in_paper_range() {
        let mut h = hw(16, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let dt = NANOS_PER_SEC;
        h.tick(dt, &idle_load(16, dt), &mut rng);
        let w = h.last_power().wall_w;
        assert!((95.0..135.0).contains(&w), "idle wall power {w} W");
    }

    #[test]
    fn four_core_prime_adds_about_forty_watts() {
        // Fig. 4: one container running 4 Prime copies adds ≈ 40 W.
        let mut h1 = hw(16, 2);
        let mut h2 = hw(16, 2);
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let dt = NANOS_PER_SEC;

        let idle = idle_load(16, dt);
        let mut four_busy = idle_load(16, dt);
        for l in four_busy.iter_mut().take(4) {
            *l = busy_load(1, dt)[0];
        }
        h1.tick(dt, &idle, &mut rng1);
        h2.tick(dt, &four_busy, &mut rng2);
        let delta = h2.last_power().wall_w - h1.last_power().wall_w;
        assert!(
            (25.0..60.0).contains(&delta),
            "4-core prime delta {delta} W, expected ≈ 40"
        );
    }

    #[test]
    fn dram_energy_is_linear_in_cache_misses() {
        let dt = NANOS_PER_SEC;
        let mut rng = StdRng::seed_from_u64(4);
        let mut baseline = hw(4, 1);
        baseline.tick(dt, &idle_load(4, dt), &mut rng);
        let base_dram = baseline.rapl().raw(0).unwrap().dram_uj;

        let mut rates = Vec::new();
        for misses in [1e8 as u64, 2e8 as u64, 4e8 as u64] {
            let mut h = hw(4, 1);
            let mut rng = StdRng::seed_from_u64(4);
            let mut load = idle_load(4, dt);
            load[0].cache_misses = misses;
            load[0].busy_ns = dt;
            h.tick(dt, &load, &mut rng);
            rates.push(h.rapl().raw(0).unwrap().dram_uj - base_dram);
        }
        // Doubling misses should roughly double the extra DRAM energy.
        let r1 = rates[1] / rates[0];
        let r2 = rates[2] / rates[1];
        assert!((1.7..2.3).contains(&r1), "ratio {r1}");
        assert!((1.7..2.3).contains(&r2), "ratio {r2}");
    }

    #[test]
    fn temperature_rises_under_load_and_saturates() {
        let mut h = hw(4, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let dt = NANOS_PER_SEC;
        let t0 = h.cpus()[0].temp_mc;
        for _ in 0..60 {
            h.tick(dt, &busy_load(4, dt), &mut rng);
        }
        let t1 = h.cpus()[0].temp_mc;
        assert!(t1 > t0 + 10_000.0, "temp rose only {t0}→{t1}");
        for _ in 0..120 {
            h.tick(dt, &busy_load(4, dt), &mut rng);
        }
        let t2 = h.cpus()[0].temp_mc;
        assert!(
            (t2 - t1).abs() < 5_000.0,
            "temp did not saturate: {t1}→{t2}"
        );
        assert!(t2 < 100_000.0, "temp unphysical: {t2}");
    }

    #[test]
    fn idle_cpu_accumulates_deep_idle_residency() {
        let mut h = hw(2, 1);
        let mut rng = StdRng::seed_from_u64(6);
        let dt = NANOS_PER_SEC;
        for _ in 0..5 {
            h.tick(dt, &idle_load(2, dt), &mut rng);
        }
        let c6 = h.cpus()[0].idle_states[4];
        assert!(c6.usage > 0);
        assert!(c6.time_us > 3_000_000, "C6 time {}", c6.time_us);
    }

    #[test]
    fn cpufreq_races_to_turbo_under_load() {
        let mut h = hw(2, 1);
        let mut rng = StdRng::seed_from_u64(21);
        let dt = NANOS_PER_SEC;
        let mut load = idle_load(2, dt);
        load[0] = busy_load(1, dt)[0];
        h.tick(dt, &load, &mut rng);
        let busy_khz = h.cpus()[0].cur_freq_khz;
        let idle_khz = h.cpus()[1].cur_freq_khz;
        assert!(
            busy_khz > idle_khz * 2,
            "busy {busy_khz} vs idle {idle_khz}"
        );
        assert!(
            busy_khz > 3_400_000,
            "turbo should exceed nominal: {busy_khz}"
        );
    }

    #[test]
    fn rapl_counters_wrap_like_hardware() {
        let mut r = RaplDomains::new(1, true);
        r.add(0, (RAPL_WRAP_UJ + 500) as f64, 0.0, 0.0);
        assert_eq!(r.core_energy_uj(0), 500);
        assert!(r.raw(0).unwrap().core_uj > RAPL_WRAP_UJ as f64);
    }

    #[test]
    fn absent_rapl_reports_absent() {
        let h = Hardware::new(4, 1, 2e9 as u64, false, false, PowerModelParams::default());
        assert!(!h.rapl().is_present());
        assert!(!h.has_coretemp());
    }

    #[test]
    fn fp_heavy_stream_draws_more_core_power() {
        let dt = NANOS_PER_SEC;
        let mk = |fp: u64| {
            let mut h = hw(1, 1);
            let mut rng = StdRng::seed_from_u64(7);
            let mut l = busy_load(1, dt);
            l[0].fp_instructions = fp;
            h.tick(dt, &l, &mut rng);
            h.rapl().raw(0).unwrap().core_uj
        };
        let int_only = mk(0);
        let fp_heavy = mk(6_000_000_000);
        assert!(
            fp_heavy > int_only * 1.05,
            "fp {fp_heavy} vs int {int_only}"
        );
    }
}
