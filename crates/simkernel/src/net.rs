//! Network device state.
//!
//! Device *names* per namespace live in [`crate::ns`]; this module owns the
//! host-global device list with traffic counters. The host list matters for
//! two leaks: `net_prio.ifpriomap` renders *all* host interfaces regardless
//! of the reader's NET namespace (Case Study I), and each container created
//! on a host adds a `veth*` device whose randomized name makes the host
//! list a unique fingerprint.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::time::NANOS_PER_SEC;

/// A network device with `/proc/net/dev`-style counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetDevice {
    /// Interface name.
    pub name: String,
    /// Received bytes.
    pub rx_bytes: u64,
    /// Received packets.
    pub rx_packets: u64,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
}

impl NetDevice {
    fn new(name: impl Into<String>) -> Self {
        NetDevice {
            name: name.into(),
            rx_bytes: 0,
            rx_packets: 0,
            tx_bytes: 0,
            tx_packets: 0,
        }
    }
}

/// Host-global network state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetState {
    devices: Vec<NetDevice>,
}

impl NetState {
    /// Creates the host's initial device list.
    pub fn new() -> Self {
        NetState {
            devices: vec![
                NetDevice::new("lo"),
                NetDevice::new("eth0"),
                NetDevice::new("eth1"),
                NetDevice::new("docker0"),
            ],
        }
    }

    /// The host device list, in creation order.
    pub fn devices(&self) -> &[NetDevice] {
        &self.devices
    }

    /// Names of all host devices.
    pub fn device_names(&self) -> Vec<String> {
        self.devices.iter().map(|d| d.name.clone()).collect()
    }

    /// Creates a veth pair's host end with a randomized suffix, returning
    /// its name. Container creation calls this; the suffix makes the host
    /// interface list a unique host fingerprint.
    pub fn create_veth(&mut self, rng: &mut StdRng) -> String {
        let suffix: u32 = rng.random();
        let name = format!("veth{suffix:07x}");
        self.devices.push(NetDevice::new(name.clone()));
        name
    }

    /// Removes a device by name (container teardown).
    pub fn remove_device(&mut self, name: &str) -> bool {
        let before = self.devices.len();
        self.devices.retain(|d| d.name != name);
        self.devices.len() != before
    }

    /// One tick of background + workload-driven traffic.
    pub fn tick(&mut self, dt_ns: u64, syscall_rate: u64, rng: &mut StdRng) {
        let dt_s = dt_ns as f64 / NANOS_PER_SEC as f64;
        for d in &mut self.devices {
            let (rx_rate, tx_rate) = match d.name.as_str() {
                "lo" => (2_000.0, 2_000.0),
                "eth0" => (
                    60_000.0 + syscall_rate as f64 * 40.0,
                    45_000.0 + syscall_rate as f64 * 30.0,
                ),
                "eth1" => (8_000.0, 5_000.0),
                _ => (3_000.0 + syscall_rate as f64, 3_000.0 + syscall_rate as f64),
            };
            let jitter = 1.0 + rng.random_range(-0.15..0.15);
            let rx = (rx_rate * dt_s * jitter) as u64;
            let tx = (tx_rate * dt_s * jitter) as u64;
            d.rx_bytes += rx;
            d.tx_bytes += tx;
            d.rx_packets += rx / 900 + 1;
            d.tx_packets += tx / 900 + 1;
        }
    }

    /// Jump-evaluates traffic counters to `rel_ns` past `anchor` with no
    /// workload syscalls.
    ///
    /// Mirrors [`NetState::tick`] at `syscall_rate == 0` with the jitter
    /// dropped; the per-tick `+1` packet keep-alive becomes one packet per
    /// idle second so the result is a closed form of `(anchor, rel_ns)`
    /// independent of step size.
    pub fn idle_eval(&mut self, anchor: &NetState, rel_ns: u64) {
        let rel_s = rel_ns as f64 / NANOS_PER_SEC as f64;
        let secs = rel_ns / NANOS_PER_SEC;
        for (d, base) in self.devices.iter_mut().zip(anchor.devices.iter()) {
            let (rx_rate, tx_rate) = match d.name.as_str() {
                "lo" => (2_000.0, 2_000.0),
                "eth0" => (60_000.0, 45_000.0),
                "eth1" => (8_000.0, 5_000.0),
                _ => (3_000.0, 3_000.0),
            };
            let rx = (rx_rate * rel_s) as u64;
            let tx = (tx_rate * rel_s) as u64;
            d.rx_bytes = base.rx_bytes + rx;
            d.tx_bytes = base.tx_bytes + tx;
            d.rx_packets = base.rx_packets + rx / 900 + secs;
            d.tx_packets = base.tx_packets + tx / 900 + secs;
        }
    }
}

impl Default for NetState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn initial_devices_present() {
        let n = NetState::new();
        assert!(n.device_names().contains(&"eth0".to_string()));
        assert!(n.device_names().contains(&"docker0".to_string()));
    }

    #[test]
    fn veth_names_are_unique_per_host() {
        let mut a = NetState::new();
        let mut b = NetState::new();
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(2);
        let va = a.create_veth(&mut rng_a);
        let vb = b.create_veth(&mut rng_b);
        assert_ne!(va, vb);
        assert!(va.starts_with("veth"));
    }

    #[test]
    fn remove_device_works() {
        let mut n = NetState::new();
        let mut rng = StdRng::seed_from_u64(3);
        let v = n.create_veth(&mut rng);
        assert!(n.remove_device(&v));
        assert!(!n.remove_device(&v));
        assert!(!n.device_names().contains(&v));
    }

    #[test]
    fn counters_grow_with_traffic() {
        let mut n = NetState::new();
        let mut rng = StdRng::seed_from_u64(4);
        n.tick(NANOS_PER_SEC, 10_000, &mut rng);
        let eth0 = n.devices().iter().find(|d| d.name == "eth0").unwrap();
        assert!(eth0.rx_bytes > 0);
        assert!(eth0.rx_packets > 0);
        let rx1 = eth0.rx_bytes;
        n.tick(NANOS_PER_SEC, 10_000, &mut rng);
        assert!(
            n.devices()
                .iter()
                .find(|d| d.name == "eth0")
                .unwrap()
                .rx_bytes
                > rx1
        );
    }
}
