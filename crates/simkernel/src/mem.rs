//! Memory subsystem state: zones, meminfo, NUMA nodes.
//!
//! Feeds the `/proc/meminfo`, `/proc/zoneinfo`,
//! `/sys/devices/system/node/node*/{meminfo,vmstat,numastat}` channels.
//! The paper's *variation* metric uses `MemFree` snapshots as a
//! co-residence fingerprint, so free memory must move with workload
//! placement and carry host-specific jitter.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::time::NANOS_PER_SEC;

/// Page size used throughout (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// One memory zone (`/proc/zoneinfo` entry).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Zone {
    /// Zone name (`DMA`, `DMA32`, `Normal`).
    pub name: &'static str,
    /// NUMA node the zone belongs to.
    pub node: u16,
    /// Pages spanned by the zone.
    pub spanned_pages: u64,
    /// Pages present.
    pub present_pages: u64,
    /// Pages managed by the buddy allocator.
    pub managed_pages: u64,
    /// Watermarks (min/low/high), pages.
    pub watermark: (u64, u64, u64),
    /// Currently free pages (updated every tick).
    pub free_pages: u64,
}

/// Per-NUMA-node counters (`numastat`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumaStat {
    /// Allocations satisfied on the preferred node.
    pub numa_hit: u64,
    /// Allocations that fell back to this node.
    pub numa_miss: u64,
    /// Allocations intended for this node placed elsewhere.
    pub numa_foreign: u64,
    /// Interleave-policy hits.
    pub interleave_hit: u64,
    /// Allocations by processes local to the node.
    pub local_node: u64,
    /// Allocations by remote processes.
    pub other_node: u64,
}

/// Cumulative VM event counters (`/proc/vmstat` rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmCounters {
    /// Pages allocated since boot.
    pub pgalloc: u64,
    /// Pages freed since boot.
    pub pgfree: u64,
    /// Page faults since boot.
    pub pgfault: u64,
    /// Major faults since boot.
    pub pgmajfault: u64,
    /// Pages scanned by reclaim.
    pub pgscan: u64,
}

/// Whole-machine memory state.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryState {
    vm: VmCounters,
    total_bytes: u64,
    swap_total_bytes: u64,
    swap_free_bytes: u64,
    kernel_reserved_bytes: u64,
    rss_bytes: u64,
    page_cache_bytes: u64,
    buffers_bytes: u64,
    dirty_bytes: u64,
    zones: Vec<Zone>,
    numa: Vec<NumaStat>,
    numa_nodes: u16,
}

impl MemoryState {
    /// Creates memory state for a machine with `total_bytes` RAM split
    /// over `numa_nodes` nodes.
    pub fn new(total_bytes: u64, swap_bytes: u64, numa_nodes: u16) -> Self {
        let mut zones = Vec::new();
        let per_node = total_bytes / u64::from(numa_nodes.max(1));
        for node in 0..numa_nodes {
            if node == 0 {
                let dma = 16 << 20;
                let dma32 = (4u64 << 30).min(per_node / 2).saturating_sub(dma);
                let normal = per_node - dma - dma32;
                zones.push(mk_zone("DMA", node, dma));
                zones.push(mk_zone("DMA32", node, dma32));
                zones.push(mk_zone("Normal", node, normal));
            } else {
                zones.push(mk_zone("Normal", node, per_node));
            }
        }
        let mut s = MemoryState {
            vm: VmCounters::default(),
            total_bytes,
            swap_total_bytes: swap_bytes,
            swap_free_bytes: swap_bytes,
            kernel_reserved_bytes: (total_bytes / 40).max(512 << 20).min(total_bytes / 4),
            rss_bytes: 0,
            page_cache_bytes: (total_bytes / 30).min(2 << 30),
            buffers_bytes: 96 << 20,
            dirty_bytes: 4 << 20,
            zones,
            numa: vec![NumaStat::default(); numa_nodes as usize],
            numa_nodes,
        };
        s.refresh_zone_free();
        s
    }

    /// Total RAM, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Free RAM, bytes (`MemFree`).
    pub fn free_bytes(&self) -> u64 {
        self.total_bytes.saturating_sub(
            self.kernel_reserved_bytes
                + self.rss_bytes
                + self.page_cache_bytes
                + self.buffers_bytes,
        )
    }

    /// `MemAvailable`: free plus reclaimable cache.
    pub fn available_bytes(&self) -> u64 {
        self.free_bytes() + self.page_cache_bytes * 7 / 10 + self.buffers_bytes / 2
    }

    /// Page-cache bytes (`Cached`).
    pub fn cached_bytes(&self) -> u64 {
        self.page_cache_bytes
    }

    /// Buffer bytes (`Buffers`).
    pub fn buffers_bytes(&self) -> u64 {
        self.buffers_bytes
    }

    /// Dirty bytes (`Dirty`).
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    /// Swap total/free, bytes.
    pub fn swap(&self) -> (u64, u64) {
        (self.swap_total_bytes, self.swap_free_bytes)
    }

    /// Aggregate process RSS currently charged.
    pub fn rss_bytes(&self) -> u64 {
        self.rss_bytes
    }

    /// The zones (`/proc/zoneinfo`).
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Per-node NUMA counters.
    pub fn numa_stats(&self) -> &[NumaStat] {
        &self.numa
    }

    /// Number of NUMA nodes.
    pub fn numa_nodes(&self) -> u16 {
        self.numa_nodes
    }

    /// Free/total split for one node (used by per-node meminfo).
    pub fn node_mem(&self, node: u16) -> (u64, u64) {
        let node_total: u64 = self
            .zones
            .iter()
            .filter(|z| z.node == node)
            .map(|z| z.managed_pages * PAGE_SIZE)
            .sum();
        let node_free: u64 = self
            .zones
            .iter()
            .filter(|z| z.node == node)
            .map(|z| z.free_pages * PAGE_SIZE)
            .sum();
        (node_total, node_free)
    }

    /// Cumulative VM event counters.
    pub fn vm_counters(&self) -> VmCounters {
        self.vm
    }

    /// Whether an allocation of `bytes` can be admitted.
    pub fn can_admit(&self, bytes: u64) -> bool {
        self.available_bytes() >= bytes
    }

    /// One tick: charge the current aggregate RSS, grow/shrink the page
    /// cache with IO traffic, wander dirty pages, update zones and NUMA
    /// counters.
    pub fn tick(&mut self, dt_ns: u64, rss_total: u64, io_bytes: u64, rng: &mut StdRng) {
        let dt_s = dt_ns as f64 / NANOS_PER_SEC as f64;
        self.rss_bytes = rss_total.min(self.total_bytes - self.kernel_reserved_bytes);

        // Page cache: absorbs IO, decays toward a floor, jitters.
        let ceiling = self
            .total_bytes
            .saturating_sub(self.kernel_reserved_bytes + self.rss_bytes)
            / 2;
        let decay = (-dt_s / 600.0).exp();
        let mut cache = self.page_cache_bytes as f64 * decay + io_bytes as f64 * 0.8;
        let jitter = rng.random_range(-0.01..0.01);
        cache *= 1.0 + jitter;
        self.page_cache_bytes = (cache as u64).clamp(64 << 20, ceiling.max(64 << 20));

        self.dirty_bytes =
            ((self.dirty_bytes as f64 * 0.7) as u64 + io_bytes / 4).clamp(1 << 20, 512 << 20);

        self.refresh_zone_free();

        // VM event counters accumulate with activity.
        let churn = (self.rss_bytes / PAGE_SIZE / 200).max(64) as f64 * dt_s;
        self.vm.pgalloc += churn as u64 + io_bytes / PAGE_SIZE;
        self.vm.pgfree += (churn * 0.97) as u64 + io_bytes / PAGE_SIZE;
        self.vm.pgfault += (churn * 2.4) as u64 + rng.random_range(0..32);
        self.vm.pgmajfault += io_bytes / (1 << 22) + u64::from(rng.random_range(0..20u32) == 0);
        self.vm.pgscan += (churn * 0.1) as u64;

        // NUMA counters accumulate with allocation traffic (rate scaled
        // by elapsed time so long idle periods still advance them).
        let allocs = (((self.rss_bytes / PAGE_SIZE / 1000).max(200) + io_bytes / PAGE_SIZE) as f64
            * dt_s) as u64;
        for (i, n) in self.numa.iter_mut().enumerate() {
            let local = allocs * 9 / 10 + rng.random_range(0..32);
            let remote = allocs / 10 + rng.random_range(0..8);
            n.numa_hit += local;
            n.local_node += local;
            n.numa_miss += remote / (i as u64 + 1);
            n.other_node += remote;
            n.interleave_hit += rng.random_range(0..4);
            n.numa_foreign += remote / 2;
        }
    }

    /// Jump-evaluates memory state to `rel_ns` past `anchor` with no IO
    /// and a fixed aggregate RSS.
    ///
    /// Mirrors [`MemoryState::tick`] at `io_bytes == 0` with every random
    /// term dropped, written as a closed form of `(anchor, rel_ns)` so the
    /// kernel's quiescent path lands on the same bytes whether it takes one
    /// coalesced span or many small ones.
    pub fn idle_eval(&mut self, anchor: &MemoryState, rel_ns: u64, rss_total: u64) {
        let rel_s = rel_ns as f64 / NANOS_PER_SEC as f64;
        self.rss_bytes = rss_total.min(self.total_bytes - self.kernel_reserved_bytes);

        let ceiling = self
            .total_bytes
            .saturating_sub(self.kernel_reserved_bytes + self.rss_bytes)
            / 2;
        let cache = anchor.page_cache_bytes as f64 * (-rel_s / 600.0).exp();
        self.page_cache_bytes = (cache as u64).clamp(64 << 20, ceiling.max(64 << 20));

        self.dirty_bytes =
            ((anchor.dirty_bytes as f64 * 0.7f64.powf(rel_s)) as u64).clamp(1 << 20, 512 << 20);

        self.refresh_zone_free();

        let rate = (self.rss_bytes / PAGE_SIZE / 200).max(64) as f64;
        self.vm.pgalloc = anchor.vm.pgalloc + (rate * rel_s) as u64;
        self.vm.pgfree = anchor.vm.pgfree + (rate * 0.97 * rel_s) as u64;
        self.vm.pgfault = anchor.vm.pgfault + (rate * 2.4 * rel_s) as u64;
        self.vm.pgmajfault = anchor.vm.pgmajfault;
        self.vm.pgscan = anchor.vm.pgscan + (rate * 0.1 * rel_s) as u64;

        let allocs = ((self.rss_bytes / PAGE_SIZE / 1000).max(200) as f64 * rel_s) as u64;
        let local = allocs * 9 / 10;
        let remote = allocs / 10;
        for (i, (n, base)) in self.numa.iter_mut().zip(anchor.numa.iter()).enumerate() {
            n.numa_hit = base.numa_hit + local;
            n.local_node = base.local_node + local;
            n.numa_miss = base.numa_miss + remote / (i as u64 + 1);
            n.other_node = base.other_node + remote;
            n.interleave_hit = base.interleave_hit;
            n.numa_foreign = base.numa_foreign + remote / 2;
        }
    }

    fn refresh_zone_free(&mut self) {
        let free = self.free_bytes();
        let managed_total: u64 = self.zones.iter().map(|z| z.managed_pages).sum();
        if managed_total == 0 {
            return;
        }
        for z in &mut self.zones {
            let share = z.managed_pages as f64 / managed_total as f64;
            // `free_bytes()` is measured against the full RAM while
            // zones only manage ~97% of it; on a nearly idle machine the
            // proportional share can exceed the zone — clamp to keep the
            // free ≤ managed invariant every renderer assumes.
            z.free_pages = (((free / PAGE_SIZE) as f64 * share) as u64).min(z.managed_pages);
        }
    }
}

fn mk_zone(name: &'static str, node: u16, bytes: u64) -> Zone {
    let pages = bytes / PAGE_SIZE;
    let managed = pages * 97 / 100;
    let min = (managed / 1024).max(32);
    Zone {
        name,
        node,
        spanned_pages: pages,
        present_pages: pages,
        managed_pages: managed,
        watermark: (min, min * 5 / 4, min * 3 / 2),
        free_pages: managed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_partitions_zones() {
        let m = MemoryState::new(16 << 30, 8 << 30, 1);
        let names: Vec<_> = m.zones().iter().map(|z| z.name).collect();
        assert_eq!(names, vec!["DMA", "DMA32", "Normal"]);
        let spanned: u64 = m.zones().iter().map(|z| z.spanned_pages * PAGE_SIZE).sum();
        assert_eq!(spanned, 16 << 30);
    }

    #[test]
    fn two_nodes_get_separate_normal_zones() {
        let m = MemoryState::new(64 << 30, 0, 2);
        assert!(m.zones().iter().any(|z| z.node == 1 && z.name == "Normal"));
        let (t0, _) = m.node_mem(0);
        let (t1, _) = m.node_mem(1);
        assert!(t0 > 0 && t1 > 0);
    }

    #[test]
    fn free_drops_when_rss_charged() {
        let mut m = MemoryState::new(16 << 30, 0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let before = m.free_bytes();
        m.tick(NANOS_PER_SEC, 4 << 30, 0, &mut rng);
        let after = m.free_bytes();
        assert!(before - after > 3 << 30, "free {before} -> {after}");
    }

    #[test]
    fn zone_free_tracks_global_free() {
        let mut m = MemoryState::new(16 << 30, 0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        m.tick(NANOS_PER_SEC, 8 << 30, 0, &mut rng);
        let zone_free: u64 = m.zones().iter().map(|z| z.free_pages * PAGE_SIZE).sum();
        let diff = (zone_free as i64 - m.free_bytes() as i64).unsigned_abs();
        assert!(diff < 64 << 20, "zone/global free divergence {diff}");
    }

    #[test]
    fn page_cache_grows_with_io() {
        let mut m = MemoryState::new(16 << 30, 0, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let before = m.cached_bytes();
        for _ in 0..10 {
            m.tick(NANOS_PER_SEC, 0, 256 << 20, &mut rng);
        }
        assert!(m.cached_bytes() > before, "cache did not grow");
    }

    #[test]
    fn memfree_jitters_between_ticks() {
        // Variation metric: consecutive MemFree snapshots differ.
        let mut m = MemoryState::new(16 << 30, 0, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let mut values = Vec::new();
        for _ in 0..5 {
            m.tick(NANOS_PER_SEC, 1 << 30, 10 << 20, &mut rng);
            values.push(m.free_bytes());
        }
        values.dedup();
        assert!(values.len() > 1, "MemFree frozen at {values:?}");
    }

    #[test]
    fn numa_counters_accumulate() {
        let mut m = MemoryState::new(64 << 30, 0, 2);
        let mut rng = StdRng::seed_from_u64(5);
        m.tick(NANOS_PER_SEC, 1 << 30, 1 << 20, &mut rng);
        let s = m.numa_stats()[0];
        assert!(s.numa_hit > 0);
        assert!(s.local_node >= s.numa_miss);
    }

    #[test]
    fn vm_counters_accumulate_with_activity() {
        let mut m = MemoryState::new(16 << 30, 0, 1);
        let mut rng = StdRng::seed_from_u64(6);
        m.tick(NANOS_PER_SEC, 1 << 30, 1 << 20, &mut rng);
        let a = m.vm_counters();
        assert!(a.pgalloc > 0 && a.pgfault > a.pgalloc, "{a:?}");
        m.tick(NANOS_PER_SEC, 1 << 30, 1 << 20, &mut rng);
        let b = m.vm_counters();
        assert!(b.pgalloc > a.pgalloc && b.pgfault > a.pgfault);
    }

    #[test]
    fn admission_control_respects_available() {
        let m = MemoryState::new(8 << 30, 0, 1);
        assert!(m.can_admit(1 << 30));
        assert!(!m.can_admit(9 << 30));
    }

    #[test]
    fn available_exceeds_free() {
        let m = MemoryState::new(16 << 30, 0, 1);
        assert!(m.available_bytes() > m.free_bytes());
    }
}
