//! VFS-level kernel state: file locks, dentry/inode/file-handle counters,
//! ext4 allocation groups, and the entropy pool.
//!
//! Sources for `/proc/locks`, `/proc/sys/fs/{dentry-state,inode-nr,file-nr}`,
//! `/proc/fs/ext4/<disk>/mb_groups` and
//! `/proc/sys/kernel/random/{boot_id,entropy_avail}`.
//!
//! `/proc/locks` is one of the paper's *directly manipulable* channels: a
//! container can `flock()` a file with a recognizable byte range and other
//! containers see the entry (with host pids) if co-resident.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::process::HostPid;
use crate::time::NANOS_PER_SEC;

/// Kind of a POSIX/flock lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockKind {
    /// `FLOCK ADVISORY WRITE`
    FlockWrite,
    /// `POSIX ADVISORY READ`
    PosixRead,
    /// `POSIX ADVISORY WRITE`
    PosixWrite,
}

impl LockKind {
    /// The three middle columns of a `/proc/locks` row.
    pub fn columns(&self) -> &'static str {
        match self {
            LockKind::FlockWrite => "FLOCK  ADVISORY  WRITE",
            LockKind::PosixRead => "POSIX  ADVISORY  READ",
            LockKind::PosixWrite => "POSIX  ADVISORY  WRITE",
        }
    }
}

/// One entry in `/proc/locks`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileLock {
    /// Owning process (host pid — the leak).
    pub pid: HostPid,
    /// Lock kind.
    pub kind: LockKind,
    /// Device:inode identifier.
    pub dev_inode: String,
    /// Byte range (start, end); end of `u64::MAX` renders as `EOF`.
    pub range: (u64, u64),
}

/// One ext4 multi-block allocator group (`mb_groups` row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MbGroup {
    /// Free blocks in the group.
    pub free_blocks: u64,
    /// Free fragments.
    pub fragments: u64,
    /// Largest contiguous free chunk.
    pub first_free: u64,
}

/// VFS and misc kernel state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsState {
    locks: Vec<FileLock>,
    next_inode: u64,
    dentry_count: u64,
    dentry_unused: u64,
    inode_count: u64,
    inode_free: u64,
    file_handles: u64,
    file_handle_max: u64,
    ext4_groups: Vec<(String, Vec<MbGroup>)>,
    entropy_avail: u64,
    boot_id: String,
    uuid_counter: u64,
    elapsed_ns: u64,
    cum_syscalls: u64,
    system_lock_seq: u64,
}

impl FsState {
    /// Creates VFS state for the given disks, with a boot id drawn from
    /// the kernel's seeded RNG (unique per host — the paper's strongest
    /// uniqueness channel).
    pub fn new(disks: &[(String, u64)], rng: &mut StdRng) -> Self {
        let ext4_groups = disks
            .iter()
            .map(|(name, size)| {
                // One allocation group per 128 MiB, capped for rendering.
                let ngroups = ((size / (128 << 20)).clamp(8, 64)) as usize;
                let groups = (0..ngroups)
                    .map(|_| MbGroup {
                        free_blocks: rng.random_range(4_000..32_000),
                        fragments: rng.random_range(10..400),
                        first_free: rng.random_range(0..32_000),
                    })
                    .collect();
                (format!("{name}1"), groups)
            })
            .collect();
        FsState {
            locks: Vec::new(),
            next_inode: 131_072,
            dentry_count: 60_000,
            dentry_unused: 40_000,
            inode_count: 85_000,
            inode_free: 9_500,
            file_handles: 1_504,
            file_handle_max: 1_618_294,
            ext4_groups,
            entropy_avail: 3_200,
            boot_id: random_uuid(rng),
            uuid_counter: 0,
            elapsed_ns: 0,
            cum_syscalls: 0,
            system_lock_seq: 0,
        }
    }

    /// The host's boot id (`/proc/sys/kernel/random/boot_id`).
    pub fn boot_id(&self) -> &str {
        &self.boot_id
    }

    /// Rotates the boot id, as a kernel does on every (crash-)reboot.
    pub fn rotate_boot_id(&mut self, rng: &mut StdRng) {
        self.boot_id = random_uuid(rng);
    }

    /// A fresh UUID (`/proc/sys/kernel/random/uuid` changes per read).
    pub fn next_uuid(&mut self, rng: &mut StdRng) -> String {
        self.uuid_counter += 1;
        random_uuid(rng)
    }

    /// Current entropy estimate.
    pub fn entropy_avail(&self) -> u64 {
        self.entropy_avail
    }

    /// Current file locks.
    pub fn locks(&self) -> &[FileLock] {
        &self.locks
    }

    /// Takes a lock on behalf of `pid`, returning the dev:inode it landed
    /// on (deterministic per call order).
    pub fn add_lock(&mut self, pid: HostPid, kind: LockKind, range: (u64, u64)) -> String {
        self.next_inode += 1;
        let dev_inode = format!("08:01:{}", self.next_inode);
        self.locks.push(FileLock {
            pid,
            kind,
            dev_inode: dev_inode.clone(),
            range,
        });
        dev_inode
    }

    /// Drops all locks held by `pid` (process exit).
    pub fn drop_locks_of(&mut self, pid: HostPid) {
        self.locks.retain(|l| l.pid != pid);
    }

    /// `dentry-state`: (nr_dentry, nr_unused, age_limit, want_pages).
    pub fn dentry_state(&self) -> (u64, u64, u64, u64) {
        (self.dentry_count, self.dentry_unused, 45, 0)
    }

    /// `inode-nr`: (nr_inodes, nr_free_inodes).
    pub fn inode_nr(&self) -> (u64, u64) {
        (self.inode_count, self.inode_free)
    }

    /// `file-nr`: (allocated, free, max).
    pub fn file_nr(&self) -> (u64, u64, u64) {
        (self.file_handles, 0, self.file_handle_max)
    }

    /// ext4 partitions with their allocation groups.
    pub fn ext4_partitions(&self) -> &[(String, Vec<MbGroup>)] {
        &self.ext4_groups
    }

    /// One tick: caches churn with syscall/IO traffic, entropy refills
    /// from interrupt noise and drains from consumers.
    pub fn tick(
        &mut self,
        dt_ns: u64,
        nprocs: usize,
        syscalls: u64,
        io_bytes: u64,
        interrupts: u64,
        rng: &mut StdRng,
    ) {
        let dt_s = dt_ns as f64 / NANOS_PER_SEC as f64;
        self.elapsed_ns += dt_ns;
        self.cum_syscalls += syscalls;
        let elapsed_secs = self.elapsed_ns / NANOS_PER_SEC;

        // The first fields of dentry-state / inode-nr / file-nr behave as
        // slowly-growing allocation counters on a live system — which is
        // what makes them unique accumulating host identifiers in the
        // paper's Table II (U = filled). Their growth rate is activity
        // dependent (the indirect-manipulation channel); secondary fields
        // carry jitter.
        self.dentry_count =
            60_000 + elapsed_secs * 2 + self.cum_syscalls / 50 + io_bytes / (1 << 20);
        self.dentry_unused = self.dentry_count * 2 / 3 + rng.random_range(0..64);
        self.inode_count = 55_000 + self.dentry_count / 2;
        self.inode_free = 8_000 + rng.random_range(0..3_000);
        self.file_handles =
            1_504 + elapsed_secs / 3 + self.cum_syscalls / 1_000 + nprocs as u64 / 8;

        // A host daemon (cron/logrotate-style) cycles an advisory lock,
        // so /proc/locks varies over time on a live machine — the paper
        // marks the channel as both varying and implantable.
        if rng.random_range(0..3u32) == 0 {
            self.system_lock_seq += 1;
            let range = (
                self.system_lock_seq * 4096,
                self.system_lock_seq * 4096 + 4095,
            );
            match self.locks.iter_mut().find(|l| l.pid == HostPid(1)) {
                Some(l) => l.range = range,
                None => self.locks.insert(
                    0,
                    FileLock {
                        pid: HostPid(1),
                        kind: LockKind::PosixRead,
                        dev_inode: "08:01:2".into(),
                        range,
                    },
                ),
            }
        }

        // Entropy: interrupts feed, consumers drain.
        let feed = interrupts / 60 + rng.random_range(0..40);
        let drain = (dt_s * 25.0) as u64 + rng.random_range(0..50);
        self.entropy_avail = (self.entropy_avail + feed)
            .saturating_sub(drain)
            .clamp(160, 4_096);

        // ext4 groups churn with IO.
        if io_bytes > 0 {
            let churn = (io_bytes / (4 << 20)).clamp(1, 64);
            for (_, groups) in &mut self.ext4_groups {
                for _ in 0..churn {
                    let n = groups.len();
                    let idx = rng.random_range(0..n);
                    let g = &mut groups[idx];
                    let delta = rng.random_range(0..64) as i64 - 32;
                    g.free_blocks = g.free_blocks.saturating_add_signed(delta).max(16);
                    g.fragments = g.fragments.saturating_add_signed(delta / 8).max(1);
                }
            }
        }
    }

    /// Jump-evaluates VFS state to `rel_ns` past `anchor` with no process
    /// activity (zero syscalls and IO).
    ///
    /// Mirrors [`FsState::tick`] with the random terms dropped, written as
    /// a closed form of `(anchor, rel_ns)` so the kernel's quiescent path
    /// lands on the same bytes regardless of step size. `intr_delta` is
    /// the number of hardware interrupts accumulated over the whole span
    /// (they feed the entropy pool).
    pub fn idle_eval(&mut self, anchor: &FsState, rel_ns: u64, nprocs: usize, intr_delta: u64) {
        let rel_s = rel_ns as f64 / NANOS_PER_SEC as f64;
        self.elapsed_ns = anchor.elapsed_ns + rel_ns;
        self.cum_syscalls = anchor.cum_syscalls;
        let elapsed_secs = self.elapsed_ns / NANOS_PER_SEC;

        self.dentry_count = 60_000 + elapsed_secs * 2 + self.cum_syscalls / 50;
        self.dentry_unused = self.dentry_count * 2 / 3;
        self.inode_count = 55_000 + self.dentry_count / 2;
        self.inode_free = anchor.inode_free;
        self.file_handles =
            1_504 + elapsed_secs / 3 + self.cum_syscalls / 1_000 + nprocs as u64 / 8;

        // The host daemon cycles its advisory lock at the average
        // one-in-three-ticks rate: one step per three idle seconds.
        self.system_lock_seq = anchor.system_lock_seq + (rel_ns / NANOS_PER_SEC) / 3;
        if self.system_lock_seq != anchor.system_lock_seq {
            let range = (
                self.system_lock_seq * 4096,
                self.system_lock_seq * 4096 + 4095,
            );
            match self.locks.iter_mut().find(|l| l.pid == HostPid(1)) {
                Some(l) => l.range = range,
                None => self.locks.insert(
                    0,
                    FileLock {
                        pid: HostPid(1),
                        kind: LockKind::PosixRead,
                        dev_inode: "08:01:2".into(),
                        range,
                    },
                ),
            }
        }

        self.entropy_avail = (anchor.entropy_avail + intr_delta / 60)
            .saturating_sub((rel_s * 25.0) as u64)
            .clamp(160, 4_096);
    }
}

fn random_uuid(rng: &mut StdRng) -> String {
    let a: u32 = rng.random();
    let b: u16 = rng.random();
    let c: u16 = (rng.random::<u16>() & 0x0fff) | 0x4000;
    let d: u16 = (rng.random::<u16>() & 0x3fff) | 0x8000;
    let e: u64 = rng.random::<u64>() & 0xffff_ffff_ffff;
    format!("{a:08x}-{b:04x}-{c:04x}-{d:04x}-{e:012x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fs(seed: u64) -> FsState {
        let mut rng = StdRng::seed_from_u64(seed);
        FsState::new(&[("sda".into(), 512 << 30)], &mut rng)
    }

    #[test]
    fn boot_ids_differ_across_hosts() {
        assert_ne!(fs(1).boot_id(), fs(2).boot_id());
        // Same seed → same boot id (determinism).
        assert_eq!(fs(3).boot_id(), fs(3).boot_id());
    }

    #[test]
    fn boot_id_is_uuid_shaped() {
        let id = fs(1).boot_id().to_string();
        let parts: Vec<&str> = id.split('-').collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            vec![8, 4, 4, 4, 12]
        );
        assert!(parts[2].starts_with('4'), "not v4: {id}");
    }

    #[test]
    fn locks_roundtrip_and_drop_on_exit() {
        let mut f = fs(1);
        f.add_lock(HostPid(900), LockKind::FlockWrite, (0, u64::MAX));
        f.add_lock(HostPid(901), LockKind::PosixRead, (100, 200));
        assert_eq!(f.locks().len(), 2);
        f.drop_locks_of(HostPid(900));
        assert_eq!(f.locks().len(), 1);
        assert_eq!(f.locks()[0].pid, HostPid(901));
    }

    #[test]
    fn crafted_lock_range_is_visible() {
        // A tenant implants a signature via a distinctive byte range.
        let mut f = fs(1);
        f.add_lock(HostPid(900), LockKind::PosixWrite, (0xdead, 0xbeef));
        assert!(f.locks().iter().any(|l| l.range == (0xdead, 0xbeef)));
    }

    #[test]
    fn entropy_stays_in_bounds() {
        let mut f = fs(1);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            f.tick(NANOS_PER_SEC, 50, 100_000, 1 << 20, 500, &mut rng);
            assert!((160..=4096).contains(&f.entropy_avail()));
        }
    }

    #[test]
    fn vfs_counters_are_monotone_accumulators() {
        // Table II: dentry-state/inode-nr/file-nr rank in the uniqueness
        // group because their leading fields only grow.
        let mut f = fs(1);
        let mut rng = StdRng::seed_from_u64(10);
        let mut last = (0u64, 0u64, 0u64);
        for _ in 0..50 {
            f.tick(NANOS_PER_SEC, 10, 5_000, 1 << 20, 100, &mut rng);
            let cur = (f.dentry_state().0, f.inode_nr().0, f.file_nr().0);
            assert!(
                cur.0 >= last.0 && cur.1 >= last.1 && cur.2 >= last.2,
                "counters regressed: {last:?} -> {cur:?}"
            );
            last = cur;
        }
    }

    #[test]
    fn vfs_counter_growth_scales_with_activity() {
        let run = |syscalls: u64| {
            let mut f = fs(1);
            let mut rng = StdRng::seed_from_u64(10);
            let start = f.file_nr().0;
            for _ in 0..20 {
                f.tick(NANOS_PER_SEC, 10, syscalls, 0, 100, &mut rng);
            }
            f.file_nr().0 - start
        };
        assert!(run(50_000) > run(100) * 5, "load should accelerate growth");
    }

    #[test]
    fn ext4_groups_churn_under_io() {
        let mut f = fs(1);
        let mut rng = StdRng::seed_from_u64(11);
        let before: Vec<u64> = f.ext4_partitions()[0]
            .1
            .iter()
            .map(|g| g.free_blocks)
            .collect();
        for _ in 0..20 {
            f.tick(NANOS_PER_SEC, 10, 1_000, 64 << 20, 100, &mut rng);
        }
        let after: Vec<u64> = f.ext4_partitions()[0]
            .1
            .iter()
            .map(|g| g.free_blocks)
            .collect();
        assert_ne!(before, after);
    }

    #[test]
    fn uuid_changes_per_read_but_boot_id_does_not() {
        let mut f = fs(1);
        let mut rng = StdRng::seed_from_u64(12);
        let b0 = f.boot_id().to_string();
        let u1 = f.next_uuid(&mut rng);
        let u2 = f.next_uuid(&mut rng);
        assert_ne!(u1, u2);
        assert_eq!(f.boot_id(), b0);
    }
}
