//! Virtual time.

use serde::{Deserialize, Serialize};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// The kernel's virtual clock.
///
/// Tracks nanoseconds since boot plus a wall-clock base (seconds since the
/// Unix epoch at boot), so uptime-style and btime-style channels can both be
/// served. Time only moves forward via [`Clock::advance`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clock {
    since_boot_ns: u64,
    boot_wall_secs: u64,
}

impl Clock {
    /// Creates a clock whose boot instant is `boot_wall_secs` after the
    /// Unix epoch.
    pub fn new(boot_wall_secs: u64) -> Self {
        Clock {
            since_boot_ns: 0,
            boot_wall_secs,
        }
    }

    /// Nanoseconds elapsed since boot.
    pub fn since_boot_ns(&self) -> u64 {
        self.since_boot_ns
    }

    /// Whole seconds elapsed since boot.
    pub fn uptime_secs(&self) -> f64 {
        self.since_boot_ns as f64 / NANOS_PER_SEC as f64
    }

    /// Wall-clock seconds since the Unix epoch at boot (`btime`).
    pub fn boot_wall_secs(&self) -> u64 {
        self.boot_wall_secs
    }

    /// Current wall-clock seconds since the Unix epoch.
    pub fn wall_secs(&self) -> u64 {
        self.boot_wall_secs + self.since_boot_ns / NANOS_PER_SEC
    }

    /// Crash-reboots the clock: uptime restarts from zero and the boot
    /// instant (`btime`) advances to the current wall time plus
    /// `downtime_secs` of outage. Wall time never runs backwards.
    pub fn reboot(&mut self, downtime_secs: u64) {
        self.boot_wall_secs = self.wall_secs() + downtime_secs;
        self.since_boot_ns = 0;
    }

    /// Moves the clock forward by `dt_ns` nanoseconds.
    pub fn advance(&mut self, dt_ns: u64) {
        self.since_boot_ns = self
            .since_boot_ns
            .checked_add(dt_ns)
            .expect("virtual clock overflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new(1_480_000_000);
        assert_eq!(c.since_boot_ns(), 0);
        c.advance(NANOS_PER_SEC * 3 / 2);
        assert_eq!(c.since_boot_ns(), 1_500_000_000);
        assert!((c.uptime_secs() - 1.5).abs() < 1e-9);
        assert_eq!(c.wall_secs(), 1_480_000_001);
        assert_eq!(c.boot_wall_secs(), 1_480_000_000);
    }

    #[test]
    fn wall_secs_floors_subsecond() {
        let mut c = Clock::new(100);
        c.advance(999_999_999);
        assert_eq!(c.wall_secs(), 100);
        c.advance(1);
        assert_eq!(c.wall_secs(), 101);
    }
}
