//! The kernel: composition of every subsystem plus the tick loop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cgroup::{CgroupForest, CgroupId, CgroupKind};
use crate::config::MachineConfig;
use crate::epoch::{dep, CacheEntry, CachePayload, RenderCache, SubsystemEpochs};
use crate::error::KernelError;
use crate::faults::{FaultPlan, FsFaultKind, SensorFaultKind};
use crate::fsstate::{FsState, LockKind};
use crate::hw::{Hardware, PowerModelParams, PowerSnapshot, RaplDomains};
use crate::irq::IrqState;
use crate::mem::MemoryState;
use crate::net::NetState;
use crate::ns::{NamespaceRegistry, NamespaceSet};
use crate::perf::{PerfOverheadCosts, PerfSubsystem};
use crate::process::{CgroupMembership, HostPid, ProcState, Process, ProcessTable};
use crate::sched::{SchedScratch, Scheduler, TickReport};
use crate::syscost::SysCosts;
use crate::time::{Clock, NANOS_PER_SEC};
use crate::timers::TimerList;
use simtrace::TraceEvent;
use workloads::{PhaseCursor, WorkloadSpec};

/// Default simulation tick: 1 s (coarse enough for week-long traces, fine
/// enough for 1 Hz channel snapshots).
pub const DEFAULT_TICK_NS: u64 = NANOS_PER_SEC;

/// Process-wide default for event-horizon tick coalescing on newly built
/// kernels. On by default: a coalesced quiescent span is byte-identical to
/// the equivalent run of per-tick spans (the property tests assert this),
/// so there is no accuracy trade-off — only speed.
static COALESCING_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide coalescing default picked up by [`Kernel::new`].
/// Experiment binaries expose this as `--coalesce on|off` so CI can
/// byte-compare both modes; existing kernels are unaffected (use
/// [`Kernel::set_coalescing`]).
pub fn set_coalescing_default(on: bool) {
    COALESCING_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide coalescing default.
pub fn coalescing_default() -> bool {
    COALESCING_DEFAULT.load(Ordering::Relaxed)
}

/// Process-wide default for pseudofs render caching on newly built
/// kernels. On by default: a cached read serves bytes only while every
/// dependency epoch is unchanged, so cached and uncached runs are
/// byte-identical (the property tests and CI gates assert this) — like
/// coalescing, there is no accuracy trade-off, only speed.
static RENDER_CACHING_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide render-caching default picked up by
/// [`Kernel::new`]. Experiment binaries expose this as
/// `--render-cache on|off` so CI can byte-compare both modes; existing
/// kernels are unaffected (use [`Kernel::set_render_caching`]).
pub fn set_render_caching_default(on: bool) {
    RENDER_CACHING_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide render-caching default.
pub fn render_caching_default() -> bool {
    RENDER_CACHING_DEFAULT.load(Ordering::Relaxed)
}

/// Subsystems that evolve while the host is quiescent: the clock plus
/// every closed-form idle evaluation in [`Kernel::quiescent_step`]
/// (cgroup included — the anchor capture re-aggregates per-cgroup RSS),
/// and timers, whose expiries refresh against the advanced clock.
const IDLE_BUMP: u32 = dep::CLOCK
    | dep::SCHED
    | dep::HW
    | dep::IRQ
    | dep::MEM
    | dep::FS
    | dep::NET
    | dep::TIMERS
    | dep::CGROUP;

/// Subsystems a run tick can mutate: everything the idle set touches
/// plus the process table and the aggregate syscall/IO counters. The
/// namespace registry is the only subsystem no tick path writes.
const RUN_BUMP: u32 = IDLE_BUMP | dep::PROCESS | dep::STATS;

/// Outcome of a render-cache probe (see [`Kernel::render_cache_get`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderHit {
    /// Dependency epochs unchanged: the cached rendered bytes, shared —
    /// a hit is a refcount bump, the caller decides whether to copy.
    Fresh(std::sync::Arc<String>),
    /// The view's policy denies this path. Policy is hashed into the
    /// view fingerprint, so a deny verdict never goes stale.
    Denied,
    /// An entry exists but a dependency epoch advanced: the bytes are
    /// stale, yet the entry still proves the path is *not* denied for
    /// this view (a deny would have been cached as `Denied`).
    Stale,
}

/// Everything needed to run processes inside one container: its namespace
/// set, per-hierarchy cgroups, and the host-side veth interface its NET
/// namespace is wired to.
#[derive(Debug, Clone)]
pub struct ContainerEnv {
    /// The container's namespaces.
    pub ns: NamespaceSet,
    /// The container's cgroups (one per hierarchy).
    pub cgroups: CgroupMembership,
    /// Name of the host-side veth device created for this container.
    pub veth: String,
    /// The cgroup path component (`/docker/<name>`).
    pub cgroup_path: String,
}

/// Specification for spawning a process.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    name: String,
    workload: WorkloadSpec,
    ns: Option<NamespaceSet>,
    cgroups: Option<CgroupMembership>,
    affinity: Option<Vec<u16>>,
}

impl ProcessSpec {
    /// Creates a spec for a host process running `workload`.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec) -> Self {
        ProcessSpec {
            name: name.into(),
            workload,
            ns: None,
            cgroups: None,
            affinity: None,
        }
    }

    /// Places the process in the given namespaces (default: host set).
    pub fn namespaces(mut self, ns: NamespaceSet) -> Self {
        self.ns = Some(ns);
        self
    }

    /// Places the process in the given cgroups (default: hierarchy roots).
    pub fn cgroups(mut self, cg: CgroupMembership) -> Self {
        self.cgroups = Some(cg);
        self
    }

    /// Pins the process to the given CPUs (`taskset`).
    pub fn affinity(mut self, cpus: Vec<u16>) -> Self {
        self.affinity = Some(cpus);
        self
    }

    /// Places the process inside a container environment (namespaces and
    /// cgroups in one step).
    pub fn in_container(self, env: &ContainerEnv) -> Self {
        self.namespaces(env.ns).cgroups(env.cgroups)
    }
}

/// Aggregate counters exposed via `/proc/stat`-style channels.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Total syscalls issued since boot.
    pub total_syscalls: u64,
    /// Total block-IO bytes since boot.
    pub total_io_bytes: u64,
}

/// The simulated kernel.
#[derive(Debug)]
pub struct Kernel {
    cfg: MachineConfig,
    clock: Clock,
    rng: StdRng,
    seed: u64,
    ns: NamespaceRegistry,
    cgroups: CgroupForest,
    procs: ProcessTable,
    sched: Scheduler,
    hw: Hardware,
    mem: MemoryState,
    irq: IrqState,
    fs: FsState,
    net: NetState,
    timers: TimerList,
    perf: PerfSubsystem,
    stats: KernelStats,
    tick_ns: u64,
    syscost: SysCosts,
    docker_parents: HashMap<CgroupKind, CgroupId>,
    container_seq: u32,
    scratch: TickScratch,
    /// Nanoseconds of simulated lifetime; unlike the clock, this is
    /// monotone across crash-reboots and anchors fault-plan windows.
    lifetime_ns: u64,
    faults: Option<InstalledFaults>,
    reboots: u32,
    coalesce: bool,
    idle_anchor: Option<IdleAnchor>,
    /// Per-subsystem dirty epochs; bumped by every mutating entry point.
    epochs: SubsystemEpochs,
    /// Rendered pseudo-file cache guarded by the epochs above. Behind a
    /// mutex (not a `RefCell`) so `Kernel` stays `Sync` for the worker
    /// pool; contention is nil — readers hold `&Kernel` exclusively per
    /// host.
    render_cache: Mutex<RenderCache>,
    render_caching: bool,
    /// Trace-event buffer; `Some` only when tracing is enabled and this
    /// kernel was built inside a `simtrace::scope`.
    tracer: Option<simtrace::KernelTracer>,
}

/// A snapshot of the subsystem state at the instant a quiescent span
/// began. While no process is runnable, every subsystem evolves as a pure
/// closed-form function of (anchor, elapsed-since-anchor), so both the
/// coalesced and the per-tick advance evaluate the same functions at the
/// same final instant — that is what makes the two modes byte-identical.
/// Any mutation that ends quiescence (spawn, resume, lock, uuid read, …)
/// drops the anchor.
#[derive(Debug)]
struct IdleAnchor {
    since_boot_ns: u64,
    sched: Scheduler,
    hw: Hardware,
    mem: MemoryState,
    irq: IrqState,
    fs: FsState,
    net: NetState,
    rss_total: u64,
    nprocs: usize,
}

/// A fault plan plus the lifetime instant it was installed at; plan
/// windows are relative to that instant, so a plan built for a short
/// horizon works on a host already fast-forwarded through weeks of uptime.
#[derive(Debug)]
struct InstalledFaults {
    base_ns: u64,
    plan: FaultPlan,
}

/// Per-kernel buffers reused across ticks so the steady-state tick path
/// performs no heap allocation. Pure scratch: holds no simulation state
/// that outlives a tick except the memoized RSS aggregation below.
#[derive(Debug, Default)]
struct TickScratch {
    report: TickReport,
    sched: SchedScratch,
    by_cgroup: HashMap<CgroupId, u64>,
    /// Process-table epoch at the last RSS aggregation, if still valid.
    mem_epoch: Option<u64>,
    /// Total RSS from that aggregation.
    rss_total: u64,
}

impl Kernel {
    /// Boots a kernel on the given machine with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MachineConfig::validate`] — configurations
    /// are experiment-definition inputs, so this is a programming error.
    pub fn new(cfg: MachineConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_c0de_0001);
        let ncpus = cfg.cpus as usize;
        let ns = NamespaceRegistry::new(&cfg.hostname);
        let net = NetState::new();
        let cgroups = CgroupForest::new(ncpus, &net.device_names());
        let fs = FsState::new(&cfg.disks, &mut rng);
        let hw = Hardware::new(
            ncpus,
            cfg.packages as usize,
            cfg.freq_hz,
            cfg.has_rapl,
            cfg.has_coretemp,
            PowerModelParams::default(),
        );
        Kernel {
            clock: Clock::new(cfg.boot_wall_secs),
            sched: Scheduler::new(ncpus, cfg.freq_hz),
            mem: MemoryState::new(cfg.mem_bytes, cfg.swap_bytes, cfg.numa_nodes),
            irq: IrqState::new(ncpus, cfg.hz),
            timers: TimerList::new(),
            perf: PerfSubsystem::new(),
            procs: ProcessTable::new(),
            stats: KernelStats::default(),
            tick_ns: DEFAULT_TICK_NS,
            syscost: SysCosts::default(),
            docker_parents: HashMap::new(),
            container_seq: 0,
            scratch: TickScratch::default(),
            lifetime_ns: 0,
            faults: None,
            reboots: 0,
            coalesce: coalescing_default(),
            idle_anchor: None,
            epochs: SubsystemEpochs::default(),
            render_cache: Mutex::new(RenderCache::default()),
            render_caching: render_caching_default(),
            tracer: simtrace::tracer_for_new_kernel(),
            seed,
            cfg,
            rng,
            ns,
            cgroups,
            hw,
            fs,
            net,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }
    /// The seed this kernel booted with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
    /// The virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
    /// The namespace registry.
    pub fn namespaces(&self) -> &NamespaceRegistry {
        &self.ns
    }
    /// Mutable namespace registry (used by the container runtime).
    pub fn namespaces_mut(&mut self) -> &mut NamespaceRegistry {
        self.idle_anchor = None;
        self.bump_epochs(dep::NS);
        &mut self.ns
    }
    /// The cgroup forest.
    pub fn cgroups(&self) -> &CgroupForest {
        &self.cgroups
    }
    /// Mutable cgroup forest.
    pub fn cgroups_mut(&mut self) -> &mut CgroupForest {
        self.idle_anchor = None;
        self.bump_epochs(dep::CGROUP);
        &mut self.cgroups
    }
    /// The scheduler (accounting views).
    pub fn sched(&self) -> &Scheduler {
        &self.sched
    }
    /// Hardware state (RAPL, temps, cpuidle).
    pub fn hw(&self) -> &Hardware {
        &self.hw
    }
    /// RAPL counters.
    pub fn rapl(&self) -> &RaplDomains {
        self.hw.rapl()
    }
    /// Memory state.
    pub fn mem(&self) -> &MemoryState {
        &self.mem
    }
    /// Interrupt state.
    pub fn irq(&self) -> &IrqState {
        &self.irq
    }
    /// VFS state (locks, counters, entropy, boot id).
    pub fn fs(&self) -> &FsState {
        &self.fs
    }
    /// Mutable VFS state (uuid reads consume RNG).
    pub fn fs_mut(&mut self) -> (&mut FsState, &mut StdRng) {
        self.idle_anchor = None;
        self.bump_epochs(dep::FS);
        (&mut self.fs, &mut self.rng)
    }
    /// Network state.
    pub fn net(&self) -> &NetState {
        &self.net
    }
    /// Timer list.
    pub fn timers(&self) -> &TimerList {
        &self.timers
    }
    /// Perf-event subsystem.
    pub fn perf(&self) -> &PerfSubsystem {
        &self.perf
    }
    /// Kernel-operation cost table.
    pub fn syscost(&self) -> &SysCosts {
        &self.syscost
    }
    /// Aggregate counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }
    /// A process by host pid.
    pub fn process(&self, pid: HostPid) -> Option<&Process> {
        self.procs.get(pid)
    }
    /// All live processes, pid-ordered.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.procs.iter()
    }
    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }
    /// Most recently allocated pid.
    pub fn last_pid(&self) -> u32 {
        self.procs.last_pid()
    }
    /// Total forks since boot.
    pub fn total_forks(&self) -> u64 {
        self.procs.total_forks()
    }
    /// Power drawn over the last tick.
    pub fn last_power(&self) -> &PowerSnapshot {
        self.hw.last_power()
    }
    /// Wall power in watts over the last tick.
    pub fn wall_watts(&self) -> f64 {
        self.hw.last_power().wall_w
    }
    /// Boot id.
    pub fn boot_id(&self) -> &str {
        self.fs.boot_id()
    }
    /// Aggregate idle nanoseconds over all CPUs (`/proc/uptime` field 2).
    pub fn total_idle_ns(&self) -> u64 {
        self.sched.cpu_stats().iter().map(|c| c.idle_ns).sum()
    }
    /// This kernel's trace-event buffer, when tracing is active and the
    /// kernel was built inside a [`simtrace::scope`]. Consumers above the
    /// kernel (pseudo-fs, monitors) emit their events through this.
    pub fn tracer(&self) -> Option<&simtrace::KernelTracer> {
        self.tracer.as_ref()
    }

    // ------------------------------------------------------------------
    // Dirty epochs and the render cache
    // ------------------------------------------------------------------

    /// The per-subsystem dirty epochs.
    pub fn epochs(&self) -> &SubsystemEpochs {
        &self.epochs
    }

    /// Enables or disables the pseudofs render cache on this kernel.
    /// Both settings produce byte-identical reads; off is an escape
    /// hatch for bisecting and for the CI cached-vs-uncached compare.
    pub fn set_render_caching(&mut self, on: bool) {
        self.render_caching = on;
    }

    /// Whether the render cache is enabled on this kernel.
    pub fn render_caching(&self) -> bool {
        self.render_caching
    }

    /// Advances the epochs named in `mask`. Called by every mutating
    /// entry point; bump placement is mode-invariant (one bump per
    /// mutation or per `advance` call, never per tick), so epoch values
    /// are identical across `--jobs` and `--coalesce` settings.
    fn bump_epochs(&mut self, mask: u32) {
        self.epochs.bump(mask);
        // Mode-exempt: the fleet calendar's lazy fast-forward path folds
        // what the eager path spreads over many `advance` calls into one
        // covering call, so the *number* of bumps (unlike every epoch
        // comparison outcome) legitimately differs across stepping modes.
        simtrace::counters::add_exempt("kernel.epoch_bump", u64::from(mask.count_ones()));
    }

    /// Records a *live* masking-policy swap on a container view: evicts
    /// every render-cache entry keyed under the superseded view
    /// fingerprint and dirties the subsystem epochs in `deps` (the union
    /// of the dependency masks of every route whose mask treatment
    /// changed). The eviction alone would suffice for reads through the
    /// *new* fingerprint — policy is folded into the fingerprint — but
    /// the epoch bump closes the latent gap for consumers that memoized
    /// epoch sums *before* the swap: their next freshness check misses
    /// and re-renders, so the cache can never serve pre-mask bytes.
    pub fn note_policy_swap(&mut self, old_view_fp: u64, deps: u32) {
        self.render_cache_evict_view(old_view_fp);
        if deps != 0 {
            self.bump_epochs(deps & dep::ALL);
        }
        simtrace::counters::add("kernel.policy_swaps", 1);
    }

    /// Probes the render cache for `(view_fp, path)`. On [`RenderHit::Fresh`]
    /// the returned handle shares the cached bytes; on [`RenderHit::Denied`]
    /// the path is policy-denied for this view; on [`RenderHit::Stale`] an
    /// entry exists but a dependency epoch advanced — the bytes are stale,
    /// yet the path is known not to be denied. `None` when caching is off
    /// or nothing is cached.
    pub fn render_cache_get(&self, view_fp: u64, path: &str) -> Option<RenderHit> {
        if !self.render_caching {
            return None;
        }
        let cache = self.render_cache.lock().expect("render cache poisoned");
        let entry = cache.get(view_fp, path)?;
        match &entry.payload {
            CachePayload::Denied => Some(RenderHit::Denied),
            CachePayload::Bytes(bytes) => {
                if entry.dep_sum == self.epochs.masked_sum(entry.mask) {
                    Some(RenderHit::Fresh(std::sync::Arc::clone(bytes)))
                } else {
                    Some(RenderHit::Stale)
                }
            }
            CachePayload::Paths(_) => None,
        }
    }

    /// Caches rendered bytes for `(view_fp, path)` under dependency
    /// `mask`. No-op when caching is off.
    pub fn render_cache_store_bytes(
        &self,
        view_fp: u64,
        path: &str,
        mask: u32,
        bytes: &std::sync::Arc<String>,
    ) {
        if !self.render_caching {
            return;
        }
        let entry = CacheEntry {
            mask,
            dep_sum: self.epochs.masked_sum(mask),
            payload: CachePayload::Bytes(std::sync::Arc::clone(bytes)),
        };
        self.render_cache
            .lock()
            .expect("render cache poisoned")
            .store(view_fp, path, entry);
    }

    /// Caches a policy-deny verdict for `(view_fp, path)`. Deny entries
    /// carry an empty mask: the verdict depends only on the view's
    /// policy, which is part of the fingerprint. No-op when caching is
    /// off.
    pub fn render_cache_store_denied(&self, view_fp: u64, path: &str) {
        if !self.render_caching {
            return;
        }
        let entry = CacheEntry {
            mask: 0,
            dep_sum: 0,
            payload: CachePayload::Denied,
        };
        self.render_cache
            .lock()
            .expect("render cache poisoned")
            .store(view_fp, path, entry);
    }

    /// A fresh cached path list for `(view_fp, key)`, if any — a shared
    /// handle, so a hit is a refcount bump, not a deep clone. Stale list
    /// entries return `None` (they carry no deny information).
    pub fn render_cache_get_paths(
        &self,
        view_fp: u64,
        key: &str,
    ) -> Option<std::sync::Arc<Vec<String>>> {
        if !self.render_caching {
            return None;
        }
        let cache = self.render_cache.lock().expect("render cache poisoned");
        let entry = cache.get(view_fp, key)?;
        match &entry.payload {
            CachePayload::Paths(paths) if entry.dep_sum == self.epochs.masked_sum(entry.mask) => {
                Some(std::sync::Arc::clone(paths))
            }
            _ => None,
        }
    }

    /// Caches a path list for `(view_fp, key)` under dependency `mask`.
    /// No-op when caching is off.
    pub fn render_cache_store_paths(
        &self,
        view_fp: u64,
        key: &str,
        mask: u32,
        paths: &std::sync::Arc<Vec<String>>,
    ) {
        if !self.render_caching {
            return;
        }
        let entry = CacheEntry {
            mask,
            dep_sum: self.epochs.masked_sum(mask),
            payload: CachePayload::Paths(std::sync::Arc::clone(paths)),
        };
        self.render_cache
            .lock()
            .expect("render cache poisoned")
            .store(view_fp, key, entry);
    }

    /// Drops every render-cache entry stored under `view_fp`, returning
    /// the count removed. Container runtimes call this on removal: the
    /// dead container's fingerprint can never recur (fingerprints fold
    /// the monotone namespace/cgroup ids), so its entries would otherwise
    /// sit in the cache forever — unbounded growth under create/destroy
    /// churn. Purely an occupancy operation; rendered bytes are
    /// unaffected.
    pub fn render_cache_evict_view(&self, view_fp: u64) -> usize {
        let evicted = self
            .render_cache
            .lock()
            .expect("render cache poisoned")
            .evict_view(view_fp);
        if evicted > 0 {
            simtrace::counters::add("pseudofs.cache_evicted", evicted as u64);
        }
        evicted
    }

    /// Number of live render-cache entries (occupancy; tests and the
    /// churn driver's growth-bound assertions).
    pub fn render_cache_len(&self) -> usize {
        self.render_cache
            .lock()
            .expect("render cache poisoned")
            .len()
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs a fault plan. Plan windows are relative to *now*: the
    /// current lifetime instant becomes the plan's time origin.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.idle_anchor = None;
        if let Some(tr) = &self.tracer {
            tr.emit(
                self.lifetime_ns,
                TraceEvent::FaultsInstalled {
                    reboots: plan.reboot_count() as u32,
                },
            );
        }
        simtrace::counters::add("faults.plans_installed", 1);
        self.faults = Some(InstalledFaults {
            base_ns: self.lifetime_ns,
            plan,
        });
    }

    /// Removes any installed fault plan.
    pub fn clear_faults(&mut self) {
        self.idle_anchor = None;
        self.faults = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Nanoseconds of simulated lifetime (monotone across crash-reboots,
    /// unlike [`Clock::since_boot_ns`]).
    pub fn lifetime_ns(&self) -> u64 {
        self.lifetime_ns
    }

    /// Crash-reboots this kernel has gone through.
    pub fn reboot_count(&self) -> u32 {
        self.reboots
    }

    /// Whether any process is currently runnable. A runnable kernel must
    /// be stepped through every interval (its state is load-dependent);
    /// only quiescent kernels may be fast-forwarded lazily.
    pub fn has_runnable(&self) -> bool {
        self.procs.runnable() > 0
    }

    /// The earliest pending observable event, as an absolute lifetime
    /// instant strictly after now: the next fault-plan window edge, the
    /// next scheduled crash-reboot, or the next one-shot timer expiry.
    /// `None` when nothing is pending — a quiescent kernel with an empty
    /// horizon evolves in closed form indefinitely, which is what lets
    /// the fleet calendar skip it entirely between external operations.
    pub fn next_event_horizon_ns(&self) -> Option<u64> {
        let mut horizon: Option<u64> = None;
        let mut fold = |candidate: u64| {
            horizon = Some(horizon.map_or(candidate, |h: u64| h.min(candidate)));
        };
        if let Some(f) = &self.faults {
            let rel = self.lifetime_ns.saturating_sub(f.base_ns);
            if let Some(r) = f.plan.next_reboot_after(rel) {
                fold(f.base_ns + r);
            }
            if let Some(e) = f.plan.next_event_after(rel) {
                fold(f.base_ns + e);
            }
        }
        let now = self.clock.since_boot_ns();
        if let Some(e) = self.timers.next_event_after(now) {
            fold(self.lifetime_ns + (e - now));
        }
        horizon
    }

    /// The read fault currently active for `path`, per the installed
    /// plan. `None` when no plan is installed or no window covers now.
    pub fn read_fault(&self, path: &str) -> Option<FsFaultKind> {
        let f = self.faults.as_ref()?;
        f.plan
            .fs_fault(self.lifetime_ns.saturating_sub(f.base_ns), path)
    }

    /// The value-distorting sensor fault currently active for `path`
    /// (saturation / quantization jitter); dropout surfaces through
    /// [`Kernel::read_fault`] instead.
    pub fn sensor_fault(&self, path: &str) -> Option<SensorFaultKind> {
        let f = self.faults.as_ref()?;
        f.plan
            .sensor_transform(self.lifetime_ns.saturating_sub(f.base_ns), path)
    }

    /// The clock-skew offset currently applied to uptime reads, in
    /// nanoseconds (zero without an active skew window).
    pub fn uptime_skew_ns(&self) -> i64 {
        match &self.faults {
            Some(f) => f
                .plan
                .clock_skew_ns(self.lifetime_ns.saturating_sub(f.base_ns)),
            None => 0,
        }
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Sets the tick quantum (clamped to `[1 ms, 60 s]`).
    pub fn set_tick_ns(&mut self, tick_ns: u64) {
        self.tick_ns = tick_ns.clamp(1_000_000, 60 * NANOS_PER_SEC);
    }

    /// Enables or disables event-horizon coalescing on this kernel.
    /// Both settings produce byte-identical state; off is an escape hatch
    /// for bisecting and for the CI cross-mode compare.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Whether event-horizon coalescing is enabled on this kernel.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// Advances virtual time by `dt_ns`. While at least one process is
    /// runnable the classic fixed-quantum tick loop runs; while the host
    /// is quiescent (no runnable process) time moves in closed form along
    /// idle-anchor spans — one span per event horizon when coalescing
    /// is on, one per tick quantum when off, with identical results.
    pub fn advance(&mut self, mut dt_ns: u64) {
        // Tick-shape accounting is accumulated locally (cheap u64 adds)
        // and published in one batch after the loop, so tracing costs a
        // single `enabled()` check per advance call, not per tick.
        let mut run_ns = 0u64;
        let mut run_ticks = 0u64;
        let mut switches = 0u64;
        let mut idle_ns = 0u64;
        let mut spans = 0u64;
        let mut stepped = 0u64;
        while dt_ns > 0 {
            if self.procs.runnable() == 0 {
                let step = self.quiescent_step_size(dt_ns, self.coalesce);
                if step > self.tick_ns {
                    // A multi-tick jump to the event horizon; exists only
                    // with coalescing on, so both the count and the event
                    // are mode-exempt.
                    spans += 1;
                    if let Some(tr) = &self.tracer {
                        tr.emit(
                            self.lifetime_ns,
                            TraceEvent::CoalescedSpan {
                                from_ns: self.lifetime_ns,
                                to_ns: self.lifetime_ns + step,
                            },
                        );
                    }
                } else {
                    stepped += 1;
                }
                self.quiescent_step(step);
                idle_ns += step;
                dt_ns -= step;
            } else {
                self.idle_anchor = None;
                let step = dt_ns.min(self.tick_ns);
                self.tick_once(step);
                run_ns += step;
                run_ticks += 1;
                switches += self.scratch.report.switches;
                dt_ns -= step;
            }
        }
        // One bump per advance call — not per tick or span — keyed on the
        // *shape* of the elapsed interval (any run time / any idle time),
        // which is identical across coalescing modes and worker counts.
        // Sound because reads hold `&Kernel` and cannot interleave with
        // this `&mut self` method.
        if run_ticks > 0 {
            self.bump_epochs(RUN_BUMP);
        }
        if idle_ns > 0 {
            self.bump_epochs(IDLE_BUMP);
        }
        if simtrace::enabled() {
            if run_ticks > 0 {
                simtrace::counters::add("kernel.run_ticks", run_ticks);
                simtrace::counters::add("sched.switches", switches);
                simtrace::profile::record("run", run_ns, switches);
            }
            if idle_ns > 0 {
                simtrace::counters::add("kernel.quiescent_ns", idle_ns);
                simtrace::profile::record("idle", idle_ns, 0);
            }
            if spans > 0 {
                simtrace::counters::add_exempt("kernel.quiescent_spans", spans);
            }
            if stepped > 0 {
                simtrace::counters::add_exempt("kernel.quiescent_stepped_ticks", stepped);
            }
        }
    }

    /// Advances by whole seconds.
    pub fn advance_secs(&mut self, secs: u64) {
        self.advance(secs * NANOS_PER_SEC);
    }

    /// Fast-forwards an idle machine through `secs` seconds in closed
    /// form: the quiescent-span machinery with coalescing forced on, so
    /// days of uptime cost a handful of span evaluations. Used to give
    /// fleet hosts realistic, distinct uptimes (days to months) without
    /// simulating every second. Only meaningful right after boot, before
    /// processes are spawned.
    ///
    /// # Panics
    ///
    /// Panics if processes are already running — fast-forward is a boot
    /// time convenience, not a scheduler bypass.
    pub fn fast_forward_boot(&mut self, secs: u64) {
        assert!(
            self.procs.is_empty(),
            "fast_forward_boot only valid on an idle machine"
        );
        let mut remaining = secs * NANOS_PER_SEC;
        while remaining > 0 {
            let step = self.quiescent_step_size(remaining, true);
            self.quiescent_step(step);
            remaining -= step;
        }
        if secs > 0 {
            self.bump_epochs(IDLE_BUMP);
        }
        if simtrace::enabled() && secs > 0 {
            // Pre-experiment uptime; always coalesced, so mode-invariant.
            simtrace::counters::add("kernel.fastforward_ns", secs * NANOS_PER_SEC);
            simtrace::profile::record("idle", secs * NANOS_PER_SEC, 0);
        }
    }

    /// How far the next quiescent span may run: the remaining budget,
    /// capped at the event horizon. A scheduled crash-reboot caps the span
    /// in *both* modes (the reboot must fire at its exact instant); with
    /// coalescing off the tick quantum caps it too; with coalescing on the
    /// horizon is the earliest of the next one-shot timer expiry and the
    /// next fault-plan event. Periodic timers never cap a span — their
    /// re-arming is phase-preserving at any later instant.
    fn quiescent_step_size(&self, remaining_ns: u64, coalesce: bool) -> u64 {
        let mut step = if coalesce {
            remaining_ns
        } else {
            remaining_ns.min(self.tick_ns)
        };
        if let Some(f) = &self.faults {
            let rel = self.lifetime_ns.saturating_sub(f.base_ns);
            if let Some(r) = f.plan.next_reboot_after(rel) {
                step = step.min(r - rel);
            }
            if coalesce {
                if let Some(e) = f.plan.next_event_after(rel) {
                    step = step.min(e - rel);
                }
            }
        }
        if coalesce {
            let now = self.clock.since_boot_ns();
            if let Some(e) = self.timers.next_event_after(now) {
                step = step.min(e - now);
            }
        }
        step.max(1)
    }

    /// One quiescent span: every subsystem jumps to its closed-form state
    /// at `anchor + rel`, where `rel` is the total quiescent time since
    /// the anchor was captured. No RNG is drawn — idle evolution is
    /// deterministic by construction, which is what keeps arbitrary span
    /// subdivisions byte-identical.
    fn quiescent_step(&mut self, step_ns: u64) {
        let anchor = match self.idle_anchor.take() {
            Some(a) => a,
            None => {
                self.refresh_rss_memo();
                IdleAnchor {
                    since_boot_ns: self.clock.since_boot_ns(),
                    sched: self.sched.clone(),
                    hw: self.hw.clone(),
                    mem: self.mem.clone(),
                    irq: self.irq.clone(),
                    fs: self.fs.clone(),
                    net: self.net.clone(),
                    rss_total: self.scratch.rss_total,
                    nprocs: self.procs.len(),
                }
            }
        };
        self.clock.advance(step_ns);
        let before = self.lifetime_ns;
        self.lifetime_ns += step_ns;
        let rel_ns = self.clock.since_boot_ns() - anchor.since_boot_ns;

        self.sched.idle_eval(&anchor.sched, rel_ns);
        self.hw.idle_eval(&anchor.hw, rel_ns);
        self.irq.idle_eval(&anchor.irq, rel_ns);
        let intr_delta = self.irq.total_interrupts() - anchor.irq.total_interrupts();
        self.mem.idle_eval(&anchor.mem, rel_ns, anchor.rss_total);
        self.fs
            .idle_eval(&anchor.fs, rel_ns, anchor.nprocs, intr_delta);
        self.net.idle_eval(&anchor.net, rel_ns);
        self.timers.refresh(self.clock.since_boot_ns());

        let reboot_due = self.faults.as_ref().is_some_and(|f| {
            f.plan.reboot_in(
                before.saturating_sub(f.base_ns),
                self.lifetime_ns.saturating_sub(f.base_ns),
            )
        });
        if reboot_due {
            self.crash_reboot();
        } else {
            self.idle_anchor = Some(anchor);
        }
    }

    /// Re-aggregates per-cgroup and total RSS if the process table changed
    /// since the last aggregation (see the memo note in [`Kernel::tick_once`]).
    fn refresh_rss_memo(&mut self) {
        let epoch = self.procs.epoch();
        if self.scratch.mem_epoch == Some(epoch) {
            return;
        }
        let by_cgroup = &mut self.scratch.by_cgroup;
        by_cgroup.clear();
        let mut rss_total = 0u64;
        for p in self.procs.iter() {
            if p.state() != ProcState::Exited {
                let rss = p.rss_bytes();
                rss_total += rss;
                *by_cgroup.entry(p.cgroups().memory).or_insert(0) += rss;
            }
        }
        for (cg, bytes) in self.scratch.by_cgroup.iter() {
            self.cgroups.set_memory_usage(*cg, *bytes);
        }
        let mem_root = self.cgroups.root(CgroupKind::Memory);
        self.cgroups.set_memory_usage(mem_root, rss_total);
        self.scratch.rss_total = rss_total;
        self.scratch.mem_epoch = Some(epoch);
    }

    fn tick_once(&mut self, dt_ns: u64) {
        self.sched.tick_into(
            dt_ns,
            &mut self.procs,
            &mut self.cgroups,
            &mut self.rng,
            &mut self.scratch.sched,
            &mut self.scratch.report,
        );
        let report = &self.scratch.report;

        self.hw.tick(dt_ns, &report.per_cpu, &mut self.rng);

        let mut syscalls = 0u64;
        let mut io_bytes = 0u64;
        for c in &report.per_cpu {
            syscalls += c.syscalls;
            io_bytes += c.io_bytes;
        }
        self.stats.total_syscalls += syscalls;
        self.stats.total_io_bytes += io_bytes;

        // Memory: per-cgroup RSS sums and the global total. The pass is
        // memoized on the process-table epoch: when nothing was spawned,
        // killed, or mutated since the last aggregation and nothing is
        // runnable (so no workload cursor moved), every per-process RSS is
        // unchanged and the cgroup usages already hold the right values.
        if self.procs.runnable() > 0 {
            self.scratch.mem_epoch = None;
        }
        self.refresh_rss_memo();
        self.mem
            .tick(dt_ns, self.scratch.rss_total, io_bytes, &mut self.rng);

        let report = &self.scratch.report;
        let intr_before = self.irq.total_interrupts();
        self.irq
            .tick(dt_ns, &report.per_cpu, report.switches, &mut self.rng);
        let intr_delta = self.irq.total_interrupts() - intr_before;

        self.fs.tick(
            dt_ns,
            self.procs.len(),
            syscalls,
            io_bytes,
            intr_delta,
            &mut self.rng,
        );
        self.net.tick(dt_ns, syscalls, &mut self.rng);

        self.clock.advance(dt_ns);
        self.timers.refresh(self.clock.since_boot_ns());

        let mut exited = std::mem::take(&mut self.scratch.report.exited);
        for pid in exited.drain(..) {
            self.cleanup_process(pid);
        }
        self.scratch.report.exited = exited;

        let before = self.lifetime_ns;
        self.lifetime_ns += dt_ns;
        let reboot_due = self.faults.as_ref().is_some_and(|f| {
            f.plan.reboot_in(
                before.saturating_sub(f.base_ns),
                self.lifetime_ns.saturating_sub(f.base_ns),
            )
        });
        if reboot_due {
            self.crash_reboot();
        }
    }

    /// A crash-reboot: uptime restarts, the boot id rotates, and the
    /// monotone hardware counters (RAPL energy, cpuidle residency) zero.
    /// Processes survive — the model is a fast kernel restart with service
    /// supervision restoring the workload within the downtime window, so
    /// detectors observing the host see exactly the counter discontinuities
    /// a real crash-reboot produces.
    fn crash_reboot(&mut self) {
        const DOWNTIME_SECS: u64 = 2;
        self.clock.reboot(DOWNTIME_SECS);
        self.fs.rotate_boot_id(&mut self.rng);
        self.hw.reset_monotone_counters();
        self.reboots += 1;
        if let Some(tr) = &self.tracer {
            tr.emit(self.lifetime_ns, TraceEvent::Reboot { boot: self.reboots });
        }
        simtrace::counters::add("faults.reboots", 1);
        simtrace::profile::record("reboot", DOWNTIME_SECS * NANOS_PER_SEC, 1);
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Spawns a process per `spec`.
    ///
    /// # Errors
    ///
    /// * [`KernelError::OutOfMemory`] if the workload's initial footprint
    ///   does not fit.
    /// * [`KernelError::NoSuchCpu`] for affinity outside the topology.
    /// * Namespace errors if the spec's PID namespace is invalid.
    pub fn spawn(&mut self, spec: ProcessSpec) -> Result<HostPid, KernelError> {
        let rss = spec.workload.phases()[0].mem_bytes;
        if !self.mem.can_admit(rss) {
            return Err(KernelError::OutOfMemory {
                requested: rss,
                available: self.mem.available_bytes(),
            });
        }
        if let Some(cpus) = &spec.affinity {
            for c in cpus {
                if *c >= self.cfg.cpus {
                    return Err(KernelError::NoSuchCpu(*c));
                }
            }
        }
        let ns = spec.ns.unwrap_or_else(|| self.ns.host_set());
        let cgroups = spec.cgroups.unwrap_or(CgroupMembership {
            cpuacct: self.cgroups.root(CgroupKind::Cpuacct),
            perf_event: self.cgroups.root(CgroupKind::PerfEvent),
            net_prio: self.cgroups.root(CgroupKind::NetPrio),
            memory: self.cgroups.root(CgroupKind::Memory),
        });
        self.idle_anchor = None;
        let host_pid = self.procs.allocate_pid();
        let ns_pid = self.ns.allocate_pid(ns.pid, host_pid)?;
        if let Some(tr) = &self.tracer {
            tr.emit(
                self.lifetime_ns,
                TraceEvent::SchedSpawn {
                    pid: host_pid.0,
                    comm: spec.name.clone(),
                },
            );
        }
        simtrace::counters::add("sched.spawns", 1);
        self.timers
            .arm_sched_timer(host_pid, &spec.name, self.clock.since_boot_ns());
        self.procs.insert(Process {
            host_pid,
            name: spec.name,
            ns,
            ns_pid,
            cgroups,
            workload: spec.workload,
            cursor: PhaseCursor::new(),
            affinity: spec.affinity,
            state: ProcState::Runnable,
            start_ns: self.clock.since_boot_ns(),
            utime_ns: 0,
            stime_ns: 0,
            vruntime_ns: 0,
            counters: Default::default(),
            last_cpu: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            syscalls: 0,
        });
        self.bump_epochs(dep::PROCESS | dep::NS | dep::TIMERS);
        Ok(host_pid)
    }

    /// Spawns a host-namespace process (convenience).
    ///
    /// # Errors
    ///
    /// See [`Kernel::spawn`].
    pub fn spawn_host_process(
        &mut self,
        name: &str,
        workload: WorkloadSpec,
    ) -> Result<HostPid, KernelError> {
        self.spawn(ProcessSpec::new(name, workload))
    }

    /// Kills a process, releasing pids, locks and timers.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] if `pid` is not live.
    pub fn kill(&mut self, pid: HostPid) -> Result<(), KernelError> {
        if self.procs.get(pid).is_none() {
            return Err(KernelError::NoSuchProcess(pid));
        }
        self.cleanup_process(pid);
        Ok(())
    }

    fn cleanup_process(&mut self, pid: HostPid) {
        self.idle_anchor = None;
        if let Some(p) = self.procs.remove(pid) {
            self.ns.release_pid(p.ns.pid, pid);
            if let Some(tr) = &self.tracer {
                tr.emit(self.lifetime_ns, TraceEvent::SchedExit { pid: pid.0 });
            }
            simtrace::counters::add("sched.exits", 1);
        }
        self.fs.drop_locks_of(pid);
        self.timers.drop_timers_of(pid);
        self.bump_epochs(dep::PROCESS | dep::NS | dep::FS | dep::TIMERS);
    }

    /// Changes a process's CPU affinity (`taskset`).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] / [`KernelError::NoSuchCpu`].
    pub fn set_affinity(&mut self, pid: HostPid, cpus: Vec<u16>) -> Result<(), KernelError> {
        for c in &cpus {
            if *c >= self.cfg.cpus {
                return Err(KernelError::NoSuchCpu(*c));
            }
        }
        self.idle_anchor = None;
        match self.procs.get_mut(pid) {
            Some(p) => {
                p.affinity = Some(cpus);
                self.bump_epochs(dep::PROCESS);
                Ok(())
            }
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    /// Pauses (SIGSTOP) a process.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn pause(&mut self, pid: HostPid) -> Result<(), KernelError> {
        self.idle_anchor = None;
        match self.procs.get_mut(pid) {
            Some(p) => {
                p.state = ProcState::Sleeping;
                if let Some(tr) = &self.tracer {
                    tr.emit(self.lifetime_ns, TraceEvent::SchedPause { pid: pid.0 });
                }
                simtrace::counters::add("sched.pauses", 1);
                self.bump_epochs(dep::PROCESS | dep::SCHED);
                Ok(())
            }
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    /// Resumes (SIGCONT) a paused process.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn resume(&mut self, pid: HostPid) -> Result<(), KernelError> {
        self.idle_anchor = None;
        match self.procs.get_mut(pid) {
            Some(p) => {
                if p.state == ProcState::Sleeping {
                    p.state = ProcState::Runnable;
                    if let Some(tr) = &self.tracer {
                        tr.emit(self.lifetime_ns, TraceEvent::SchedResume { pid: pid.0 });
                    }
                    simtrace::counters::add("sched.resumes", 1);
                    self.bump_epochs(dep::PROCESS | dep::SCHED);
                }
                Ok(())
            }
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    /// Swaps the workload of a live process (attack phase changes).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn set_workload(
        &mut self,
        pid: HostPid,
        workload: WorkloadSpec,
    ) -> Result<(), KernelError> {
        self.idle_anchor = None;
        match self.procs.get_mut(pid) {
            Some(p) => {
                p.workload = workload;
                p.cursor = PhaseCursor::new();
                self.bump_epochs(dep::PROCESS);
                Ok(())
            }
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    /// Retargets the CPU demand of a live process's workload in place,
    /// without replacing the spec or resetting its phase cursor — the
    /// cheap path fleet drivers use to follow a utilization trace across
    /// thousands of simulated intervals.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn set_workload_demand(&mut self, pid: HostPid, demand: f64) -> Result<(), KernelError> {
        self.idle_anchor = None;
        match self.procs.get_mut(pid) {
            Some(p) => {
                p.workload.set_uniform_cpu_demand(demand);
                self.bump_epochs(dep::PROCESS);
                Ok(())
            }
            None => Err(KernelError::NoSuchProcess(pid)),
        }
    }

    // ------------------------------------------------------------------
    // Containers
    // ------------------------------------------------------------------

    /// Creates the kernel-side environment for a container: a fresh
    /// namespace set, one cgroup per hierarchy under `/docker/<name>`, and
    /// a host-side veth device.
    ///
    /// # Errors
    ///
    /// Propagates cgroup-creation failures.
    pub fn create_container_env(&mut self, name: &str) -> Result<ContainerEnv, KernelError> {
        self.idle_anchor = None;
        self.container_seq += 1;
        let uid_base = 100_000 + self.container_seq * 65_536;
        let cgroup_path = format!("/docker/{name}");
        let ns = self
            .ns
            .create_container_set(name, &cgroup_path, (0, uid_base, 65_536));

        let veth = self.net.create_veth(&mut self.rng);
        self.cgroups.register_host_iface(&veth);
        let ifaces = self.net.device_names();

        let mut ids = HashMap::new();
        for kind in CgroupKind::ALL {
            let parent = match self.docker_parents.get(&kind) {
                Some(p) => *p,
                None => {
                    let root = self.cgroups.root(kind);
                    let p = self.cgroups.create_child(root, "docker", &ifaces)?;
                    self.docker_parents.insert(kind, p);
                    p
                }
            };
            let id = self.cgroups.create_child(parent, name, &ifaces)?;
            ids.insert(kind, id);
        }
        self.bump_epochs(dep::NS | dep::NET | dep::CGROUP);
        Ok(ContainerEnv {
            ns,
            cgroups: CgroupMembership {
                cpuacct: ids[&CgroupKind::Cpuacct],
                perf_event: ids[&CgroupKind::PerfEvent],
                net_prio: ids[&CgroupKind::NetPrio],
                memory: ids[&CgroupKind::Memory],
            },
            veth,
            cgroup_path,
        })
    }

    /// Tears down a container environment: kills remaining member
    /// processes, removes its cgroups and veth device.
    ///
    /// # Errors
    ///
    /// Propagates cgroup-removal failures.
    pub fn destroy_container_env(&mut self, env: &ContainerEnv) -> Result<(), KernelError> {
        self.idle_anchor = None;
        let members: Vec<HostPid> = self
            .procs
            .iter()
            .filter(|p| p.ns == env.ns)
            .map(|p| p.host_pid)
            .collect();
        for pid in members {
            self.cleanup_process(pid);
        }
        let _ = self
            .perf
            .detach_cgroup(&mut self.cgroups, env.cgroups.perf_event);
        for id in [
            env.cgroups.cpuacct,
            env.cgroups.perf_event,
            env.cgroups.net_prio,
            env.cgroups.memory,
        ] {
            self.cgroups.remove(id)?;
        }
        self.net.remove_device(&env.veth);
        // Teardown must also unwind what creation registered elsewhere:
        // the veth's per-cgroup net_prio entries (a name-colliding future
        // veth must start at priority 0, not resurrect this one's) and
        // the seven namespaces (the registry would otherwise grow without
        // bound under container churn).
        self.cgroups.unregister_host_iface(&env.veth);
        self.ns.remove_container_set(&env.ns);
        self.bump_epochs(dep::NS | dep::NET | dep::CGROUP);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Manipulation primitives (what a tenant can do from user space)
    // ------------------------------------------------------------------

    /// Arms a user timer with an attacker-chosen comm (timer_list
    /// signature implantation).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn add_user_timer(
        &mut self,
        pid: HostPid,
        comm: &str,
        interval_ns: u64,
    ) -> Result<(), KernelError> {
        if self.procs.get(pid).is_none() {
            return Err(KernelError::NoSuchProcess(pid));
        }
        self.idle_anchor = None;
        if let Some(tr) = &self.tracer {
            tr.emit(
                self.lifetime_ns,
                TraceEvent::TimerArmed {
                    pid: pid.0,
                    comm: comm.to_string(),
                },
            );
        }
        self.timers
            .arm_user_timer(pid, comm, self.clock.since_boot_ns(), interval_ns.max(1));
        self.bump_epochs(dep::TIMERS);
        Ok(())
    }

    /// Takes a file lock on behalf of `pid` (locks signature implantation).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn flock(
        &mut self,
        pid: HostPid,
        kind: LockKind,
        range: (u64, u64),
    ) -> Result<String, KernelError> {
        if self.procs.get(pid).is_none() {
            return Err(KernelError::NoSuchProcess(pid));
        }
        self.idle_anchor = None;
        self.bump_epochs(dep::FS);
        Ok(self.fs.add_lock(pid, kind, range))
    }

    /// Enables power-namespace-style perf monitoring on a container's
    /// perf_event cgroup.
    ///
    /// # Errors
    ///
    /// Propagates cgroup errors.
    pub fn attach_perf_monitoring(&mut self, cgroup: CgroupId) -> Result<(), KernelError> {
        self.idle_anchor = None;
        self.bump_epochs(dep::CGROUP);
        let ncpus = self.cfg.cpus;
        self.perf.attach_cgroup(
            &mut self.cgroups,
            cgroup,
            ncpus,
            PerfOverheadCosts::default(),
        )
    }

    /// Disables perf monitoring on a cgroup.
    ///
    /// # Errors
    ///
    /// Propagates cgroup errors.
    pub fn detach_perf_monitoring(&mut self, cgroup: CgroupId) -> Result<(), KernelError> {
        self.idle_anchor = None;
        self.bump_epochs(dep::CGROUP);
        self.perf.detach_cgroup(&mut self.cgroups, cgroup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::models;

    fn kernel() -> Kernel {
        Kernel::new(MachineConfig::small_server(), 1)
    }

    #[test]
    fn boot_and_idle_advance() {
        let mut k = kernel();
        k.advance_secs(10);
        assert!((k.clock().uptime_secs() - 10.0).abs() < 1e-9);
        assert!(k.total_idle_ns() > 9 * NANOS_PER_SEC);
        assert!(k.wall_watts() > 30.0);
    }

    #[test]
    fn spawn_runs_and_consumes_power() {
        let mut k = kernel();
        k.advance_secs(2);
        let idle_w = k.wall_watts();
        let pid = k.spawn_host_process("prime", models::prime()).unwrap();
        k.advance_secs(5);
        assert!(k.wall_watts() > idle_w + 3.0);
        let p = k.process(pid).unwrap();
        assert!(p.cpu_time_ns() > 4 * NANOS_PER_SEC);
        assert!(p.counters().instructions > 0);
    }

    #[test]
    fn spawn_rejects_oversized_workload() {
        let mut k = kernel();
        let w = workloads::WorkloadSpec::new(
            "huge",
            workloads::WorkloadClass::MemoryBound,
            vec![workloads::Phase {
                mem_bytes: 1 << 40,
                ..workloads::Phase::quiescent(NANOS_PER_SEC)
            }],
            workloads::Repeat::Forever,
        );
        assert!(matches!(
            k.spawn_host_process("huge", w),
            Err(KernelError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn spawn_rejects_bad_affinity() {
        let mut k = kernel();
        let spec = ProcessSpec::new("x", models::prime()).affinity(vec![99]);
        assert!(matches!(k.spawn(spec), Err(KernelError::NoSuchCpu(99))));
    }

    #[test]
    fn kill_cleans_up_locks_timers_pids() {
        let mut k = kernel();
        let pid = k.spawn_host_process("victim", models::prime()).unwrap();
        k.add_user_timer(pid, "sig-123", NANOS_PER_SEC).unwrap();
        k.flock(pid, LockKind::FlockWrite, (0, 100)).unwrap();
        assert!(k.timers().contains_comm("sig-123"));
        assert_eq!(k.fs().locks().len(), 1);
        k.kill(pid).unwrap();
        assert!(k.process(pid).is_none());
        assert!(!k.timers().contains_comm("sig-123"));
        assert!(k.fs().locks().is_empty());
        assert!(matches!(k.kill(pid), Err(KernelError::NoSuchProcess(_))));
    }

    #[test]
    fn container_env_has_fresh_namespaces_and_cgroups() {
        let mut k = kernel();
        let env = k.create_container_env("c1").unwrap();
        assert_ne!(env.ns.pid, k.namespaces().host_set().pid);
        let node = k.cgroups().node(env.cgroups.cpuacct).unwrap();
        assert_eq!(node.path(), "/docker/c1");
        assert!(k.net().device_names().contains(&env.veth));

        // Container process gets pid 1 inside.
        let pid = k
            .spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        assert_eq!(k.process(pid).unwrap().ns_pid(), 1);
    }

    #[test]
    fn destroy_container_env_reaps_everything() {
        let mut k = kernel();
        let env = k.create_container_env("c1").unwrap();
        let pid = k
            .spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(1);
        k.destroy_container_env(&env).unwrap();
        assert!(k.process(pid).is_none());
        assert!(k.cgroups().node(env.cgroups.cpuacct).is_none());
        assert!(!k.net().device_names().contains(&env.veth));
    }

    #[test]
    fn container_cpuacct_accumulates_only_its_work() {
        let mut k = kernel();
        let env1 = k.create_container_env("c1").unwrap();
        let env2 = k.create_container_env("c2").unwrap();
        k.spawn(ProcessSpec::new("busy", models::prime()).in_container(&env1))
            .unwrap();
        k.advance_secs(3);
        let u1 = k.cgroups().cpuacct_usage_ns(env1.cgroups.cpuacct).unwrap();
        let u2 = k.cgroups().cpuacct_usage_ns(env2.cgroups.cpuacct).unwrap();
        assert!(u1 > 2 * NANOS_PER_SEC);
        assert_eq!(u2, 0);
    }

    #[test]
    fn pause_and_resume_control_cpu_use() {
        let mut k = kernel();
        let pid = k.spawn_host_process("p", models::prime()).unwrap();
        k.advance_secs(1);
        let t1 = k.process(pid).unwrap().cpu_time_ns();
        k.pause(pid).unwrap();
        k.advance_secs(2);
        let t2 = k.process(pid).unwrap().cpu_time_ns();
        assert_eq!(t1, t2);
        k.resume(pid).unwrap();
        k.advance_secs(1);
        assert!(k.process(pid).unwrap().cpu_time_ns() > t2);
    }

    #[test]
    fn determinism_same_seed_same_evolution() {
        let run = |seed: u64| {
            let mut k = Kernel::new(MachineConfig::small_server(), seed);
            k.spawn_host_process("w", models::stress_vm()).unwrap();
            k.advance_secs(10);
            (
                k.rapl().package_energy_uj(0),
                k.mem().free_bytes(),
                k.boot_id().to_string(),
                k.sched().total_switches(),
            )
        };
        assert_eq!(run(7), run(7));
        let (e1, _, b1, _) = run(7);
        let (e2, _, b2, _) = run(8);
        assert_ne!(b1, b2, "boot ids must differ across hosts");
        assert_ne!(e1, e2, "energy trajectories should differ across hosts");
    }

    #[test]
    fn set_workload_switches_behaviour() {
        let mut k = kernel();
        let pid = k
            .spawn_host_process("morph", models::web_service(0.05))
            .unwrap();
        k.advance_secs(2);
        let low_w = k.wall_watts();
        k.set_workload(pid, models::power_virus()).unwrap();
        k.advance_secs(3);
        assert!(k.wall_watts() > low_w + 5.0);
    }

    #[test]
    fn multi_phase_workloads_change_behaviour_over_time() {
        // The batch pipeline's parse phase is syscall/IO heavy; its
        // compute phase is not — the kernel's per-interval aggregates
        // must reflect the transition.
        let mut k = kernel();
        let pid = k
            .spawn_host_process("batch", models::batch_pipeline())
            .unwrap();
        k.advance_secs(10); // inside the parse phase
        let s1 = k.stats();
        let io1 = k.process(pid).unwrap().io_bytes().0;
        k.advance_secs(30); // parse done (~25 s at 0.8 demand), well into compute
        k.advance_secs(10);
        let s2_before = k.stats();
        let io2_before = k.process(pid).unwrap().io_bytes().0;
        k.advance_secs(10); // pure compute interval
        let s2 = k.stats();
        let syscall_rate_parse = s1.total_syscalls as f64 / 10.0;
        let syscall_rate_compute = (s2.total_syscalls - s2_before.total_syscalls) as f64 / 10.0;
        assert!(
            syscall_rate_parse > syscall_rate_compute * 20.0,
            "parse {syscall_rate_parse}/s vs compute {syscall_rate_compute}/s"
        );
        let io_compute = k.process(pid).unwrap().io_bytes().0 - io2_before;
        assert!(io1 > 0, "parse phase reads input");
        assert_eq!(io_compute, 0, "compute phase does no IO");
    }

    #[test]
    fn tick_granularity_does_not_change_the_physics() {
        // The fluid model's promise: energy and CPU accounting are
        // rate-based, so coarse ticks (used for week-long traces) agree
        // with fine ticks to within the noise term.
        let run = |tick_ns: u64| -> (f64, u64) {
            let mut k = Kernel::new(MachineConfig::small_server(), 99);
            k.set_tick_ns(tick_ns);
            let pid = k.spawn_host_process("w", models::stress_small()).unwrap();
            k.advance_secs(60);
            (
                k.rapl().raw(0).unwrap().package_uj,
                k.process(pid).unwrap().cpu_time_ns(),
            )
        };
        let (e_fine, cpu_fine) = run(NANOS_PER_SEC);
        let (e_coarse, cpu_coarse) = run(10 * NANOS_PER_SEC);
        let energy_drift = (e_fine - e_coarse).abs() / e_fine;
        assert!(energy_drift < 0.02, "energy drift {energy_drift}");
        assert_eq!(cpu_fine, cpu_coarse, "cpu accounting must be exact");
    }

    #[test]
    fn uptime_and_stat_sources_progress() {
        let mut k = kernel();
        k.spawn_host_process("w", models::prime()).unwrap();
        k.advance_secs(5);
        assert!(k.irq().total_interrupts() > 0);
        assert!(k.sched().total_switches() > 0);
        assert!(k.sched().loadavg()[0] > 0.05);
        assert!(k.stats().total_syscalls > 0);
        assert_eq!(k.clock().wall_secs(), k.config().boot_wall_secs + 5);
    }
}
