//! Kernel-operation cost model.
//!
//! Base latencies of the kernel paths the UnixBench-style suite exercises,
//! calibrated to ballpark figures for a mid-2010s Xeon. The Table III
//! harness combines these with [`crate::perf::PerfOverheadCosts`] to
//! replay benchmark iterations with the power-based namespace on and off.

use serde::{Deserialize, Serialize};

use crate::perf::PerfOverheadCosts;

/// Base nanosecond costs for kernel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SysCosts {
    /// A trivial syscall (getpid-class) round trip.
    pub syscall_ns: u64,
    /// One context switch (scheduler pick + register/address-space swap).
    pub context_switch_ns: u64,
    /// `fork()` of a small process.
    pub fork_ns: u64,
    /// `execve()` of a small binary.
    pub exec_ns: u64,
    /// Fixed per-block cost of a file-copy read+write pair.
    pub file_block_base_ns: u64,
    /// Additional cost per byte copied.
    pub file_byte_ns_x1000: u64,
    /// Starting one shell script (interpreter spawn + parse), excluding
    /// the forks/execs it performs (charged separately).
    pub shell_script_ns: u64,
    /// Per-copy slowdown factor (per mille) applied to file-copy blocks
    /// when multiple copies contend for the same buffer cache.
    pub file_contention_permille_per_copy: u64,
}

impl Default for SysCosts {
    fn default() -> Self {
        SysCosts {
            syscall_ns: 260,
            context_switch_ns: 1_450,
            fork_ns: 55_000,
            exec_ns: 240_000,
            file_block_base_ns: 820,
            file_byte_ns_x1000: 95,
            shell_script_ns: 1_450_000,
            file_contention_permille_per_copy: 55,
        }
    }
}

impl SysCosts {
    /// Cost of copying one `block_bytes`-sized block with `copies` parallel
    /// benchmark copies running, without perf overhead.
    pub fn file_block_ns(&self, block_bytes: u64, copies: u32) -> u64 {
        let base = self.file_block_base_ns + block_bytes * self.file_byte_ns_x1000 / 1000;
        let contention =
            base * self.file_contention_permille_per_copy * u64::from(copies.saturating_sub(1))
                / 1000;
        base + contention
    }

    /// Cost of one pipe round trip given the cost of each of its two
    /// context switches (the caller decides whether each switch crosses a
    /// perf_event cgroup).
    pub fn pipe_round_trip_ns(&self, switch_extra_each_ns: u64) -> u64 {
        2 * (self.syscall_ns + self.context_switch_ns + switch_extra_each_ns)
    }

    /// Total perf-added nanoseconds for a mix of operations, given the
    /// active overhead costs (`None` → zero).
    pub fn perf_extra_ns(
        &self,
        overhead: Option<&PerfOverheadCosts>,
        syscalls: u64,
        forks: u64,
        execs: u64,
        contended_file_blocks: u64,
    ) -> u64 {
        match overhead {
            None => 0,
            Some(o) => {
                syscalls * o.syscall_ns
                    + forks * o.fork_ns
                    + execs * o.exec_ns
                    + contended_file_blocks * o.file_block_contended_ns
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_block_cost_scales_with_size_and_copies() {
        let c = SysCosts::default();
        let small = c.file_block_ns(256, 1);
        let big = c.file_block_ns(4096, 1);
        assert!(big > small + 300);
        let contended = c.file_block_ns(256, 8);
        assert!(
            contended > small * 13 / 10,
            "contention too weak: {small} vs {contended}"
        );
    }

    #[test]
    fn pipe_round_trip_includes_two_switches() {
        let c = SysCosts::default();
        let clean = c.pipe_round_trip_ns(0);
        let toggled = c.pipe_round_trip_ns(3_100);
        assert_eq!(toggled - clean, 6_200);
        // Table III row 8: the defended benchmark runs ~2.6x slower,
        // i.e. a 61.5 % score drop on a switch-bound loop.
        let ratio = toggled as f64 / clean as f64;
        assert!((2.2..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn perf_extra_is_zero_without_monitoring() {
        let c = SysCosts::default();
        assert_eq!(c.perf_extra_ns(None, 1000, 10, 5, 100), 0);
        let o = PerfOverheadCosts::default();
        assert!(c.perf_extra_ns(Some(&o), 1000, 10, 5, 100) > 0);
    }
}
