//! Processes and the process table.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cgroup::{CgroupId, PerfCounters};
use crate::ns::NamespaceSet;
use workloads::{PhaseCursor, WorkloadSpec};

/// A host (root-pid-namespace) process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostPid(pub u32);

impl fmt::Display for HostPid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// Scheduler-visible process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcState {
    /// Runnable (may or may not be on a CPU this tick).
    Runnable,
    /// Voluntarily sleeping (bursty workloads off their duty cycle).
    Sleeping,
    /// Finished; awaiting reaping.
    Exited,
}

/// The cgroup membership of a process, one per hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CgroupMembership {
    /// cpuacct hierarchy node.
    pub cpuacct: CgroupId,
    /// perf_event hierarchy node.
    pub perf_event: CgroupId,
    /// net_prio hierarchy node.
    pub net_prio: CgroupId,
    /// memory hierarchy node.
    pub memory: CgroupId,
}

/// A simulated process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    pub(crate) host_pid: HostPid,
    pub(crate) name: String,
    pub(crate) ns: NamespaceSet,
    pub(crate) ns_pid: u32,
    pub(crate) cgroups: CgroupMembership,
    pub(crate) workload: WorkloadSpec,
    pub(crate) cursor: PhaseCursor,
    pub(crate) affinity: Option<Vec<u16>>,
    pub(crate) state: ProcState,
    pub(crate) start_ns: u64,
    pub(crate) utime_ns: u64,
    pub(crate) stime_ns: u64,
    pub(crate) vruntime_ns: u64,
    pub(crate) counters: PerfCounters,
    pub(crate) last_cpu: u16,
    pub(crate) io_read_bytes: u64,
    pub(crate) io_write_bytes: u64,
    pub(crate) syscalls: u64,
}

impl Process {
    /// Host pid.
    pub fn host_pid(&self) -> HostPid {
        self.host_pid
    }
    /// Pid as seen inside the process's own PID namespace.
    pub fn ns_pid(&self) -> u32 {
        self.ns_pid
    }
    /// Command name (`comm`).
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Namespace membership.
    pub fn namespaces(&self) -> NamespaceSet {
        self.ns
    }
    /// Cgroup membership.
    pub fn cgroups(&self) -> CgroupMembership {
        self.cgroups
    }
    /// The workload model this process runs.
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }
    /// Scheduler state.
    pub fn state(&self) -> ProcState {
        self.state
    }
    /// CPU affinity (None = any CPU).
    pub fn affinity(&self) -> Option<&[u16]> {
        self.affinity.as_deref()
    }
    /// Boot-relative start time in nanoseconds.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }
    /// Accumulated user CPU time (ns).
    pub fn utime_ns(&self) -> u64 {
        self.utime_ns
    }
    /// Accumulated system CPU time (ns).
    pub fn stime_ns(&self) -> u64 {
        self.stime_ns
    }
    /// CFS virtual runtime (ns).
    pub fn vruntime_ns(&self) -> u64 {
        self.vruntime_ns
    }
    /// Lifetime hardware-event counters.
    pub fn counters(&self) -> PerfCounters {
        self.counters
    }
    /// The CPU this process last ran on.
    pub fn last_cpu(&self) -> u16 {
        self.last_cpu
    }
    /// Cumulative (read, write) IO bytes (`/proc/<pid>/io`).
    pub fn io_bytes(&self) -> (u64, u64) {
        (self.io_read_bytes, self.io_write_bytes)
    }
    /// Cumulative syscalls issued.
    pub fn syscall_count(&self) -> u64 {
        self.syscalls
    }
    /// Total CPU time consumed (user + system), ns.
    pub fn cpu_time_ns(&self) -> u64 {
        self.utime_ns + self.stime_ns
    }
    /// Current resident memory, from the workload's current phase.
    pub fn rss_bytes(&self) -> u64 {
        self.cursor.current_phase(&self.workload).mem_bytes
    }
}

/// The kernel's process table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcessTable {
    next_pid: u32,
    procs: BTreeMap<HostPid, Process>,
    total_forks: u64,
    epoch: u64,
}

impl ProcessTable {
    /// Creates an empty table; pids start at 300 (low pids belong to the
    /// kernel's own threads, which we do not model individually).
    pub fn new() -> Self {
        ProcessTable {
            next_pid: 300,
            procs: BTreeMap::new(),
            total_forks: 0,
            epoch: 0,
        }
    }

    /// Monotonic counter bumped on every mutable access. Two equal epochs
    /// guarantee no process was added, removed, or mutated in between, so
    /// derived aggregates (per-cgroup RSS) are still valid.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Allocates the next host pid.
    pub fn allocate_pid(&mut self) -> HostPid {
        let pid = HostPid(self.next_pid);
        self.next_pid += 1;
        self.total_forks += 1;
        pid
    }

    /// The most recently allocated pid (for `/proc/loadavg`'s last field).
    pub fn last_pid(&self) -> u32 {
        self.next_pid.saturating_sub(1)
    }

    /// Total forks since boot (`/proc/stat`'s `processes`).
    pub fn total_forks(&self) -> u64 {
        self.total_forks
    }

    /// Inserts a process.
    pub fn insert(&mut self, p: Process) {
        self.epoch += 1;
        self.procs.insert(p.host_pid, p);
    }

    /// Removes a process, returning it.
    pub fn remove(&mut self, pid: HostPid) -> Option<Process> {
        self.epoch += 1;
        self.procs.remove(&pid)
    }

    /// Looks up a process.
    pub fn get(&self, pid: HostPid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: HostPid) -> Option<&mut Process> {
        self.epoch += 1;
        self.procs.get_mut(&pid)
    }

    /// Iterates processes in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }

    /// Iterates processes mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Process> {
        self.epoch += 1;
        self.procs.values_mut()
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Count of runnable processes (for loadavg / procs_running).
    pub fn runnable(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.state == ProcState::Runnable)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ns::NsId;
    use workloads::models;

    fn mk(pid: u32) -> Process {
        let set = NamespaceSet {
            mnt: NsId(0),
            uts: NsId(1),
            pid: NsId(2),
            net: NsId(3),
            ipc: NsId(4),
            user: NsId(5),
            cgroup: NsId(6),
        };
        Process {
            host_pid: HostPid(pid),
            name: "t".into(),
            ns: set,
            ns_pid: pid,
            cgroups: CgroupMembership {
                cpuacct: CgroupId(0),
                perf_event: CgroupId(1),
                net_prio: CgroupId(2),
                memory: CgroupId(3),
            },
            workload: models::idle_loop(),
            cursor: PhaseCursor::new(),
            affinity: None,
            state: ProcState::Runnable,
            start_ns: 0,
            utime_ns: 0,
            stime_ns: 0,
            vruntime_ns: 0,
            counters: PerfCounters::default(),
            last_cpu: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            syscalls: 0,
        }
    }

    #[test]
    fn pid_allocation_is_monotone() {
        let mut t = ProcessTable::new();
        let a = t.allocate_pid();
        let b = t.allocate_pid();
        assert!(b.0 > a.0);
        assert_eq!(t.last_pid(), b.0);
        assert_eq!(t.total_forks(), 2);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = ProcessTable::new();
        t.insert(mk(301));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(HostPid(301)).unwrap().name(), "t");
        assert!(t.remove(HostPid(301)).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn runnable_counts_only_runnable() {
        let mut t = ProcessTable::new();
        t.insert(mk(301));
        let mut p = mk(302);
        p.state = ProcState::Sleeping;
        t.insert(p);
        assert_eq!(t.runnable(), 1);
    }

    #[test]
    fn iteration_is_pid_ordered() {
        let mut t = ProcessTable::new();
        t.insert(mk(500));
        t.insert(mk(302));
        t.insert(mk(400));
        let pids: Vec<u32> = t.iter().map(|p| p.host_pid().0).collect();
        assert_eq!(pids, vec![302, 400, 500]);
    }

    #[test]
    fn rss_follows_workload_phase() {
        let p = mk(301);
        assert_eq!(p.rss_bytes(), p.workload().phases()[0].mem_bytes);
    }
}
