//! Interrupt and softirq accounting (`/proc/interrupts`, `/proc/softirqs`).
//!
//! Both files are global, un-namespaced kernel tables — top-ranked leakage
//! channels in the paper (variation + indirect manipulation: a tenant can
//! pin load to a core and watch that core's timer/rescheduling counts from
//! another container).

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::sched::CpuTickLoad;
use crate::time::NANOS_PER_SEC;

/// One interrupt line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrqLine {
    /// Label in the first column (`0`, `LOC`, `RES`, ...).
    pub label: String,
    /// Chip/handler description.
    pub description: String,
    /// Per-CPU counts.
    pub per_cpu: Vec<u64>,
}

/// Softirq kinds, in `/proc/softirqs` order.
pub const SOFTIRQ_NAMES: [&str; 10] = [
    "HI", "TIMER", "NET_TX", "NET_RX", "BLOCK", "IRQ_POLL", "TASKLET", "SCHED", "HRTIMER", "RCU",
];

// Fixed table positions from `IrqState::new` — the hot tick path indexes
// these directly instead of scanning labels.
const LINE_TIMER0: usize = 0;
const LINE_AHCI: usize = 2;
const LINE_ETH0: usize = 3;
const LINE_NMI: usize = 4;
const LINE_LOC: usize = 5;
const LINE_RES: usize = 6;
const LINE_CAL: usize = 7;
const LINE_TLB: usize = 8;
const SOFT_TIMER: usize = 1;
const SOFT_NET_TX: usize = 2;
const SOFT_NET_RX: usize = 3;
const SOFT_BLOCK: usize = 4;
const SOFT_TASKLET: usize = 6;
const SOFT_SCHED: usize = 7;
const SOFT_HRTIMER: usize = 8;
const SOFT_RCU: usize = 9;

/// Interrupt/softirq state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrqState {
    lines: Vec<IrqLine>,
    softirqs: Vec<Vec<u64>>,
    ncpus: usize,
    hz: u32,
    total_interrupts: u64,
}

impl IrqState {
    /// Creates the interrupt table for `ncpus` CPUs at tick rate `hz`.
    pub fn new(ncpus: usize, hz: u32) -> Self {
        let mk = |label: &str, desc: &str| IrqLine {
            label: label.to_string(),
            description: desc.to_string(),
            per_cpu: vec![0; ncpus],
        };
        IrqState {
            lines: vec![
                mk("0", "IR-IO-APIC    2-edge      timer"),
                mk("8", "IR-IO-APIC    8-edge      rtc0"),
                mk("16", "IR-PCI-MSI 327680-edge    ahci[0000:00:17.0]"),
                mk("24", "IR-PCI-MSI 409600-edge    eth0"),
                mk("NMI", "Non-maskable interrupts"),
                mk("LOC", "Local timer interrupts"),
                mk("RES", "Rescheduling interrupts"),
                mk("CAL", "Function call interrupts"),
                mk("TLB", "TLB shootdowns"),
            ],
            softirqs: vec![vec![0; ncpus]; SOFTIRQ_NAMES.len()],
            ncpus,
            hz,
            total_interrupts: 0,
        }
    }

    /// The interrupt lines.
    pub fn lines(&self) -> &[IrqLine] {
        &self.lines
    }

    /// Softirq counts, indexed `[kind][cpu]` like [`SOFTIRQ_NAMES`].
    pub fn softirqs(&self) -> &[Vec<u64>] {
        &self.softirqs
    }

    /// Total hardware interrupts since boot (`/proc/stat intr`).
    pub fn total_interrupts(&self) -> u64 {
        self.total_interrupts
    }

    /// One tick of interrupt traffic derived from load.
    pub fn tick(&mut self, dt_ns: u64, load: &[CpuTickLoad], switches: u64, rng: &mut StdRng) {
        let dt_s = dt_ns as f64 / NANOS_PER_SEC as f64;
        let ncpus = self.ncpus;
        let per_cpu_switches = switches / ncpus.max(1) as u64;

        for cpu in 0..ncpus {
            let l = load.get(cpu).copied().unwrap_or_default();
            let busy_frac = (l.busy_ns as f64 / dt_ns as f64).min(1.0);
            // Local timer: full HZ while busy, ~1/8 when tickless-idle.
            let loc = (f64::from(self.hz) * dt_s * (0.125 + 0.875 * busy_frac)) as u64
                + rng.random_range(0..3);
            self.line_add(LINE_LOC, cpu, loc);
            self.line_add(LINE_RES, cpu, per_cpu_switches / 3 + rng.random_range(0..2));
            self.line_add(LINE_CAL, cpu, (busy_frac * 40.0 * dt_s) as u64);
            self.line_add(LINE_TLB, cpu, (l.cache_misses / 2_000_000).min(10_000));
            if l.io_bytes > 0 {
                self.line_add(LINE_AHCI, cpu, l.io_bytes / 65_536 + 1);
            }
            if l.syscalls > 1_000 {
                self.line_add(LINE_ETH0, cpu, l.syscalls / 500);
            }
        }
        // Legacy timer and RTC tick slowly on CPU0 only.
        self.line_add(LINE_TIMER0, 0, u64::from(dt_s >= 1.0));
        self.line_add(LINE_NMI, 0, rng.random_range(0..2));

        for cpu in 0..ncpus {
            let l = load.get(cpu).copied().unwrap_or_default();
            let busy_frac = (l.busy_ns as f64 / dt_ns as f64).min(1.0);
            let timer = (f64::from(self.hz) * dt_s * (0.125 + 0.875 * busy_frac)) as u64;
            self.soft_add(SOFT_TIMER, cpu, timer);
            self.soft_add(SOFT_SCHED, cpu, per_cpu_switches / 2 + (timer / 4));
            self.soft_add(SOFT_RCU, cpu, timer / 2 + rng.random_range(0..5));
            self.soft_add(SOFT_HRTIMER, cpu, timer / 50);
            if l.io_bytes > 0 {
                self.soft_add(SOFT_BLOCK, cpu, l.io_bytes / 65_536 + 1);
            }
            if l.syscalls > 1_000 {
                self.soft_add(SOFT_NET_RX, cpu, l.syscalls / 400);
                self.soft_add(SOFT_NET_TX, cpu, l.syscalls / 800);
            }
            self.soft_add(SOFT_TASKLET, cpu, rng.random_range(0..3));
        }
    }

    /// Jump-evaluates the table to `rel_ns` past `anchor` with every CPU
    /// idle.
    ///
    /// Mirrors [`IrqState::tick`] at zero load with the random terms
    /// dropped: only the tickless-idle local-timer rate, the 1 Hz legacy
    /// timer on CPU 0, and the timer-driven softirq families advance;
    /// everything else stays frozen at the anchor. A closed form of
    /// `(anchor, rel_ns)`, so the result never depends on step size.
    pub fn idle_eval(&mut self, anchor: &IrqState, rel_ns: u64) {
        let rel_s = rel_ns as f64 / NANOS_PER_SEC as f64;
        let loc = (f64::from(self.hz) * rel_s * 0.125) as u64;
        let legacy = rel_ns / NANOS_PER_SEC;

        for (line, base) in self.lines.iter_mut().zip(anchor.lines.iter()) {
            line.per_cpu.clone_from(&base.per_cpu);
        }
        let mut added = 0;
        if loc > 0 {
            for c in &mut self.lines[LINE_LOC].per_cpu {
                *c += loc;
                added += loc;
            }
        }
        if legacy > 0 {
            self.lines[LINE_TIMER0].per_cpu[0] += legacy;
            added += legacy;
        }
        self.total_interrupts = anchor.total_interrupts + added;

        for (idx, soft) in self.softirqs.iter_mut().enumerate() {
            soft.clone_from(&anchor.softirqs[idx]);
            let add = match idx {
                SOFT_TIMER => loc,
                SOFT_SCHED => loc / 4,
                SOFT_RCU => loc / 2,
                SOFT_HRTIMER => loc / 50,
                _ => 0,
            };
            if add > 0 {
                for c in soft.iter_mut() {
                    *c += add;
                }
            }
        }
    }

    fn line_add(&mut self, idx: usize, cpu: usize, n: u64) {
        if n == 0 {
            return;
        }
        if cpu < self.lines[idx].per_cpu.len() {
            self.lines[idx].per_cpu[cpu] += n;
        }
        self.total_interrupts += n;
    }

    fn soft_add(&mut self, idx: usize, cpu: usize, n: u64) {
        if n == 0 {
            return;
        }
        if cpu < self.softirqs[idx].len() {
            self.softirqs[idx][cpu] += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn busy(ncpus: usize, dt: u64) -> Vec<CpuTickLoad> {
        vec![
            CpuTickLoad {
                busy_ns: dt,
                instructions: 1_000_000_000,
                cache_misses: 10_000_000,
                syscalls: 5_000,
                io_bytes: 1 << 20,
                tasks_ran: 2,
                ..CpuTickLoad::default()
            };
            ncpus
        ]
    }

    #[test]
    fn busy_cpu_gets_full_hz_timer_ticks() {
        let mut irq = IrqState::new(2, 250);
        let mut rng = StdRng::seed_from_u64(1);
        irq.tick(NANOS_PER_SEC, &busy(2, NANOS_PER_SEC), 100, &mut rng);
        let loc = irq.lines().iter().find(|l| l.label == "LOC").unwrap();
        assert!(
            (240..=260).contains(&loc.per_cpu[0]),
            "LOC {}",
            loc.per_cpu[0]
        );
    }

    #[test]
    fn idle_cpu_ticks_slower() {
        let mut irq = IrqState::new(1, 250);
        let mut rng = StdRng::seed_from_u64(2);
        irq.tick(NANOS_PER_SEC, &[CpuTickLoad::default()], 0, &mut rng);
        let loc = irq.lines().iter().find(|l| l.label == "LOC").unwrap();
        assert!(loc.per_cpu[0] < 60, "tickless idle LOC {}", loc.per_cpu[0]);
    }

    #[test]
    fn io_drives_block_softirqs_and_ahci() {
        let mut irq = IrqState::new(1, 250);
        let mut rng = StdRng::seed_from_u64(3);
        irq.tick(NANOS_PER_SEC, &busy(1, NANOS_PER_SEC), 10, &mut rng);
        let block_idx = SOFTIRQ_NAMES.iter().position(|s| *s == "BLOCK").unwrap();
        assert!(irq.softirqs()[block_idx][0] > 0);
        let ahci = irq.lines().iter().find(|l| l.label == "16").unwrap();
        assert!(ahci.per_cpu[0] > 0);
    }

    #[test]
    fn totals_accumulate() {
        let mut irq = IrqState::new(4, 250);
        let mut rng = StdRng::seed_from_u64(4);
        irq.tick(NANOS_PER_SEC, &busy(4, NANOS_PER_SEC), 400, &mut rng);
        let t1 = irq.total_interrupts();
        irq.tick(NANOS_PER_SEC, &busy(4, NANOS_PER_SEC), 400, &mut rng);
        assert!(irq.total_interrupts() > t1);
    }

    #[test]
    fn pinned_load_is_visible_per_cpu() {
        // The indirect-manipulation channel: load on CPU 3 shows up in that
        // CPU's column only.
        let mut irq = IrqState::new(4, 250);
        let mut rng = StdRng::seed_from_u64(5);
        let mut load = vec![CpuTickLoad::default(); 4];
        load[3] = busy(1, NANOS_PER_SEC)[0];
        irq.tick(NANOS_PER_SEC, &load, 0, &mut rng);
        let loc = irq.lines().iter().find(|l| l.label == "LOC").unwrap();
        assert!(loc.per_cpu[3] > loc.per_cpu[0] * 3);
    }
}
