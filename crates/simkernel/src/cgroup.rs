//! Control groups (§II-A.2 of the paper).
//!
//! Containers get one cgroup per hierarchy; resource accounting charges the
//! process's cgroup *and all its ancestors*, as in Linux. The hierarchies
//! modeled are the ones the paper's channels and defense touch:
//!
//! * `cpuacct` — CPU-cycle accounting per container (defense input).
//! * `perf_event` — scope for perf-event monitoring (defense input; the
//!   enable/disable toggles on inter-cgroup context switches are the source
//!   of the paper's Table III overhead).
//! * `net_prio` — whose `net_prio.ifpriomap` file is the paper's Case
//!   Study I leakage channel.
//! * `memory` — per-container memory accounting.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::KernelError;

/// Identifies a cgroup node within a [`CgroupForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CgroupId(pub u32);

impl fmt::Display for CgroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cgroup#{}", self.0)
    }
}

/// The cgroup hierarchies (subsystems) modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CgroupKind {
    /// CPU cycle/time accounting.
    Cpuacct,
    /// Perf-event monitoring scope.
    PerfEvent,
    /// Network traffic priorities.
    NetPrio,
    /// Memory accounting and limits.
    Memory,
}

impl CgroupKind {
    /// All modeled hierarchies.
    pub const ALL: [CgroupKind; 4] = [
        CgroupKind::Cpuacct,
        CgroupKind::PerfEvent,
        CgroupKind::NetPrio,
        CgroupKind::Memory,
    ];

    /// The mount name under `/sys/fs/cgroup/`.
    pub fn mount_name(&self) -> &'static str {
        match self {
            CgroupKind::Cpuacct => "cpuacct",
            CgroupKind::PerfEvent => "perf_event",
            CgroupKind::NetPrio => "net_prio",
            CgroupKind::Memory => "memory",
        }
    }
}

/// Hardware-event counters accumulated for a perf-event cgroup.
///
/// These are the four inputs of the paper's power model (Formula 2):
/// retired instructions `I`, cache misses `CM`, branch misses `BM`, and
/// CPU cycles `C`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Last-level cache misses.
    pub cache_misses: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// CPU cycles.
    pub cycles: u64,
}

impl PerfCounters {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &PerfCounters) {
        self.instructions += other.instructions;
        self.cache_misses += other.cache_misses;
        self.branch_misses += other.branch_misses;
        self.cycles += other.cycles;
    }

    /// Element-wise difference (`self - earlier`), saturating at zero.
    #[must_use]
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
            cycles: self.cycles.saturating_sub(earlier.cycles),
        }
    }
}

/// Per-hierarchy payload of a cgroup node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CgroupData {
    /// `cpuacct`: accumulated CPU nanoseconds per logical CPU.
    Cpuacct {
        /// Per-CPU nanoseconds of execution charged to this group.
        usage_ns_per_cpu: Vec<u64>,
    },
    /// `perf_event`: event counters and whether monitoring is active
    /// (the power-based namespace activates it).
    PerfEvent {
        /// Accumulated counters (only grow while `monitoring`).
        counters: PerfCounters,
        /// Whether perf events are attached to this group.
        monitoring: bool,
    },
    /// `net_prio`: interface→priority map *as configured in this cgroup*.
    NetPrio {
        /// Priorities by interface name. Note the leakage: the kernel
        /// handler renders this for *all host interfaces* regardless of
        /// the reader's network namespace (Case Study I).
        ifpriomap: BTreeMap<String, u32>,
    },
    /// `memory`: usage and limit.
    Memory {
        /// Limit in bytes (`u64::MAX` = unlimited).
        limit_bytes: u64,
        /// Current usage in bytes.
        usage_bytes: u64,
        /// High-water mark.
        max_usage_bytes: u64,
    },
}

/// One cgroup node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgroupNode {
    id: CgroupId,
    kind: CgroupKind,
    path: String,
    parent: Option<CgroupId>,
    data: CgroupData,
}

impl CgroupNode {
    /// The node's id.
    pub fn id(&self) -> CgroupId {
        self.id
    }
    /// The hierarchy this node belongs to.
    pub fn kind(&self) -> CgroupKind {
        self.kind
    }
    /// Absolute path within the hierarchy (e.g. `/docker/abc123`).
    pub fn path(&self) -> &str {
        &self.path
    }
    /// Parent node, if not the root.
    pub fn parent(&self) -> Option<CgroupId> {
        self.parent
    }
    /// The payload.
    pub fn data(&self) -> &CgroupData {
        &self.data
    }
}

/// All cgroup hierarchies of one kernel.
///
/// Ids are allocated sequentially and never reused, so the nodes live in a
/// slot vector indexed by id: every lookup on the scheduler's per-task
/// charge path is an array index instead of a hash probe. Removed nodes
/// leave a `None` slot behind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CgroupForest {
    next: u32,
    nodes: Vec<Option<CgroupNode>>,
    roots: HashMap<CgroupKind, CgroupId>,
    ncpus: usize,
}

impl CgroupForest {
    /// Creates the forest with one root per hierarchy.
    pub fn new(ncpus: usize, host_ifaces: &[String]) -> Self {
        let mut f = CgroupForest {
            next: 0,
            nodes: Vec::new(),
            roots: HashMap::new(),
            ncpus,
        };
        for kind in CgroupKind::ALL {
            let data = f.fresh_data(kind, host_ifaces);
            let id = f.alloc(kind, "/".to_string(), None, data);
            f.roots.insert(kind, id);
        }
        f
    }

    fn fresh_data(&self, kind: CgroupKind, host_ifaces: &[String]) -> CgroupData {
        match kind {
            CgroupKind::Cpuacct => CgroupData::Cpuacct {
                usage_ns_per_cpu: vec![0; self.ncpus],
            },
            CgroupKind::PerfEvent => CgroupData::PerfEvent {
                counters: PerfCounters::default(),
                monitoring: false,
            },
            CgroupKind::NetPrio => CgroupData::NetPrio {
                ifpriomap: host_ifaces.iter().map(|i| (i.clone(), 0)).collect(),
            },
            CgroupKind::Memory => CgroupData::Memory {
                limit_bytes: u64::MAX,
                usage_bytes: 0,
                max_usage_bytes: 0,
            },
        }
    }

    fn alloc(
        &mut self,
        kind: CgroupKind,
        path: String,
        parent: Option<CgroupId>,
        data: CgroupData,
    ) -> CgroupId {
        let id = CgroupId(self.next);
        self.next += 1;
        self.nodes.push(Some(CgroupNode {
            id,
            kind,
            path,
            parent,
            data,
        }));
        id
    }

    fn node_ref(&self, id: CgroupId) -> Option<&CgroupNode> {
        self.nodes.get(id.0 as usize).and_then(Option::as_ref)
    }

    fn node_mut(&mut self, id: CgroupId) -> Option<&mut CgroupNode> {
        self.nodes.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// The root node of a hierarchy.
    pub fn root(&self, kind: CgroupKind) -> CgroupId {
        *self.roots.get(&kind).expect("root exists for every kind")
    }

    /// Looks up a node.
    pub fn node(&self, id: CgroupId) -> Option<&CgroupNode> {
        self.node_ref(id)
    }

    /// All nodes of one hierarchy, sorted by path.
    pub fn nodes_of_kind(&self, kind: CgroupKind) -> Vec<&CgroupNode> {
        let mut v: Vec<&CgroupNode> = self
            .nodes
            .iter()
            .flatten()
            .filter(|n| n.kind == kind)
            .collect();
        v.sort_by(|a, b| a.path.cmp(&b.path));
        v
    }

    /// Number of cgroups in one hierarchy — rendered by `/proc/cgroups`,
    /// which thereby leaks how many containers a host runs.
    pub fn count_of_kind(&self, kind: CgroupKind) -> usize {
        self.nodes
            .iter()
            .flatten()
            .filter(|n| n.kind == kind)
            .count()
    }

    /// Creates a child cgroup `name` under `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchCgroup`] if `parent` is unknown.
    pub fn create_child(
        &mut self,
        parent: CgroupId,
        name: &str,
        host_ifaces: &[String],
    ) -> Result<CgroupId, KernelError> {
        let (kind, ppath) = {
            let p = self
                .node_ref(parent)
                .ok_or(KernelError::NoSuchCgroup(parent))?;
            (p.kind, p.path.clone())
        };
        let path = if ppath == "/" {
            format!("/{name}")
        } else {
            format!("{ppath}/{name}")
        };
        let data = self.fresh_data(kind, host_ifaces);
        Ok(self.alloc(kind, path, Some(parent), data))
    }

    /// Removes a leaf cgroup. Accounting already charged to ancestors is
    /// preserved (as in Linux, where a removed child's usage stays in the
    /// parent's hierarchy totals).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidOperation`] when the node is a root or
    /// still has children, and [`KernelError::NoSuchCgroup`] when unknown.
    pub fn remove(&mut self, id: CgroupId) -> Result<(), KernelError> {
        let node = self.node_ref(id).ok_or(KernelError::NoSuchCgroup(id))?;
        if node.parent.is_none() {
            return Err(KernelError::InvalidOperation(
                "cannot remove a root cgroup".into(),
            ));
        }
        if self.nodes.iter().flatten().any(|n| n.parent == Some(id)) {
            return Err(KernelError::InvalidOperation(format!(
                "cgroup {id} still has children"
            )));
        }
        self.nodes[id.0 as usize] = None;
        Ok(())
    }

    /// The chain from `id` up to (and including) its root.
    pub fn ancestor_chain(&self, id: CgroupId) -> Vec<CgroupId> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.node_ref(c) {
                Some(n) => {
                    chain.push(c);
                    cur = n.parent;
                }
                None => break,
            }
        }
        chain
    }

    /// Charges `ns` nanoseconds of CPU time on `cpu` to `id` and ancestors
    /// (cpuacct hierarchy).
    pub fn charge_cpu(&mut self, id: CgroupId, cpu: usize, ns: u64) {
        // Walks the parent links in place — this runs once per task per
        // scheduler tick, so it must not allocate a chain vector.
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(n) = self.node_mut(c) else { break };
            cur = n.parent;
            if let CgroupData::Cpuacct { usage_ns_per_cpu } = &mut n.data {
                if cpu < usage_ns_per_cpu.len() {
                    usage_ns_per_cpu[cpu] += ns;
                }
            }
        }
    }

    /// Charges perf counters to `id` and ancestors, but only to nodes with
    /// monitoring enabled (perf_event hierarchy).
    pub fn charge_perf(&mut self, id: CgroupId, delta: &PerfCounters) {
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Some(n) = self.node_mut(c) else { break };
            cur = n.parent;
            if let CgroupData::PerfEvent {
                counters,
                monitoring,
            } = &mut n.data
            {
                if *monitoring {
                    counters.add(delta);
                }
            }
        }
    }

    /// Enables or disables perf monitoring on a perf_event cgroup.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchCgroup`] for unknown ids and
    /// [`KernelError::InvalidOperation`] when the node is not in the
    /// perf_event hierarchy.
    pub fn set_perf_monitoring(&mut self, id: CgroupId, on: bool) -> Result<(), KernelError> {
        match self.node_mut(id) {
            Some(n) => match &mut n.data {
                CgroupData::PerfEvent { monitoring, .. } => {
                    *monitoring = on;
                    Ok(())
                }
                _ => Err(KernelError::InvalidOperation(format!(
                    "{id} is not a perf_event cgroup"
                ))),
            },
            None => Err(KernelError::NoSuchCgroup(id)),
        }
    }

    /// Reads the perf counters of a perf_event cgroup.
    pub fn perf_counters(&self, id: CgroupId) -> Option<PerfCounters> {
        match self.node_ref(id)?.data() {
            CgroupData::PerfEvent { counters, .. } => Some(*counters),
            _ => None,
        }
    }

    /// Whether perf monitoring is on for this cgroup.
    pub fn perf_monitoring(&self, id: CgroupId) -> bool {
        matches!(
            self.node_ref(id).map(|n| n.data()),
            Some(CgroupData::PerfEvent {
                monitoring: true,
                ..
            })
        )
    }

    /// Total cpuacct usage (ns summed over CPUs) of a cpuacct cgroup.
    pub fn cpuacct_usage_ns(&self, id: CgroupId) -> Option<u64> {
        match self.node_ref(id)?.data() {
            CgroupData::Cpuacct { usage_ns_per_cpu } => Some(usage_ns_per_cpu.iter().sum()),
            _ => None,
        }
    }

    /// Per-CPU cpuacct usage of a cpuacct cgroup.
    pub fn cpuacct_usage_percpu(&self, id: CgroupId) -> Option<&[u64]> {
        match self.node_ref(id)?.data() {
            CgroupData::Cpuacct { usage_ns_per_cpu } => Some(usage_ns_per_cpu),
            _ => None,
        }
    }

    /// Sets the absolute memory usage of one memory cgroup node. The
    /// kernel recomputes each node (and the root aggregate) every tick
    /// from the process table, so no chain propagation happens here.
    pub fn set_memory_usage(&mut self, id: CgroupId, bytes: u64) {
        if let Some(CgroupData::Memory {
            usage_bytes,
            max_usage_bytes,
            ..
        }) = self.node_mut(id).map(|n| &mut n.data)
        {
            *usage_bytes = bytes;
            *max_usage_bytes = (*max_usage_bytes).max(bytes);
        }
    }

    /// Reads a memory cgroup's (usage, high-water) bytes.
    pub fn memory_usage(&self, id: CgroupId) -> Option<(u64, u64)> {
        match self.node_ref(id)?.data() {
            CgroupData::Memory {
                usage_bytes,
                max_usage_bytes,
                ..
            } => Some((*usage_bytes, *max_usage_bytes)),
            _ => None,
        }
    }

    /// Sets an interface priority in a net_prio cgroup.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NoSuchCgroup`] / [`KernelError::InvalidOperation`]
    /// on bad targets.
    pub fn set_ifpriomap(
        &mut self,
        id: CgroupId,
        iface: &str,
        prio: u32,
    ) -> Result<(), KernelError> {
        match self.node_mut(id) {
            Some(n) => match &mut n.data {
                CgroupData::NetPrio { ifpriomap } => {
                    ifpriomap.insert(iface.to_string(), prio);
                    Ok(())
                }
                _ => Err(KernelError::InvalidOperation(format!(
                    "{id} is not a net_prio cgroup"
                ))),
            },
            None => Err(KernelError::NoSuchCgroup(id)),
        }
    }

    /// Registers a newly created host interface in every net_prio cgroup
    /// (the kernel's `netprio` handler iterates all of `init_net`'s devices,
    /// so every group's map covers every host device — the leak).
    pub fn register_host_iface(&mut self, iface: &str) {
        for n in self.nodes.iter_mut().flatten() {
            if let CgroupData::NetPrio { ifpriomap } = &mut n.data {
                ifpriomap.entry(iface.to_string()).or_insert(0);
            }
        }
    }

    /// Drops a removed host interface from every net_prio cgroup
    /// (interface teardown, e.g. a container veth). Without this, churny
    /// create/destroy loops grow every map without bound — and a later
    /// interface that happens to reuse the name would resurrect the dead
    /// device's priority instead of starting at 0.
    pub fn unregister_host_iface(&mut self, iface: &str) {
        for n in self.nodes.iter_mut().flatten() {
            if let CgroupData::NetPrio { ifpriomap } = &mut n.data {
                ifpriomap.remove(iface);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> CgroupForest {
        CgroupForest::new(4, &["lo".into(), "eth0".into()])
    }

    #[test]
    fn roots_exist_for_all_kinds() {
        let f = forest();
        for kind in CgroupKind::ALL {
            let root = f.node(f.root(kind)).unwrap();
            assert_eq!(root.path(), "/");
            assert_eq!(root.kind(), kind);
        }
    }

    #[test]
    fn child_paths_compose() {
        let mut f = forest();
        let root = f.root(CgroupKind::Cpuacct);
        let docker = f.create_child(root, "docker", &[]).unwrap();
        let c1 = f.create_child(docker, "c1", &[]).unwrap();
        assert_eq!(f.node(docker).unwrap().path(), "/docker");
        assert_eq!(f.node(c1).unwrap().path(), "/docker/c1");
        assert_eq!(f.ancestor_chain(c1), vec![c1, docker, root]);
    }

    #[test]
    fn cpu_charge_propagates_to_ancestors() {
        let mut f = forest();
        let root = f.root(CgroupKind::Cpuacct);
        let child = f.create_child(root, "c", &[]).unwrap();
        f.charge_cpu(child, 1, 500);
        f.charge_cpu(child, 2, 300);
        assert_eq!(f.cpuacct_usage_ns(child), Some(800));
        assert_eq!(f.cpuacct_usage_ns(root), Some(800));
        assert_eq!(f.cpuacct_usage_percpu(child).unwrap()[1], 500);
    }

    #[test]
    fn perf_charge_requires_monitoring() {
        let mut f = forest();
        let root = f.root(CgroupKind::PerfEvent);
        let child = f.create_child(root, "c", &[]).unwrap();
        let delta = PerfCounters {
            instructions: 100,
            cache_misses: 5,
            branch_misses: 2,
            cycles: 80,
        };
        f.charge_perf(child, &delta);
        assert_eq!(f.perf_counters(child).unwrap().instructions, 0);

        f.set_perf_monitoring(child, true).unwrap();
        f.charge_perf(child, &delta);
        assert_eq!(f.perf_counters(child).unwrap().instructions, 100);
        // Root is not monitoring: unchanged.
        assert_eq!(f.perf_counters(root).unwrap().instructions, 0);
    }

    #[test]
    fn removing_root_or_parent_fails() {
        let mut f = forest();
        let root = f.root(CgroupKind::Memory);
        assert!(f.remove(root).is_err());
        let child = f.create_child(root, "a", &[]).unwrap();
        let grand = f.create_child(child, "b", &[]).unwrap();
        assert!(f.remove(child).is_err());
        f.remove(grand).unwrap();
        f.remove(child).unwrap();
    }

    #[test]
    fn ifpriomap_covers_host_devices_in_new_groups() {
        let mut f = CgroupForest::new(2, &["lo".into(), "eth0".into()]);
        f.register_host_iface("veth1a2b");
        let root = f.root(CgroupKind::NetPrio);
        let child = f
            .create_child(root, "c", &["lo".into(), "eth0".into(), "veth1a2b".into()])
            .unwrap();
        match f.node(child).unwrap().data() {
            CgroupData::NetPrio { ifpriomap } => {
                assert!(ifpriomap.contains_key("veth1a2b"));
            }
            _ => panic!("wrong data"),
        }
    }

    #[test]
    fn perf_counter_delta_saturates() {
        let a = PerfCounters {
            instructions: 10,
            cache_misses: 1,
            branch_misses: 1,
            cycles: 9,
        };
        let b = PerfCounters {
            instructions: 4,
            cache_misses: 3,
            branch_misses: 0,
            cycles: 5,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.instructions, 0, "saturates instead of underflowing");
        assert_eq!(d.cache_misses, 2);
        let d2 = a.delta_since(&b);
        assert_eq!(d2.instructions, 6);
        assert_eq!(d2.cycles, 4);
    }

    #[test]
    fn memory_usage_tracks_high_water() {
        let mut f = forest();
        let root = f.root(CgroupKind::Memory);
        let c = f.create_child(root, "c", &[]).unwrap();
        f.set_memory_usage(c, 100);
        f.set_memory_usage(c, 40);
        match f.node(c).unwrap().data() {
            CgroupData::Memory {
                usage_bytes,
                max_usage_bytes,
                ..
            } => {
                assert_eq!(*usage_bytes, 40);
                assert_eq!(*max_usage_bytes, 100);
            }
            _ => panic!("wrong data"),
        }
    }
}
