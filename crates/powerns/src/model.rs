//! Power modeling (§V-B2, Formula 2).
//!
//! ```text
//! M_core    = F(CM/C, BM/C) · I + α
//! M_dram    = β · CM + γ
//! M_package = M_core + M_dram + λ
//! ```
//!
//! with `F` a multiple linear regression over the per-instruction miss
//! rates plus a cycle term, so the core model is linear in the features
//! `[I, CM, BM, C, 1]` (`F·I = f0·I + f1·CM + f2·BM`, and the `C`
//! coefficient captures busy-time baseline power — the cycles are already
//! collected per Fig. 5's data-collection stage, so this stays within the
//! paper's measured inputs). The paper
//! motivates this over plain CPU-utilization models: energy is almost
//! strictly linear in retired instructions *per workload*, but the slope
//! varies with the workload's microarchitectural mix (Fig. 6) — the miss
//! rates recover the slope. Training runs the paper's calibration set
//! (idle loop, prime, libquantum, stress) and fits by least squares.

use serde::{Deserialize, Serialize};
use simkernel::cgroup::PerfCounters;
use simkernel::kernel::ProcessSpec;
use simkernel::{Kernel, MachineConfig};
use workloads::WorkloadSpec;

use crate::collect::PerfSampler;

/// One training observation: per-interval counter deltas plus the
/// ground-truth RAPL energy deltas for the same interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelSample {
    /// Retired instructions in the interval.
    pub instructions: f64,
    /// Cache misses.
    pub cache_misses: f64,
    /// Branch misses.
    pub branch_misses: f64,
    /// CPU cycles.
    pub cycles: f64,
    /// Ground-truth core-domain energy, µJ.
    pub core_uj: f64,
    /// Ground-truth DRAM-domain energy, µJ.
    pub dram_uj: f64,
    /// Ground-truth package-domain energy, µJ.
    pub package_uj: f64,
}

impl ModelSample {
    fn core_features(&self) -> [f64; 5] {
        [
            self.instructions,
            self.cache_misses,
            self.branch_misses,
            self.cycles,
            1.0,
        ]
    }
}

/// The fitted per-container power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Coefficients over `[I, CM, BM, C, 1]` (µJ).
    pub core_coef: [f64; 5],
    /// `[β, γ]` over `[CM, 1]` (µJ).
    pub dram_coef: [f64; 2],
    /// `λ`: package constant beyond core + dram (µJ per interval).
    pub lambda_uj: f64,
}

impl PowerModel {
    /// Fits the model to training samples by least squares.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 samples are supplied (the normal equations
    /// would be singular) — training always produces hundreds.
    pub fn fit(samples: &[ModelSample]) -> Self {
        assert!(samples.len() >= 8, "need at least 8 training samples");
        let xs: Vec<[f64; 5]> = samples.iter().map(|s| s.core_features()).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.core_uj).collect();
        let core_coef = least_squares::<5>(&xs, &ys);

        let xd: Vec<[f64; 2]> = samples.iter().map(|s| [s.cache_misses, 1.0]).collect();
        let yd: Vec<f64> = samples.iter().map(|s| s.dram_uj).collect();
        let dram_coef = least_squares::<2>(&xd, &yd);

        let lambda_uj = samples
            .iter()
            .map(|s| s.package_uj - s.core_uj - s.dram_uj)
            .sum::<f64>()
            / samples.len() as f64;

        PowerModel {
            core_coef,
            dram_coef,
            lambda_uj,
        }
    }

    /// Modeled core energy for an interval's counter deltas, µJ.
    pub fn core_uj(&self, d: &PerfCounters) -> f64 {
        let s = ModelSample {
            instructions: d.instructions as f64,
            cache_misses: d.cache_misses as f64,
            branch_misses: d.branch_misses as f64,
            cycles: d.cycles as f64,
            core_uj: 0.0,
            dram_uj: 0.0,
            package_uj: 0.0,
        };
        dot(&self.core_coef, &s.core_features()).max(0.0)
    }

    /// Modeled DRAM energy, µJ.
    pub fn dram_uj(&self, d: &PerfCounters) -> f64 {
        (self.dram_coef[0] * d.cache_misses as f64 + self.dram_coef[1]).max(0.0)
    }

    /// Modeled package energy (`M_core + M_dram + λ`), µJ.
    pub fn package_uj(&self, d: &PerfCounters) -> f64 {
        self.core_uj(d) + self.dram_uj(d) + self.lambda_uj.max(0.0)
    }
}

fn dot<const N: usize>(a: &[f64; N], b: &[f64; N]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Ordinary least squares via normal equations + Gaussian elimination
/// with partial pivoting. `N` is small (2 or 4), so this is exact enough.
fn least_squares<const N: usize>(xs: &[[f64; N]], ys: &[f64]) -> [f64; N] {
    // Normalize features to comparable scales for conditioning.
    let mut scale = [0.0f64; N];
    for x in xs {
        for i in 0..N {
            scale[i] = scale[i].max(x[i].abs());
        }
    }
    for s in &mut scale {
        if *s == 0.0 {
            *s = 1.0;
        }
    }
    let mut ata = [[0.0f64; N]; N];
    let mut atb = [0.0f64; N];
    for (x, y) in xs.iter().zip(ys) {
        let xn: Vec<f64> = (0..N).map(|i| x[i] / scale[i]).collect();
        for i in 0..N {
            for j in 0..N {
                ata[i][j] += xn[i] * xn[j];
            }
            atb[i] += xn[i] * y;
        }
    }
    // Ridge epsilon for numerical safety.
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-9;
    }
    let sol = gauss_solve::<N>(&mut ata, &mut atb);
    let mut out = [0.0f64; N];
    for i in 0..N {
        out[i] = sol[i] / scale[i];
    }
    out
}

fn gauss_solve<const N: usize>(a: &mut [[f64; N]; N], b: &mut [f64; N]) -> [f64; N] {
    for col in 0..N {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..N {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-30 {
            continue;
        }
        for row in (col + 1)..N {
            let factor = a[row][col] / diag;
            let pivot_row = a[col];
            for (k, pivot) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * pivot;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; N];
    for col in (0..N).rev() {
        let mut sum = b[col];
        for k in (col + 1)..N {
            sum -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-30 {
            0.0
        } else {
            sum / a[col][col]
        };
    }
    x
}

/// A (benchmark name, cumulative instructions or misses, cumulative
/// energy µJ) point series — the data behind Fig. 6 / Fig. 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyCurve {
    /// Workload name.
    pub name: String,
    /// (x, energy µJ) samples; x = instructions (Fig. 6) or cache misses
    /// (Fig. 7).
    pub points: Vec<(f64, f64)>,
}

impl EnergyCurve {
    /// Least-squares slope of the curve (µJ per x-unit).
    pub fn slope(&self) -> f64 {
        let n = self.points.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let (sx, sy): (f64, f64) = self
            .points
            .iter()
            .fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
        let (mx, my) = (sx / n, sy / n);
        let mut num = 0.0;
        let mut den = 0.0;
        for (x, y) in &self.points {
            num += (x - mx) * (y - my);
            den += (x - mx) * (x - mx);
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Coefficient of determination (R²) of the linear fit — the paper's
    /// "almost strictly linear" claim quantified.
    pub fn r_squared(&self) -> f64 {
        let slope = self.slope();
        let n = self.points.len() as f64;
        let my = self.points.iter().map(|(_, y)| y).sum::<f64>() / n;
        let mx = self.points.iter().map(|(x, _)| x).sum::<f64>() / n;
        let intercept = my - slope * mx;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (x, y) in &self.points {
            let pred = slope * x + intercept;
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - my) * (y - my);
        }
        if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

/// Training driver: runs calibration workloads on a dedicated testbed
/// kernel, collecting [`ModelSample`]s per 1 s interval.
///
/// ```
/// use powerns::Trainer;
/// use simkernel::cgroup::PerfCounters;
///
/// let model = Trainer::new(1).train();
/// let busy = PerfCounters {
///     instructions: 8_000_000_000,
///     cache_misses: 400_000,
///     branch_misses: 3_000_000,
///     cycles: 3_400_000_000,
/// };
/// // One busy core-second costs a plausible number of joules.
/// let joules = model.core_uj(&busy) / 1e6;
/// assert!(joules > 1.0 && joules < 30.0);
/// ```
#[derive(Debug)]
pub struct Trainer {
    machine: MachineConfig,
    seed: u64,
    secs_per_workload: u64,
    faults: Option<simkernel::FaultPlan>,
}

/// Result of one checked calibration run: the accepted samples plus the
/// count of 1 s windows rejected because a RAPL accumulator reset (host
/// crash-reboot) fell inside them. A reset window's energy delta is
/// negative garbage; feeding it to the regression would bias every
/// coefficient, so the trainer drops the window and re-baselines.
#[derive(Debug, Clone)]
pub struct CalibrationRun {
    /// Accepted training observations.
    pub samples: Vec<ModelSample>,
    /// Windows discarded because a counter reset fell inside them.
    pub rejected_windows: u32,
}

impl Trainer {
    /// A trainer on the paper's i7-6700 testbed.
    pub fn new(seed: u64) -> Self {
        Trainer {
            machine: MachineConfig::testbed_i7_6700(),
            seed,
            secs_per_workload: 60,
            faults: None,
        }
    }

    /// Overrides the machine.
    #[must_use]
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Installs a fault plan on every training kernel (testing aid: lets
    /// the fault matrix calibrate under injected crash-reboots).
    #[must_use]
    pub fn faults(mut self, plan: simkernel::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Collects training samples for one workload run solo in a container
    /// on a fresh kernel. Reset-spanning windows are silently dropped;
    /// use [`Trainer::collect_samples_checked`] to see how many.
    pub fn collect_samples(&self, workload: &WorkloadSpec) -> Vec<ModelSample> {
        self.collect_samples_checked(workload).samples
    }

    /// Collects training samples and reports rejected windows. A window
    /// whose ground-truth energy delta is negative spans an accumulator
    /// reset (the modeled crash-reboot zeroes RAPL); the window is
    /// rejected, the baseline re-anchored, and collection continues.
    pub fn collect_samples_checked(&self, workload: &WorkloadSpec) -> CalibrationRun {
        let mut k = Kernel::new(self.machine.clone(), self.seed);
        let env = k.create_container_env("train").expect("container env");
        let mut sampler = PerfSampler::attach(&mut k, env.cgroups.perf_event).expect("perf attach");
        // Four copies, as the paper runs multi-threaded benchmarks.
        for i in 0..4 {
            k.spawn(ProcessSpec::new(format!("w{i}"), workload.clone()).in_container(&env))
                .expect("training workload");
        }
        if let Some(plan) = &self.faults {
            k.install_faults(plan.clone());
        }
        let mut rapl_last = raw_rapl(&k);
        let mut samples = Vec::with_capacity(self.secs_per_workload as usize);
        let mut rejected = 0u32;
        for _ in 0..self.secs_per_workload {
            k.advance_secs(1);
            let d = sampler.delta(&k, env.cgroups.perf_event);
            let rapl = raw_rapl(&k);
            let (core, dram, pkg) = (
                rapl.0 - rapl_last.0,
                rapl.1 - rapl_last.1,
                rapl.2 - rapl_last.2,
            );
            if core < 0.0 || dram < 0.0 || pkg < 0.0 {
                rejected += 1;
            } else {
                samples.push(ModelSample {
                    instructions: d.instructions as f64,
                    cache_misses: d.cache_misses as f64,
                    branch_misses: d.branch_misses as f64,
                    cycles: d.cycles as f64,
                    core_uj: core,
                    dram_uj: dram,
                    package_uj: pkg,
                });
            }
            rapl_last = rapl;
        }
        CalibrationRun {
            samples,
            rejected_windows: rejected,
        }
    }

    /// Runs the full training campaign over the paper's calibration set
    /// and fits the model.
    pub fn train(&self) -> PowerModel {
        let mut set = workloads::models::training_set();
        set.push(workloads::models::sleeper()); // pins the idle baseline
        self.train_with(&set)
    }

    /// Fits a model on a custom calibration set. Production deployments
    /// should include workloads representative of the tenant mix: any
    /// systematic bias on the *dominant* load survives Formula 3's
    /// calibration as a small load-correlated ripple in every container's
    /// reading (see the `defense_fleet` experiment), and representative
    /// calibration is what shrinks it.
    pub fn train_with(&self, set: &[WorkloadSpec]) -> PowerModel {
        let mut samples = Vec::new();
        for w in set {
            samples.extend(self.collect_samples(w));
        }
        PowerModel::fit(&samples)
    }

    /// Generates a Fig. 6 / Fig. 7 curve for one workload: cumulative
    /// (instructions, core energy) and (cache misses, DRAM energy).
    pub fn energy_curves(&self, workload: &WorkloadSpec) -> (EnergyCurve, EnergyCurve) {
        let samples = self.collect_samples(workload);
        let mut instr = 0.0;
        let mut cm = 0.0;
        let mut core = 0.0;
        let mut dram = 0.0;
        let mut fig6 = Vec::new();
        let mut fig7 = Vec::new();
        for s in samples {
            instr += s.instructions;
            cm += s.cache_misses;
            core += s.core_uj;
            dram += s.dram_uj;
            fig6.push((instr, core));
            fig7.push((cm, dram));
        }
        (
            EnergyCurve {
                name: workload.name().to_string(),
                points: fig6,
            },
            EnergyCurve {
                name: workload.name().to_string(),
                points: fig7,
            },
        )
    }
}

fn raw_rapl(k: &Kernel) -> (f64, f64, f64) {
    let mut core = 0.0;
    let mut dram = 0.0;
    let mut pkg = 0.0;
    for p in 0..k.rapl().package_count() {
        let raw = k.rapl().raw(p).expect("package exists");
        core += raw.core_uj;
        dram += raw.dram_uj;
        pkg += raw.package_uj;
    }
    (core, dram, pkg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::models;

    #[test]
    fn least_squares_recovers_exact_coefficients() {
        // y = 3x0 + 0.5x1 + 7
        let xs: Vec<[f64; 3]> = (0..50)
            .map(|i| [i as f64, (i * i % 17) as f64, 1.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 0.5 * x[1] + 7.0).collect();
        let c = least_squares::<3>(&xs, &ys);
        assert!((c[0] - 3.0).abs() < 1e-6, "{c:?}");
        assert!((c[1] - 0.5).abs() < 1e-6, "{c:?}");
        assert!((c[2] - 7.0).abs() < 1e-5, "{c:?}");
    }

    #[test]
    fn fig6_curves_are_linear_with_distinct_slopes() {
        let trainer = Trainer::new(1001);
        let (prime6, _) = trainer.energy_curves(&models::prime());
        let (quantum6, _) = trainer.energy_curves(&models::libquantum());
        assert!(prime6.r_squared() > 0.99, "prime R² {}", prime6.r_squared());
        assert!(
            quantum6.r_squared() > 0.99,
            "libquantum R² {}",
            quantum6.r_squared()
        );
        // Energy per instruction differs with the workload mix: the
        // streaming benchmark pays far more per instruction.
        assert!(
            quantum6.slope() > prime6.slope() * 1.2,
            "slopes: quantum {} vs prime {}",
            quantum6.slope(),
            prime6.slope()
        );
    }

    #[test]
    fn fig7_dram_energy_linear_in_cache_misses() {
        let trainer = Trainer::new(1002);
        for w in [models::stress_vm(), models::libquantum()] {
            let (_, fig7) = trainer.energy_curves(&w);
            assert!(
                fig7.r_squared() > 0.98,
                "{} R² {}",
                w.name(),
                fig7.r_squared()
            );
            assert!(fig7.slope() > 0.0);
        }
    }

    #[test]
    fn trained_model_predicts_training_set_well() {
        let trainer = Trainer::new(1003);
        let model = trainer.train();
        // In-sample check on a fresh stress run.
        let samples = trainer.collect_samples(&models::stress_small());
        let (mut pred, mut truth) = (0.0, 0.0);
        for s in &samples {
            let d = PerfCounters {
                instructions: s.instructions as u64,
                cache_misses: s.cache_misses as u64,
                branch_misses: s.branch_misses as u64,
                cycles: s.cycles as u64,
            };
            pred += model.package_uj(&d);
            truth += s.package_uj;
        }
        let err = (pred - truth).abs() / truth;
        assert!(err < 0.12, "in-sample package error {err}");
    }

    #[test]
    fn calibration_rejects_reset_spanning_windows() {
        let base = Trainer::new(1005);
        let clean = base.collect_samples_checked(&models::prime());
        assert_eq!(clean.rejected_windows, 0, "fault-free run rejected windows");

        let faulted = Trainer::new(1005).faults(
            simkernel::FaultPlan::builder(1005)
                .horizon_secs(60)
                .reboot_at_secs(30)
                .build(),
        );
        let run = faulted.collect_samples_checked(&models::prime());
        assert_eq!(
            run.rejected_windows, 1,
            "exactly the reboot-spanning window is dropped"
        );
        assert_eq!(run.samples.len(), clean.samples.len() - 1);
        for s in &run.samples {
            assert!(
                s.core_uj >= 0.0 && s.dram_uj >= 0.0 && s.package_uj >= 0.0,
                "negative energy delta leaked into calibration: {s:?}"
            );
        }
        // The surviving samples still support a sane fit.
        let model = PowerModel::fit(&run.samples);
        let busy = PerfCounters {
            instructions: 8_000_000_000,
            cache_misses: 400_000,
            branch_misses: 3_000_000,
            cycles: 3_400_000_000,
        };
        let joules = model.core_uj(&busy) / 1e6;
        assert!(joules > 1.0 && joules < 30.0, "degraded fit: {joules} J");
    }

    #[test]
    fn model_is_monotone_in_work() {
        let model = Trainer::new(1004).train();
        let small = PerfCounters {
            instructions: 1_000_000_000,
            cache_misses: 1_000_000,
            branch_misses: 2_000_000,
            cycles: 2_000_000_000,
        };
        let big = PerfCounters {
            instructions: 8_000_000_000,
            cache_misses: 8_000_000,
            branch_misses: 16_000_000,
            cycles: 16_000_000_000,
        };
        assert!(model.package_uj(&big) > model.package_uj(&small));
        assert!(model.dram_uj(&big) > model.dram_uj(&small));
    }

    #[test]
    fn curve_math_on_synthetic_data() {
        let c = EnergyCurve {
            name: "t".into(),
            points: (0..20).map(|i| (i as f64, 2.0 * i as f64 + 5.0)).collect(),
        };
        assert!((c.slope() - 2.0).abs() < 1e-9);
        assert!((c.r_squared() - 1.0).abs() < 1e-12);
    }
}
