//! Data collection (§V-B1).
//!
//! Thin sampling layer over the kernel's perf-event cgroup counters: the
//! namespace initialization attaches one event per (type × CPU) with a
//! `TASK_TOMBSTONE` owner (see [`simkernel::perf`]); this module reads the
//! accumulated counters and produces per-interval deltas for the model.

use simkernel::cgroup::{CgroupId, PerfCounters};
use simkernel::{Kernel, KernelError};

/// Samples per-interval deltas of one perf_event cgroup's counters.
#[derive(Debug, Clone, Default)]
pub struct PerfSampler {
    last: PerfCounters,
    primed: bool,
}

impl PerfSampler {
    /// Creates an unprimed sampler.
    pub fn new() -> Self {
        PerfSampler::default()
    }

    /// Attaches monitoring to `cgroup` and primes the sampler at the
    /// current counter values.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors for invalid cgroups.
    pub fn attach(kernel: &mut Kernel, cgroup: CgroupId) -> Result<Self, KernelError> {
        kernel.attach_perf_monitoring(cgroup)?;
        Ok(PerfSampler {
            last: kernel.cgroups().perf_counters(cgroup).unwrap_or_default(),
            primed: true,
        })
    }

    /// Whether the sampler has a baseline.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// The delta since the previous call (or since attach), advancing the
    /// baseline. Returns zeroed counters for unknown cgroups.
    pub fn delta(&mut self, kernel: &Kernel, cgroup: CgroupId) -> PerfCounters {
        let cur = kernel.cgroups().perf_counters(cgroup).unwrap_or_default();
        let d = cur.delta_since(&self.last);
        self.last = cur;
        self.primed = true;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::kernel::ProcessSpec;
    use simkernel::MachineConfig;
    use workloads::models;

    #[test]
    fn deltas_track_container_work_only() {
        let mut k = Kernel::new(MachineConfig::small_server(), 5);
        let env = k.create_container_env("c").unwrap();
        let mut sampler = PerfSampler::attach(&mut k, env.cgroups.perf_event).unwrap();
        // Host work should not appear in the container's counters.
        k.spawn_host_process("host-noise", models::prime()).unwrap();
        k.advance_secs(2);
        let d = sampler.delta(&k, env.cgroups.perf_event);
        assert_eq!(
            d.instructions, 0,
            "host work leaked into container counters"
        );

        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(2);
        let d = sampler.delta(&k, env.cgroups.perf_event);
        assert!(d.instructions > 1_000_000_000);
        assert!(d.cycles > 0);
        // Prime's characteristic mix.
        let cmpki = d.cache_misses as f64 / d.instructions as f64 * 1000.0;
        assert!((0.01..0.2).contains(&cmpki), "cmpki {cmpki}");
    }

    #[test]
    fn consecutive_deltas_are_disjoint() {
        let mut k = Kernel::new(MachineConfig::small_server(), 6);
        let env = k.create_container_env("c").unwrap();
        let mut sampler = PerfSampler::attach(&mut k, env.cgroups.perf_event).unwrap();
        k.spawn(ProcessSpec::new("app", models::prime()).in_container(&env))
            .unwrap();
        k.advance_secs(1);
        let d1 = sampler.delta(&k, env.cgroups.perf_event);
        k.advance_secs(1);
        let d2 = sampler.delta(&k, env.cgroups.perf_event);
        let total_from_deltas = d1.instructions + d2.instructions;
        let total = k
            .cgroups()
            .perf_counters(env.cgroups.perf_event)
            .unwrap()
            .instructions;
        assert_eq!(total_from_deltas, total);
    }

    #[test]
    fn attach_creates_tombstone_events() {
        let mut k = Kernel::new(MachineConfig::small_server(), 7);
        let env = k.create_container_env("c").unwrap();
        let _ = PerfSampler::attach(&mut k, env.cgroups.perf_event).unwrap();
        // 4 event types × 4 CPUs.
        assert_eq!(k.perf().events().len(), 16);
        assert!(k.perf().events().iter().all(|e| e.tombstone_owner));
    }
}
