//! The power-based namespace itself: per-container energy views served
//! through the unchanged RAPL interface (§V-B3, Formula 3).
//!
//! Every read interval the namespace models the energy of each container
//! and of the whole host from perf counters, then calibrates against the
//! actual hardware counter:
//!
//! ```text
//! E_container += M_container / M_host × ΔE_RAPL
//! ```
//!
//! so modeling bias largely cancels (it appears in both numerator and
//! denominator), which is why the paper's Fig. 8 errors stay below 5 %.
//! A container only ever sees its own accumulated `E_container`; the
//! host-wide counter — the synergistic attack's oracle — is gone.

use std::collections::HashMap;

use container_runtime::{ContainerId, ContainerSpec, Runtime, RuntimeError};
use simkernel::{Kernel, KernelError, MachineConfig, NANOS_PER_SEC};
use workloads::WorkloadSpec;

use crate::collect::PerfSampler;
use crate::model::PowerModel;

/// Per-container namespace state.
#[derive(Debug)]
struct ContainerPower {
    sampler: PerfSampler,
    perf_cgroup: simkernel::cgroup::CgroupId,
    cpuacct_cgroup: simkernel::cgroup::CgroupId,
    cpuacct_last: Vec<u64>,
    core_uj: f64,
    dram_uj: f64,
    package_uj: f64,
    /// Package-domain energy split by physical package, using the
    /// container's per-CPU cpuacct deltas as attribution weights — a
    /// container pinned to socket 1 accumulates in `intel-rapl:1`.
    per_package_uj: Vec<f64>,
}

/// The power-based namespace: models, calibrates and accumulates
/// per-container energy.
#[derive(Debug)]
pub struct PowerNamespace {
    model: PowerModel,
    host_sampler: PerfSampler,
    host_root: simkernel::cgroup::CgroupId,
    containers: HashMap<ContainerId, ContainerPower>,
    rapl_last: (f64, f64, f64),
}

impl PowerNamespace {
    /// Installs the namespace on a kernel: attaches perf monitoring to the
    /// root perf_event cgroup (the host-wide model input).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn install(kernel: &mut Kernel, model: PowerModel) -> Result<Self, KernelError> {
        let root = kernel.cgroups().root(simkernel::CgroupKind::PerfEvent);
        let host_sampler = PerfSampler::attach(kernel, root)?;
        Ok(PowerNamespace {
            model,
            host_sampler,
            host_root: root,
            containers: HashMap::new(),
            rapl_last: raw_rapl(kernel),
        })
    }

    /// Registers a container at namespace initialization: creates its perf
    /// events and starts accumulation from zero.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn register(
        &mut self,
        kernel: &mut Kernel,
        id: ContainerId,
        perf_cgroup: simkernel::cgroup::CgroupId,
    ) -> Result<(), KernelError> {
        self.register_with_cpuacct(kernel, id, perf_cgroup, None)
    }

    /// Like [`PowerNamespace::register`], additionally wiring the
    /// container's cpuacct cgroup so package-domain energy can be split
    /// across physical packages by where the container actually ran.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn register_with_cpuacct(
        &mut self,
        kernel: &mut Kernel,
        id: ContainerId,
        perf_cgroup: simkernel::cgroup::CgroupId,
        cpuacct_cgroup: Option<simkernel::cgroup::CgroupId>,
    ) -> Result<(), KernelError> {
        let sampler = PerfSampler::attach(kernel, perf_cgroup)?;
        let cpuacct =
            cpuacct_cgroup.unwrap_or_else(|| kernel.cgroups().root(simkernel::CgroupKind::Cpuacct));
        let cpuacct_last = kernel
            .cgroups()
            .cpuacct_usage_percpu(cpuacct)
            .map(<[u64]>::to_vec)
            .unwrap_or_default();
        let npkg = kernel.rapl().package_count();
        self.containers.insert(
            id,
            ContainerPower {
                sampler,
                perf_cgroup,
                cpuacct_cgroup: cpuacct,
                cpuacct_last,
                core_uj: 0.0,
                dram_uj: 0.0,
                package_uj: 0.0,
                per_package_uj: vec![0.0; npkg],
            },
        );
        Ok(())
    }

    /// Removes a container's accounting.
    pub fn unregister(&mut self, id: ContainerId) {
        self.containers.remove(&id);
    }

    /// One calibration interval (Formula 3): must be called after every
    /// simulation step whose energy should be attributed.
    pub fn update(&mut self, kernel: &Kernel) {
        let rapl = raw_rapl(kernel);
        let d_core = rapl.0 - self.rapl_last.0;
        let d_dram = rapl.1 - self.rapl_last.1;
        let d_pkg = rapl.2 - self.rapl_last.2;
        self.rapl_last = rapl;

        let host_delta = self.host_sampler.delta(kernel, self.host_root);
        let m_host_core = self.model.core_uj(&host_delta).max(1.0);
        let m_host_dram = self.model.dram_uj(&host_delta).max(1.0);
        let m_host_pkg = self.model.package_uj(&host_delta).max(1.0);

        for c in self.containers.values_mut() {
            let d = c.sampler.delta(kernel, c.perf_cgroup);
            let pkg_delta = (self.model.package_uj(&d) / m_host_pkg * d_pkg).max(0.0);
            c.core_uj += (self.model.core_uj(&d) / m_host_core * d_core).max(0.0);
            c.dram_uj += (self.model.dram_uj(&d) / m_host_dram * d_dram).max(0.0);
            c.package_uj += pkg_delta;

            // Split by where the container's CPU time landed this interval.
            let percpu = kernel
                .cgroups()
                .cpuacct_usage_percpu(c.cpuacct_cgroup)
                .map(<[u64]>::to_vec)
                .unwrap_or_default();
            let mut per_pkg_ns = vec![0u64; c.per_package_uj.len()];
            for (cpu, now) in percpu.iter().enumerate() {
                let last = c.cpuacct_last.get(cpu).copied().unwrap_or(0);
                let pkg = kernel.hw().package_of(cpu);
                if pkg < per_pkg_ns.len() {
                    per_pkg_ns[pkg] += now.saturating_sub(last);
                }
            }
            let total_ns: u64 = per_pkg_ns.iter().sum();
            if total_ns > 0 {
                for (pkg, ns) in per_pkg_ns.iter().enumerate() {
                    c.per_package_uj[pkg] += pkg_delta * (*ns as f64 / total_ns as f64);
                }
            } else if let Some(first) = c.per_package_uj.first_mut() {
                // Idle container: its constant share lands on package 0.
                *first += pkg_delta;
            }
            c.cpuacct_last = percpu;
        }
    }

    /// The container's calibrated (core, dram, package) energy in µJ, or
    /// `None` if unregistered.
    pub fn energy_uj(&self, id: ContainerId) -> Option<(u64, u64, u64)> {
        self.containers
            .get(&id)
            .map(|c| (c.core_uj as u64, c.dram_uj as u64, c.package_uj as u64))
    }

    /// The container's calibrated package-domain energy for one physical
    /// package (the value `intel-rapl:{pkg}/energy_uj` serves).
    pub fn package_energy_uj(&self, id: ContainerId, pkg: usize) -> Option<u64> {
        self.containers
            .get(&id)
            .and_then(|c| c.per_package_uj.get(pkg))
            .map(|v| *v as u64)
    }
}

fn raw_rapl(k: &Kernel) -> (f64, f64, f64) {
    let mut t = (0.0, 0.0, 0.0);
    for p in 0..k.rapl().package_count() {
        let raw = k.rapl().raw(p).expect("package exists");
        t.0 += raw.core_uj;
        t.1 += raw.dram_uj;
        t.2 += raw.package_uj;
    }
    t
}

/// A host with the power-based namespace deployed: the kernel, a container
/// runtime, and the modified RAPL read path.
#[derive(Debug)]
pub struct DefendedHost {
    /// The kernel.
    pub kernel: Kernel,
    /// The runtime.
    pub runtime: Runtime,
    ns: PowerNamespace,
}

impl DefendedHost {
    /// Boots a defended host with a pre-trained model.
    pub fn new(machine: MachineConfig, seed: u64, model: PowerModel) -> Self {
        let mut kernel = Kernel::new(machine, seed);
        let ns = PowerNamespace::install(&mut kernel, model).expect("namespace install");
        DefendedHost {
            kernel,
            runtime: Runtime::new(),
            ns,
        }
    }

    /// Creates a container registered with the power namespace.
    ///
    /// # Errors
    ///
    /// Propagates runtime/kernel errors.
    pub fn create_container(&mut self, spec: ContainerSpec) -> Result<ContainerId, RuntimeError> {
        let id = self.runtime.create(&mut self.kernel, spec)?;
        let cgroups = self
            .runtime
            .container(id)
            .expect("just created")
            .env()
            .cgroups;
        self.ns
            .register_with_cpuacct(
                &mut self.kernel,
                id,
                cgroups.perf_event,
                Some(cgroups.cpuacct),
            )
            .map_err(RuntimeError::Kernel)?;
        Ok(id)
    }

    /// Runs a process inside a container.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn exec(
        &mut self,
        id: ContainerId,
        name: &str,
        workload: WorkloadSpec,
    ) -> Result<simkernel::HostPid, RuntimeError> {
        self.runtime.exec(&mut self.kernel, id, name, workload)
    }

    /// Advances time in 1 s calibration intervals.
    pub fn advance_secs(&mut self, secs: u64) {
        for _ in 0..secs {
            self.kernel.advance(NANOS_PER_SEC);
            self.ns.update(&self.kernel);
        }
    }

    /// Reads a pseudo file from a container, with the RAPL read path
    /// replaced: `energy_uj` under the powercap tree returns the
    /// container's calibrated energy instead of the host counter. All
    /// other paths are unchanged — the namespace is *transparent*.
    ///
    /// # Errors
    ///
    /// Propagates pseudo-fs errors.
    pub fn read_file(&self, id: ContainerId, path: &str) -> Result<String, RuntimeError> {
        if let Some(domain) = rapl_read(path) {
            if let Some((core, dram, pkg)) = self.ns.energy_uj(id) {
                let npkg = self.kernel.rapl().package_count().max(1);
                let v = match domain {
                    RaplDomain::Package(p) => self.ns.package_energy_uj(id, p).unwrap_or(0),
                    // Core/dram domains split proportionally to the
                    // package attribution.
                    RaplDomain::Core(p) => {
                        let share = self.pkg_share(id, p, pkg, npkg);
                        (core as f64 * share) as u64
                    }
                    RaplDomain::Dram(p) => {
                        let share = self.pkg_share(id, p, pkg, npkg);
                        (dram as f64 * share) as u64
                    }
                };
                return Ok(format!("{v}\n"));
            }
        }
        self.runtime.read_file(&self.kernel, id, path)
    }

    fn pkg_share(&self, id: ContainerId, pkg: usize, total_pkg_uj: u64, _npkg: usize) -> f64 {
        if total_pkg_uj == 0 {
            return 0.0;
        }
        self.ns
            .package_energy_uj(id, pkg)
            .map(|v| v as f64 / total_pkg_uj as f64)
            .unwrap_or(0.0)
    }

    /// The container's calibrated package energy (µJ), the defense-side
    /// ground truth used by the evaluation.
    pub fn container_energy_uj(&self, id: ContainerId) -> Option<u64> {
        self.ns.energy_uj(id).map(|(_, _, p)| p)
    }

    /// Host RAPL package energy (µJ) — visible to the *operator* only.
    pub fn host_energy_uj(&self) -> f64 {
        raw_rapl(&self.kernel).2
    }
}

enum RaplDomain {
    Package(usize),
    Core(usize),
    Dram(usize),
}

fn rapl_read(path: &str) -> Option<RaplDomain> {
    let segs: Vec<&str> = path.trim_start_matches('/').split('/').collect();
    match segs.as_slice() {
        ["sys", "class", "powercap", dom, "energy_uj"] => {
            let p: usize = dom.strip_prefix("intel-rapl:")?.parse().ok()?;
            Some(RaplDomain::Package(p))
        }
        ["sys", "class", "powercap", dom, sub, "energy_uj"] => {
            let p: usize = dom.strip_prefix("intel-rapl:")?.parse().ok()?;
            let rest = sub.strip_prefix("intel-rapl:")?;
            let (_, d) = rest.split_once(':')?;
            match d {
                "0" => Some(RaplDomain::Core(p)),
                "1" => Some(RaplDomain::Dram(p)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// The Fig. 8 accuracy experiment for one benchmark: runs it (4 copies)
/// in a defended container for 60 s alongside a light host background and
/// returns the paper's error metric
/// `ξ = |(E_RAPL − Δdiff) − M_container| / (E_RAPL − Δdiff)`.
pub fn fig8_error(model: &PowerModel, workload: &WorkloadSpec, seed: u64) -> f64 {
    // Paired idle run measures Δdiff: host-vs-container idle energy gap.
    let idle_host_uj;
    let idle_cont_uj;
    {
        let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), seed, model.clone());
        h.kernel
            .spawn_host_process("systemd-journal", workloads::models::web_service(0.05))
            .expect("background");
        let c = h
            .create_container(ContainerSpec::new("probe"))
            .expect("container");
        let e0 = h.host_energy_uj();
        h.advance_secs(60);
        idle_host_uj = h.host_energy_uj() - e0;
        idle_cont_uj = h.container_energy_uj(c).unwrap_or(0) as f64;
    }
    let delta_diff = (idle_host_uj - idle_cont_uj).max(0.0);

    let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), seed, model.clone());
    h.kernel
        .spawn_host_process("systemd-journal", workloads::models::web_service(0.05))
        .expect("background");
    let c = h
        .create_container(ContainerSpec::new("bench"))
        .expect("container");
    for i in 0..4 {
        h.exec(c, &format!("w{i}"), workload.clone())
            .expect("bench workload");
    }
    let e0 = h.host_energy_uj();
    h.advance_secs(60);
    let e_rapl = h.host_energy_uj() - e0;
    let m_container = h.container_energy_uj(c).unwrap_or(0) as f64;
    ((e_rapl - delta_diff) - m_container).abs() / (e_rapl - delta_diff)
}

/// Ablation of the on-the-fly calibration (Formula 3): the same Fig. 8
/// setup, but the container's reading is the *raw modeled* energy
/// `Σ M_container` with no calibration against the hardware counter.
/// Model bias (e.g. the unmodeled FP term) no longer cancels.
pub fn fig8_error_uncalibrated(model: &PowerModel, workload: &WorkloadSpec, seed: u64) -> f64 {
    let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), seed, model.clone());
    h.kernel
        .spawn_host_process("systemd-journal", workloads::models::web_service(0.05))
        .expect("background");
    let c = h
        .create_container(ContainerSpec::new("bench"))
        .expect("container");
    let perf_cg = h
        .runtime
        .container(c)
        .expect("container")
        .env()
        .cgroups
        .perf_event;
    for i in 0..4 {
        h.exec(c, &format!("w{i}"), workload.clone())
            .expect("bench workload");
    }
    let e0 = h.host_energy_uj();
    let mut last = h.kernel.cgroups().perf_counters(perf_cg).expect("counters");
    let mut modeled = 0.0;
    for _ in 0..60 {
        h.advance_secs(1);
        let cur = h.kernel.cgroups().perf_counters(perf_cg).expect("counters");
        modeled += model.package_uj(&cur.delta_since(&last));
        last = cur;
    }
    let e_rapl = h.host_energy_uj() - e0;
    (e_rapl - modeled).abs() / e_rapl
}

/// The Fig. 9 transparency experiment: two containers on one defended
/// host; container 1 runs `401.bzip2` from `t = 10 s` to `60 s`.
/// Returns 1 Hz power series `(host_w, container1_w, container2_w)`.
pub fn fig9_transparency(model: &PowerModel, seed: u64) -> Vec<(f64, f64, f64)> {
    let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), seed, model.clone());
    let c1 = h
        .create_container(ContainerSpec::new("worker"))
        .expect("c1");
    let c2 = h
        .create_container(ContainerSpec::new("bystander"))
        .expect("c2");
    h.exec(c2, "idle-shell", workloads::models::sleeper())
        .expect("c2 shell");
    let mut out = Vec::with_capacity(70);
    let mut last = (h.host_energy_uj(), 0u64, 0u64);
    let mut started = false;
    for t in 0..70u64 {
        if t == 10 && !started {
            for i in 0..4 {
                h.exec(c1, &format!("bzip2-{i}"), workloads::models::bzip2())
                    .expect("bzip2");
            }
            started = true;
        }
        h.advance_secs(1);
        let cur = (
            h.host_energy_uj(),
            h.container_energy_uj(c1).unwrap_or(0),
            h.container_energy_uj(c2).unwrap_or(0),
        );
        out.push((
            (cur.0 - last.0) / 1e6,
            (cur.1 - last.1) as f64 / 1e6,
            (cur.2 - last.2) as f64 / 1e6,
        ));
        last = cur;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trainer;
    use std::sync::OnceLock;
    use workloads::models;

    fn model() -> &'static PowerModel {
        static MODEL: OnceLock<PowerModel> = OnceLock::new();
        MODEL.get_or_init(|| Trainer::new(2001).train())
    }

    #[test]
    fn defended_read_serves_container_energy_not_host() {
        let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), 9, model().clone());
        let busy = h.create_container(ContainerSpec::new("busy")).unwrap();
        let idle = h.create_container(ContainerSpec::new("idle")).unwrap();
        for i in 0..4 {
            h.exec(busy, &format!("s{i}"), models::stress_small())
                .unwrap();
        }
        h.exec(idle, "shell", models::sleeper()).unwrap();
        h.advance_secs(30);

        let read = |h: &DefendedHost, c| -> u64 {
            h.read_file(c, "/sys/class/powercap/intel-rapl:0/energy_uj")
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let busy_uj = read(&h, busy);
        let idle_uj = read(&h, idle);
        let host_uj = h.host_energy_uj() as u64;
        // The busy container sees its own (high) consumption; the idle one
        // sees an idle-host-level reading (as in the paper's Fig. 9, where
        // unloaded containers sit at the host's idle level). Neither sees
        // the host-global counter.
        assert!(
            busy_uj > idle_uj * 13 / 10,
            "busy {busy_uj} vs idle {idle_uj}"
        );
        assert!(busy_uj < host_uj, "container must see less than host");
    }

    #[test]
    fn interface_is_unchanged_for_other_files() {
        let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), 10, model().clone());
        let c = h.create_container(ContainerSpec::new("c")).unwrap();
        h.advance_secs(2);
        // Same path names; max_energy_range_uj still served normally.
        assert!(h
            .read_file(c, "/sys/class/powercap/intel-rapl:0/max_energy_range_uj")
            .is_ok());
        assert!(h.read_file(c, "/proc/uptime").is_ok());
        // Subdomain energy files also answer (core/dram split).
        let core: u64 = h
            .read_file(
                c,
                "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/energy_uj",
            )
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let pkg: u64 = h
            .read_file(c, "/sys/class/powercap/intel-rapl:0/energy_uj")
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(core <= pkg);
    }

    #[test]
    fn container_counters_are_monotone() {
        let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), 11, model().clone());
        let c = h.create_container(ContainerSpec::new("c")).unwrap();
        h.exec(c, "w", models::stress_small()).unwrap();
        let mut last = 0;
        for _ in 0..10 {
            h.advance_secs(1);
            let cur = h.container_energy_uj(c).unwrap();
            assert!(cur >= last, "energy went backwards: {last} -> {cur}");
            last = cur;
        }
        assert!(last > 0);
    }

    #[test]
    fn fig8_errors_below_five_percent() {
        let m = model();
        // A representative subset of the held-out SPEC benchmarks (the
        // full sweep runs in the fig8 binary).
        for w in [models::bzip2(), models::hmmer(), models::mcf()] {
            let e = fig8_error(m, &w, 3005);
            assert!(e < 0.05, "{}: ξ = {e}", w.name());
        }
    }

    #[test]
    fn fig9_bystander_is_blind_to_coresident_load() {
        let series = fig9_transparency(model(), 3009);
        // Host power surges when bzip2 starts at t=10...
        let host_before: f64 = series[3..9].iter().map(|s| s.0).sum::<f64>() / 6.0;
        let host_during: f64 = series[20..50].iter().map(|s| s.0).sum::<f64>() / 30.0;
        assert!(
            host_during > host_before + 10.0,
            "{host_before} -> {host_during}"
        );
        // ...container 1 follows the host...
        let c1_during: f64 = series[20..50].iter().map(|s| s.1).sum::<f64>() / 30.0;
        assert!(c1_during > host_during * 0.6);
        // ...while container 2's view stays at its own (idle) level.
        let c2_before: f64 = series[3..9].iter().map(|s| s.2).sum::<f64>() / 6.0;
        let c2_during: f64 = series[20..50].iter().map(|s| s.2).sum::<f64>() / 30.0;
        assert!(
            (c2_during - c2_before).abs() < host_during * 0.1,
            "bystander saw the surge: {c2_before} -> {c2_during}"
        );
    }

    #[test]
    fn package_attribution_follows_the_pinning() {
        // Dual-socket host: a container pinned to socket 1's CPUs must
        // accumulate its energy in intel-rapl:1, not intel-rapl:0.
        let model = Trainer::new(2002)
            .machine(MachineConfig::cloud_server())
            .train();
        let mut h = DefendedHost::new(MachineConfig::cloud_server(), 13, model);
        let pinned = h
            .create_container(ContainerSpec::new("socket1").cpus(vec![8, 9, 10, 11]))
            .unwrap();
        for i in 0..4 {
            h.exec(pinned, &format!("w{i}"), models::stress_small())
                .unwrap();
        }
        h.advance_secs(20);
        let read = |h: &DefendedHost, path: &str| -> u64 {
            h.read_file(pinned, path).unwrap().trim().parse().unwrap()
        };
        let pkg0 = read(&h, "/sys/class/powercap/intel-rapl:0/energy_uj");
        let pkg1 = read(&h, "/sys/class/powercap/intel-rapl:1/energy_uj");
        assert!(
            pkg1 > pkg0 * 3,
            "socket-1 pinned container: pkg0 {pkg0} vs pkg1 {pkg1}"
        );
        let (_, _, total) = h.ns.energy_uj(pinned).unwrap();
        assert!(
            (pkg0 + pkg1) as i64 - total as i64 <= 2,
            "package split must sum to the total: {pkg0}+{pkg1} vs {total}"
        );
    }

    #[test]
    fn unregistered_container_reads_fall_through() {
        let mut h = DefendedHost::new(MachineConfig::testbed_i7_6700(), 12, model().clone());
        let c = h
            .runtime
            .create(&mut h.kernel, ContainerSpec::new("raw"))
            .unwrap();
        h.advance_secs(2);
        // Not registered with the namespace: reads the raw (leaking) file —
        // the defense only protects namespaced containers.
        let v: u64 = h
            .read_file(c, "/sys/class/powercap/intel-rapl:0/energy_uj")
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(v > 0);
    }
}
