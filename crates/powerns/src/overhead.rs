//! Table III: UnixBench overhead of the power-based namespace.
//!
//! The defense's cost lives in kernel hot paths: enabling/disabling the
//! per-cgroup perf monitors on *inter-cgroup* context switches, inheriting
//! event contexts on fork/exec, and (under parallel IO) accounting
//! contention. This harness replays the UnixBench-style suite through the
//! kernel's cost model twice — namespace off and on — for 1 and 8 parallel
//! copies, reproducing the paper's structure:
//!
//! * pipe-based context switching: huge 1-copy overhead (every round trip
//!   toggles monitors against the idle task) that almost vanishes with 8
//!   copies (switches stay inside the benchmark's cgroup);
//! * exec/process-creation: mid-single-digit overhead from event-context
//!   setup;
//! * file copies: overhead only appears under parallel copies (accounting
//!   on the contended buffer-cache path);
//! * pure-CPU benchmarks: noise.

use serde::{Deserialize, Serialize};
use simkernel::perf::PerfOverheadCosts;
use simkernel::{MachineConfig, SysCosts};
use workloads::unixbench::{UnixBenchSpec, UNIXBENCH_SUITE};

/// One Table III row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Score with the namespace off, 1 parallel copy.
    pub original_1: f64,
    /// Score with the namespace on, 1 parallel copy.
    pub modified_1: f64,
    /// Overhead percentage, 1 copy.
    pub overhead_1_pct: f64,
    /// Score with the namespace off, 8 parallel copies.
    pub original_8: f64,
    /// Score with the namespace on, 8 parallel copies.
    pub modified_8: f64,
    /// Overhead percentage, 8 copies.
    pub overhead_8_pct: f64,
}

/// Nanoseconds one iteration of `bench` takes with `copies` parallel
/// copies running, with or without the namespace's perf overhead.
fn iteration_ns(
    bench: &UnixBenchSpec,
    costs: &SysCosts,
    perf: Option<&PerfOverheadCosts>,
    copies: u32,
    ncpus: u32,
) -> f64 {
    let m = &bench.mix;
    let mut ns = m.user_ns as f64;
    ns += (m.syscalls * costs.syscall_ns) as f64;

    // Pipe round trips: two context switches each. With few benchmark
    // processes the partner isn't ready, so each switch lands on the idle
    // task — a *different* perf_event cgroup → monitor toggle. With the
    // machine saturated (2 procs/cpu), switches stay between benchmark
    // processes in the same cgroup; only a small residual (kworker
    // interleaving) still toggles.
    if m.pipe_round_trips > 0 {
        let extra_each = match perf {
            Some(p) => {
                let benchmark_procs = copies * bench.procs_per_copy;
                if benchmark_procs <= ncpus {
                    p.inter_cgroup_switch_ns as f64
                } else {
                    p.inter_cgroup_switch_ns as f64 * 0.01
                }
            }
            None => 0.0,
        };
        ns += m.pipe_round_trips as f64
            * 2.0
            * (costs.syscall_ns as f64 + costs.context_switch_ns as f64 + extra_each);
    }

    ns += (m.forks * costs.fork_ns) as f64;
    ns += (m.execs * costs.exec_ns) as f64;
    // Shell scripts spawn an interpreter chain: three forks + execs each.
    ns += m.shell_scripts as f64
        * (costs.shell_script_ns as f64 + 3.0 * (costs.fork_ns + costs.exec_ns) as f64);
    ns += m.file_blocks as f64 * costs.file_block_ns(m.block_bytes, copies) as f64;

    if let Some(p) = perf {
        ns += (m.syscalls * p.syscall_ns) as f64;
        ns += ((m.forks + 3 * m.shell_scripts) * p.fork_ns) as f64;
        // Exec-side event re-attachment broadcasts to the PMU on every
        // CPU running the cgroup — it grows with parallel copies.
        let exec_amp = 1.0 + 0.04 * f64::from(copies.saturating_sub(1));
        ns += (m.execs + 3 * m.shell_scripts) as f64 * p.exec_ns as f64 * exec_amp;
        if copies > 1 {
            ns += (m.file_blocks * p.file_block_contended_ns) as f64;
        }
    }
    ns
}

/// Aggregate throughput factor for `copies` parallel copies on a machine
/// with `ncpus` logical CPUs (half of them hyperthread siblings).
fn parallel_capacity(bench: &UnixBenchSpec, copies: u32, ncpus: u32) -> f64 {
    let c = f64::from(copies);
    if bench.mix.file_blocks > 0 {
        // Buffer-cache bound: parallel copies barely help.
        return 1.0 + (c - 1.0) * 0.033;
    }
    if bench.is_switch_bound() {
        // Each copy's ping-pong is serial; copies scale with CPUs.
        return c.min(f64::from(ncpus));
    }
    let phys = f64::from(ncpus / 2).max(1.0);
    let on_phys = c.min(phys);
    let on_ht = (c.min(f64::from(ncpus)) - on_phys).max(0.0);
    on_phys + on_ht * 0.26
}

/// Deterministic ±0.6 % run-to-run variance, as any real benchmark shows
/// (the paper's pure-CPU rows move by fractions of a percent).
fn run_noise(name: &str, copies: u32, defended: bool) -> f64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h = h.wrapping_add(u64::from(copies) * 977 + u64::from(defended) * 31337);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 29;
    1.0 + ((h % 1200) as f64 - 600.0) / 100_000.0
}

/// UnixBench-style score for one benchmark.
fn score(
    bench: &UnixBenchSpec,
    costs: &SysCosts,
    perf: Option<&PerfOverheadCosts>,
    copies: u32,
    ncpus: u32,
) -> f64 {
    let iter_ns = iteration_ns(bench, costs, perf, copies, ncpus);
    let iters_per_sec = 1e9 / iter_ns * parallel_capacity(bench, copies, ncpus);
    iters_per_sec * bench.index_scale * run_noise(bench.name, copies, perf.is_some())
}

/// Runs the full Table III experiment on `machine`.
pub fn run_table3(machine: &MachineConfig) -> Vec<Table3Row> {
    let costs = SysCosts::default();
    let perf = PerfOverheadCosts::default();
    let ncpus = u32::from(machine.cpus);
    let mut rows: Vec<Table3Row> = UNIXBENCH_SUITE
        .iter()
        .map(|b| {
            let o1 = score(b, &costs, None, 1, ncpus);
            let m1 = score(b, &costs, Some(&perf), 1, ncpus);
            let o8 = score(b, &costs, None, 8, ncpus);
            let m8 = score(b, &costs, Some(&perf), 8, ncpus);
            Table3Row {
                name: b.name.to_string(),
                original_1: o1,
                modified_1: m1,
                overhead_1_pct: (o1 - m1) / o1 * 100.0,
                original_8: o8,
                modified_8: m8,
                overhead_8_pct: (o8 - m8) / o8 * 100.0,
            }
        })
        .collect();

    // The suite's index: geometric mean of row scores.
    let geo = |f: fn(&Table3Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let (o1, m1) = (geo(|r| r.original_1), geo(|r| r.modified_1));
    let (o8, m8) = (geo(|r| r.original_8), geo(|r| r.modified_8));
    rows.push(Table3Row {
        name: "System Benchmarks Index Score".to_string(),
        original_1: o1,
        modified_1: m1,
        overhead_1_pct: (o1 - m1) / o1 * 100.0,
        original_8: o8,
        modified_8: m8,
        overhead_8_pct: (o8 - m8) / o8 * 100.0,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<Table3Row> {
        run_table3(&MachineConfig::testbed_i7_6700())
    }

    fn row<'a>(rows: &'a [Table3Row], name: &str) -> &'a Table3Row {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    }

    #[test]
    fn pipe_context_switching_shows_the_paper_asymmetry() {
        let rows = table();
        let r = row(&rows, "Pipe-based Context Switching");
        // Paper: 61.53 % at 1 copy, 1.63 % at 8 copies.
        assert!(
            (45.0..70.0).contains(&r.overhead_1_pct),
            "1-copy {}%",
            r.overhead_1_pct
        );
        assert!(
            (0.0..5.0).contains(&r.overhead_8_pct),
            "8-copy {}%",
            r.overhead_8_pct
        );
        assert!(r.overhead_1_pct > r.overhead_8_pct * 10.0);
    }

    #[test]
    fn compute_benchmarks_have_negligible_overhead() {
        let rows = table();
        for name in [
            "Dhrystone 2 using register variables",
            "Double-Precision Whetstone",
        ] {
            let r = row(&rows, name);
            assert!(
                r.overhead_1_pct.abs() < 2.0,
                "{name} 1-copy {}%",
                r.overhead_1_pct
            );
            assert!(
                r.overhead_8_pct.abs() < 2.0,
                "{name} 8-copy {}%",
                r.overhead_8_pct
            );
        }
    }

    #[test]
    fn exec_and_process_creation_pay_midsingle_digits() {
        let rows = table();
        let execl = row(&rows, "Execl Throughput");
        assert!(
            (4.0..11.0).contains(&execl.overhead_1_pct),
            "{}",
            execl.overhead_1_pct
        );
        assert!(
            execl.overhead_8_pct > execl.overhead_1_pct,
            "paper: execl overhead grows with copies ({} vs {})",
            execl.overhead_1_pct,
            execl.overhead_8_pct
        );
        let proc = row(&rows, "Process Creation");
        assert!(
            (5.0..12.0).contains(&proc.overhead_1_pct),
            "{}",
            proc.overhead_1_pct
        );
    }

    #[test]
    fn file_copies_pay_only_under_parallelism() {
        let rows = table();
        for name in [
            "File Copy 1024 bufsize 2000 maxblocks",
            "File Copy 256 bufsize 500 maxblocks",
            "File Copy 4096 bufsize 8000 maxblocks",
        ] {
            let r = row(&rows, name);
            assert!(
                r.overhead_1_pct.abs() < 2.5,
                "{name} 1-copy {}%",
                r.overhead_1_pct
            );
            assert!(
                (8.0..22.0).contains(&r.overhead_8_pct),
                "{name} 8-copy {}%",
                r.overhead_8_pct
            );
        }
        // Smaller buffers pay proportionally more, as in the paper
        // (18.19 % @256 > 14.33 % @1024 > 12.32 % @4096).
        let o256 = row(&rows, "File Copy 256 bufsize 500 maxblocks").overhead_8_pct;
        let o1024 = row(&rows, "File Copy 1024 bufsize 2000 maxblocks").overhead_8_pct;
        let o4096 = row(&rows, "File Copy 4096 bufsize 8000 maxblocks").overhead_8_pct;
        assert!(o256 > o1024 && o1024 > o4096, "{o256} {o1024} {o4096}");
    }

    #[test]
    fn overall_index_overhead_is_single_digit() {
        let rows = table();
        let idx = row(&rows, "System Benchmarks Index Score");
        // Paper: 9.66 % (1 copy), 7.03 % (8 copies).
        assert!(
            (4.0..13.0).contains(&idx.overhead_1_pct),
            "{}",
            idx.overhead_1_pct
        );
        assert!(
            (1.0..11.0).contains(&idx.overhead_8_pct),
            "{}",
            idx.overhead_8_pct
        );
        assert!(idx.overhead_1_pct > idx.overhead_8_pct);
    }

    #[test]
    fn eight_copies_scale_throughput_plausibly() {
        let rows = table();
        let dhry = row(&rows, "Dhrystone 2 using register variables");
        let ratio = dhry.original_8 / dhry.original_1;
        // Paper: 19132.9 / 3788.9 ≈ 5.05 (hyperthread scaling on 4C/8T).
        assert!((4.3..5.8).contains(&ratio), "scaling {ratio}");
        let fc = row(&rows, "File Copy 1024 bufsize 2000 maxblocks");
        let fratio = fc.original_8 / fc.original_1;
        // Paper: 3104.9 / 3495.1 ≈ 0.89.
        assert!((0.75..1.0).contains(&fratio), "file scaling {fratio}");
    }

    #[test]
    fn scores_are_in_unixbench_magnitudes() {
        let rows = table();
        let dhry = row(&rows, "Dhrystone 2 using register variables");
        assert!(
            (1_000.0..20_000.0).contains(&dhry.original_1),
            "{}",
            dhry.original_1
        );
        let pipe = row(&rows, "Pipe-based Context Switching");
        assert!(
            (200.0..3_000.0).contains(&pipe.original_1),
            "{}",
            pipe.original_1
        );
    }
}
