//! The power-based namespace defense (§V of the paper).
//!
//! The second-stage defense: instead of masking the RAPL channel, serve
//! each container *its own* power consumption through the unchanged RAPL
//! interface. Three components, exactly as in the paper's Fig. 5 workflow:
//!
//! * [`collect`] — **data collection**: per-container perf events
//!   (retired instructions, cache misses, branch misses, CPU cycles)
//!   created at namespace initialization with `TASK_TOMBSTONE` owners,
//!   accumulated in the container's `perf_event` cgroup.
//! * [`model`] — **power modeling** (Formula 2): core energy as
//!   `F(CM/C, BM/C) · I + α` with `F` fit by multiple linear regression,
//!   DRAM energy as `β · CM + γ`, package as their sum plus `λ`.
//! * [`nsfs`] — **on-the-fly calibration** (Formula 3) and the replacement
//!   read path: every container read of `energy_uj` returns
//!   `M_container / M_host × E_RAPL`, accumulated per container.
//!
//! [`overhead`] reproduces the Table III cost analysis: the perf-event
//! machinery's enable/disable on inter-cgroup context switches, replayed
//! through a UnixBench-style suite with the namespace on and off.

pub mod accounting;
pub mod collect;
pub mod model;
pub mod nsfs;
pub mod overhead;

pub use accounting::{EnergyBill, EnergyBilling, EnergyTariff, PowerThrottle, ThrottleState};
pub use collect::PerfSampler;
pub use model::{CalibrationRun, ModelSample, PowerModel, Trainer};
pub use nsfs::{DefendedHost, PowerNamespace};
pub use overhead::{run_table3, Table3Row};
